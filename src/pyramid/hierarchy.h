#ifndef ANC_PYRAMID_HIERARCHY_H_
#define ANC_PYRAMID_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "graph/clustering_types.h"
#include "pyramid/pyramid_index.h"

namespace anc {

/// The multi-granularity clusterings of a pyramid index assembled into an
/// explicit hierarchy: level l's clusters linked to the level-(l-1) cluster
/// that contains the majority of their nodes. This materializes the
/// zoom-in/zoom-out structure of Problem 1 as a dendrogram-like object a
/// client can navigate without re-running searches.
///
/// Levels are not guaranteed to nest exactly (each granularity votes
/// independently), so the parent link is majority-overlap; `containment`
/// records the achieved overlap fraction for clients that care.
struct ClusterHierarchy {
  /// Clustering per level; index 0 is level 1 (coarsest).
  std::vector<Clustering> levels;
  /// parent[l][c]: the cluster id at level l (1-based level l+1's parent
  /// lives at index l-1... concretely: parent[i][c] is the parent at
  /// levels[i-1] of cluster c in levels[i]; parent[0] is all kNoise.
  std::vector<std::vector<uint32_t>> parent;
  /// containment[i][c]: fraction of cluster c's nodes inside its parent.
  std::vector<std::vector<double>> containment;

  uint32_t num_levels() const { return static_cast<uint32_t>(levels.size()); }

  /// Chain of cluster ids from (level, cluster) up to level 1.
  std::vector<uint32_t> PathToRoot(uint32_t level, uint32_t cluster) const;
};

/// Builds the hierarchy from every granularity level of the index
/// (power clustering when `power`, even clustering otherwise).
ClusterHierarchy BuildHierarchy(const PyramidIndex& index, bool power = true);

}  // namespace anc

#endif  // ANC_PYRAMID_HIERARCHY_H_
