#ifndef ANC_PYRAMID_VORONOI_H_
#define ANC_PYRAMID_VORONOI_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "util/indexed_heap.h"
#include "util/status.h"

namespace anc::check {
class TestHooks;
}  // namespace anc::check

namespace anc {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// One Voronoi partition of the graph under the distance weights S_t^{-1}
/// (Section V-A): a seed set S, and for every node v its closest seed
/// S[v], the distance dist(S[v], v), and the shortest-path tree (parent +
/// intrusive child list) rooted at the seeds.
///
/// The partition supports the paper's bounded incremental maintenance:
///  - UpdateEdgeWeight dispatches to Update-Decrease (Algorithm 1) or
///    Update-Increase (Algorithm 3); Probe (Algorithm 2) is TryImprove().
///  - The cost is O(sum_{x in U'} deg(x)) up to a log factor, where U' is
///    the set of nodes whose distance or seed changed plus the edge
///    endpoints (Lemma 12).
///
/// Weights are owned by the caller (PyramidIndex) and passed to every
/// operation; all partitions of the index read the same anchored weight
/// array. Unreachable nodes have seed kInvalidNode and distance kInfDist.
class VoronoiPartition {
 public:
  /// Builds the partition from scratch: one multi-source Dijkstra with the
  /// seed set as super source (by-product: the shortest path trees).
  void Build(const Graph& g, const std::vector<double>& weights,
             std::vector<NodeId> seeds);

  const std::vector<NodeId>& seeds() const { return seeds_; }
  NodeId SeedOf(NodeId v) const { return seed_of_[v]; }
  double Dist(NodeId v) const { return dist_[v]; }
  NodeId Parent(NodeId v) const { return parent_[v]; }
  EdgeId ParentEdge(NodeId v) const { return parent_edge_[v]; }

  /// True when u and v are dominated by the same seed (both reachable).
  bool SameSeed(NodeId u, NodeId v) const {
    return seed_of_[u] != kInvalidNode && seed_of_[u] == seed_of_[v];
  }

  /// Repairs the partition after the weight of edge e changed from `old_w`
  /// to `new_w`. `weights` must already contain `new_w` at index e. Nodes
  /// whose *seed* changed are appended to `seed_changed` (callers maintain
  /// vote counts from it). Returns the number of nodes whose distance or
  /// seed was touched (the |U'| of Lemma 12, for stats and tests).
  size_t UpdateEdgeWeight(const Graph& g, const std::vector<double>& weights,
                          EdgeId e, double old_w, double new_w,
                          std::vector<NodeId>* seed_changed);

  /// Recomputes everything from scratch and reports whether distances and
  /// seed reachability match (test / invariant checker). Seeds may validly
  /// differ between equal-distance ties, so only distances are compared.
  bool ConsistentWith(const Graph& g, const std::vector<double>& weights) const;

  /// Multiplies every stored distance by `factor` (> 0). A uniform scale of
  /// all edge weights scales all shortest distances identically and leaves
  /// tree structure and seed assignments untouched — this is how the index
  /// absorbs a batched rescale of the global decay factor (Lemma 10).
  void ScaleDistances(double factor);

  /// Heap-resident bytes of this partition (index-size accounting, Fig. 6).
  size_t MemoryBytes() const;

  /// Complete tree state (serialization support). The sibling links are
  /// included so a restored partition replays future updates *identically*
  /// — child-visit order breaks equal-distance ties. Scratch state is
  /// derived and excluded.
  struct TreeState {
    std::vector<NodeId> seeds;
    std::vector<NodeId> seed_of;
    std::vector<double> dist;
    std::vector<NodeId> parent;
    std::vector<EdgeId> parent_edge;
    std::vector<NodeId> first_child;
    std::vector<NodeId> next_sibling;
    std::vector<NodeId> prev_sibling;
  };

  TreeState ExportTree() const;

  /// Restores an exported tree over the same graph. Validates array sizes
  /// and id ranges; does NOT re-verify shortest-path optimality (the state
  /// is trusted, as with any loaded index).
  Status RestoreTree(const Graph& g, TreeState state);

 private:
  /// Test-only corruption seam (tests/check_test.cc): plants inconsistent
  /// cell assignments / distances for the invariant-checker tests.
  friend class ::anc::check::TestHooks;

  /// Probe (Algorithm 2): tries to improve a's distance via its neighbor b
  /// along edge e_ab. On success rewires a's parent to b and records a in
  /// the touched set. Returns true when a improved.
  bool TryImprove(NodeId a, NodeId b, EdgeId e_ab,
                  const std::vector<double>& weights);

  void RunDecrease(const Graph& g, const std::vector<double>& weights,
                   NodeId u, NodeId v, EdgeId e);
  void RunIncrease(const Graph& g, const std::vector<double>& weights,
                   NodeId u, NodeId v, EdgeId e);

  /// Rewires the tree so that `parent` becomes the parent of v (unlinking v
  /// from its previous parent's child list first). parent == kInvalidNode
  /// detaches v.
  void SetParent(NodeId v, NodeId parent, EdgeId parent_edge);

  /// Collects the subtree rooted at `root` (inclusive) via the intrusive
  /// child lists.
  void CollectSubtree(NodeId root, std::vector<NodeId>* out) const;

  /// Marks v as touched in the current update epoch, remembering its
  /// pre-update seed the first time.
  void Touch(NodeId v);

  std::vector<NodeId> seeds_;
  std::vector<uint8_t> is_seed_;
  std::vector<NodeId> seed_of_;
  std::vector<double> dist_;
  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;
  // Intrusive doubly-linked sibling lists (O(1) unlink, no per-node heap
  // allocations; the index keeps k * ceil(log2 n) partitions alive).
  std::vector<NodeId> first_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> prev_sibling_;

  // Update-scoped scratch state.
  IndexedMinHeap queue_{0};
  std::vector<uint32_t> touch_epoch_;
  std::vector<NodeId> old_seed_;
  std::vector<NodeId> touched_;
  std::vector<uint32_t> subtree_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace anc

#endif  // ANC_PYRAMID_VORONOI_H_
