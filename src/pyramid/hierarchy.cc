#include "pyramid/hierarchy.h"

#include <unordered_map>

#include "pyramid/clustering.h"

namespace anc {

std::vector<uint32_t> ClusterHierarchy::PathToRoot(uint32_t level,
                                                   uint32_t cluster) const {
  std::vector<uint32_t> path;
  uint32_t current = cluster;
  for (uint32_t l = level; l >= 1; --l) {
    path.push_back(current);
    if (l == 1) break;
    current = parent[l - 1][current];
    if (current == kNoise) break;
  }
  return path;
}

ClusterHierarchy BuildHierarchy(const PyramidIndex& index, bool power) {
  const Graph& g = index.graph();
  ClusterHierarchy hierarchy;
  hierarchy.levels.reserve(index.num_levels());
  for (uint32_t l = 1; l <= index.num_levels(); ++l) {
    hierarchy.levels.push_back(power ? PowerClustering(index, l)
                                     : EvenClustering(index, l));
  }

  hierarchy.parent.resize(hierarchy.levels.size());
  hierarchy.containment.resize(hierarchy.levels.size());
  // Level 1 has no parent.
  hierarchy.parent[0].assign(hierarchy.levels[0].num_clusters, kNoise);
  hierarchy.containment[0].assign(hierarchy.levels[0].num_clusters, 1.0);

  for (size_t i = 1; i < hierarchy.levels.size(); ++i) {
    const Clustering& fine = hierarchy.levels[i];
    const Clustering& coarse = hierarchy.levels[i - 1];
    // overlap[c][p] counting via a flat map keyed by (c, p).
    std::unordered_map<uint64_t, uint32_t> overlap;
    std::vector<uint32_t> size(fine.num_clusters, 0);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const uint32_t c = fine.labels[v];
      const uint32_t p = coarse.labels[v];
      if (c == kNoise || p == kNoise) continue;
      ++overlap[(static_cast<uint64_t>(c) << 32) | p];
      ++size[c];
    }
    auto& parents = hierarchy.parent[i];
    auto& contained = hierarchy.containment[i];
    parents.assign(fine.num_clusters, kNoise);
    contained.assign(fine.num_clusters, 0.0);
    std::vector<uint32_t> best(fine.num_clusters, 0);
    for (const auto& [key, count] : overlap) {
      const uint32_t c = static_cast<uint32_t>(key >> 32);
      const uint32_t p = static_cast<uint32_t>(key & 0xFFFFFFFFu);
      if (count > best[c]) {
        best[c] = count;
        parents[c] = p;
        contained[c] = size[c] > 0
                           ? static_cast<double>(count) / size[c]
                           : 0.0;
      }
    }
  }
  return hierarchy;
}

}  // namespace anc
