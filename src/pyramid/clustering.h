#ifndef ANC_PYRAMID_CLUSTERING_H_
#define ANC_PYRAMID_CLUSTERING_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "graph/algorithms.h"
#include "graph/clustering_types.h"
#include "pyramid/pyramid_index.h"

namespace anc {

/// The clustering algorithms of Section V-B are generic over any *vote
/// source*: a type exposing
///     const Graph& graph() const;
///     uint32_t num_levels() const;
///     bool EdgePassesVote(EdgeId e, uint32_t level) const;
/// Both the live PyramidIndex and the immutable serve::ClusterView
/// snapshots satisfy this, so concurrent snapshot queries are byte-
/// identical to single-threaded queries against the same vote table —
/// they run the exact same code.

/// Even clustering (Section V-B.1): drop every edge whose voting result is
/// 0 at `level` and report the connected components of what remains.
/// O(m log n) (Lemma 8). Sensitive to single mis-votes (a spurious passing
/// edge merges two clusters), which Power clustering avoids.
template <typename IndexT>
Clustering EvenClusteringOf(const IndexT& index, uint32_t level) {
  const Graph& g = index.graph();
  uint32_t num_components = 0;
  std::vector<uint32_t> labels = FilteredComponents(
      g, [&index, level](EdgeId e) { return index.EdgePassesVote(e, level); },
      &num_components);
  Clustering out;
  out.labels = std::move(labels);
  out.num_clusters = num_components;
  return out;
}

/// Power clustering / DirectedCluster (Section V-B.2): direct every passing
/// edge from the higher-degree endpoint to the lower-degree one (node id
/// breaks ties), then scan nodes from high rank to low; each still-
/// unclustered node collects all unclustered nodes reachable downhill into
/// one cluster. O(m log n) (Lemma 8).
template <typename IndexT>
Clustering PowerClusteringOf(const IndexT& index, uint32_t level) {
  const Graph& g = index.graph();
  const uint32_t n = g.NumNodes();

  // Rank nodes by (degree desc, id asc); edges point from low rank index
  // (strong) to high rank index (weak).
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    const uint32_t da = g.Degree(a);
    const uint32_t db = g.Degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<uint32_t> rank(n);
  for (uint32_t i = 0; i < n; ++i) rank[order[i]] = i;

  Clustering out;
  out.labels.assign(n, kNoise);
  std::deque<NodeId> queue;
  for (NodeId v : order) {
    if (out.labels[v] != kNoise) continue;
    const uint32_t cluster = out.num_clusters++;
    out.labels[v] = cluster;
    queue.push_back(v);
    while (!queue.empty()) {
      NodeId x = queue.front();
      queue.pop_front();
      for (const Neighbor& nb : g.Neighbors(x)) {
        if (out.labels[nb.node] != kNoise) continue;
        if (rank[nb.node] < rank[x]) continue;  // only travel downhill
        if (!index.EdgePassesVote(nb.edge, level)) continue;
        out.labels[nb.node] = cluster;
        queue.push_back(nb.node);
      }
    }
  }
  return out;
}

/// Local cluster query (Lemma 9): the cluster containing `query` at
/// `level`, discovered by searching only passing edges from `query`. Cost
/// is proportional to the neighborhoods of the reported nodes, independent
/// of graph size. Returns the member list (always contains `query`).
template <typename IndexT>
std::vector<NodeId> LocalClusterOf(const IndexT& index, NodeId query,
                                   uint32_t level) {
  const Graph& g = index.graph();
  std::vector<NodeId> members;
  // Visited set sized to the discovered frontier, not the graph: a local
  // query must not pay O(n). A hash set keyed by node id delivers that.
  std::vector<NodeId> stack = {query};
  std::unordered_set<NodeId> visited = {query};
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    members.push_back(x);
    for (const Neighbor& nb : g.Neighbors(x)) {
      if (!index.EdgePassesVote(nb.edge, level)) continue;
      if (visited.insert(nb.node).second) stack.push_back(nb.node);
    }
  }
  std::sort(members.begin(), members.end());
  return members;
}

/// The finest granularity at which `query`'s cluster has at least
/// `min_size` members, starting from the finest level and zooming out
/// ("the smallest cluster that contains v", Problem 1.2). Returns the level
/// and fills `members`.
template <typename IndexT>
uint32_t SmallestClusterLevelOf(const IndexT& index, NodeId query,
                                uint32_t min_size,
                                std::vector<NodeId>* members) {
  for (uint32_t level = index.num_levels(); level >= 1; --level) {
    std::vector<NodeId> cluster = LocalClusterOf(index, query, level);
    if (cluster.size() >= min_size || level == 1) {
      if (members != nullptr) *members = std::move(cluster);
      return level;
    }
  }
  return 1;  // unreachable; level 1 returns above
}

/// Non-template entry points for the live index (the original public API).
Clustering EvenClustering(const PyramidIndex& index, uint32_t level);
Clustering PowerClustering(const PyramidIndex& index, uint32_t level);
std::vector<NodeId> LocalCluster(const PyramidIndex& index, NodeId query,
                                 uint32_t level);
uint32_t SmallestClusterLevel(const PyramidIndex& index, NodeId query,
                              uint32_t min_size, std::vector<NodeId>* members);

/// Interactive granularity cursor: the zoom-in / zoom-out operations of
/// Problem 1 as a tiny stateful wrapper over any vote source (the live
/// PyramidIndex or an immutable serve::ClusterView; the cursor does not
/// keep the source alive).
template <typename IndexT>
class BasicZoomCursor {
 public:
  /// Starts at the Theta(sqrt(n))-clusters granularity (DefaultLevel).
  explicit BasicZoomCursor(const IndexT& index)
      : index_(&index), level_(index.DefaultLevel()) {}

  uint32_t level() const { return level_; }

  /// Finer granularity (more, smaller clusters). Clamped at the top level.
  bool ZoomIn() {
    if (level_ >= index_->num_levels()) return false;
    ++level_;
    return true;
  }

  /// Coarser granularity (fewer, larger clusters). Clamped at level 1.
  bool ZoomOut() {
    if (level_ <= 1) return false;
    --level_;
    return true;
  }

  /// All clusters at the cursor's granularity (power clustering).
  Clustering Clusters() const { return PowerClusteringOf(*index_, level_); }

  /// The local cluster of `query` at the cursor's granularity.
  std::vector<NodeId> Local(NodeId query) const {
    return LocalClusterOf(*index_, query, level_);
  }

 private:
  const IndexT* index_;
  uint32_t level_;
};

using ZoomCursor = BasicZoomCursor<PyramidIndex>;

}  // namespace anc

#endif  // ANC_PYRAMID_CLUSTERING_H_
