#ifndef ANC_PYRAMID_CLUSTERING_H_
#define ANC_PYRAMID_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "graph/clustering_types.h"
#include "pyramid/pyramid_index.h"

namespace anc {

/// Even clustering (Section V-B.1): drop every edge whose voting result is
/// 0 at `level` and report the connected components of what remains.
/// O(m log n) (Lemma 8). Sensitive to single mis-votes (a spurious passing
/// edge merges two clusters), which Power clustering avoids.
Clustering EvenClustering(const PyramidIndex& index, uint32_t level);

/// Power clustering / DirectedCluster (Section V-B.2): direct every passing
/// edge from the higher-degree endpoint to the lower-degree one (node id
/// breaks ties), then scan nodes from high rank to low; each still-
/// unclustered node collects all unclustered nodes reachable downhill into
/// one cluster. O(m log n) (Lemma 8).
Clustering PowerClustering(const PyramidIndex& index, uint32_t level);

/// Local cluster query (Lemma 9): the cluster containing `query` at
/// `level`, discovered by searching only passing edges from `query`. Cost
/// is proportional to the neighborhoods of the reported nodes, independent
/// of graph size. Returns the member list (always contains `query`).
std::vector<NodeId> LocalCluster(const PyramidIndex& index, NodeId query,
                                 uint32_t level);

/// The finest granularity at which `query`'s cluster has at least
/// `min_size` members, starting from the finest level and zooming out
/// ("the smallest cluster that contains v", Problem 1.2). Returns the level
/// and fills `members`.
uint32_t SmallestClusterLevel(const PyramidIndex& index, NodeId query,
                              uint32_t min_size, std::vector<NodeId>* members);

/// Interactive granularity cursor over a PyramidIndex: the zoom-in /
/// zoom-out operations of Problem 1 as a tiny stateful wrapper.
class ZoomCursor {
 public:
  /// Starts at the Theta(sqrt(n))-clusters granularity (DefaultLevel).
  explicit ZoomCursor(const PyramidIndex& index)
      : index_(&index), level_(index.DefaultLevel()) {}

  uint32_t level() const { return level_; }

  /// Finer granularity (more, smaller clusters). Clamped at the top level.
  bool ZoomIn() {
    if (level_ >= index_->num_levels()) return false;
    ++level_;
    return true;
  }

  /// Coarser granularity (fewer, larger clusters). Clamped at level 1.
  bool ZoomOut() {
    if (level_ <= 1) return false;
    --level_;
    return true;
  }

  /// All clusters at the cursor's granularity (power clustering).
  Clustering Clusters() const { return PowerClustering(*index_, level_); }

  /// The local cluster of `query` at the cursor's granularity.
  std::vector<NodeId> Local(NodeId query) const {
    return LocalCluster(*index_, query, level_);
  }

 private:
  const PyramidIndex* index_;
  uint32_t level_;
};

}  // namespace anc

#endif  // ANC_PYRAMID_CLUSTERING_H_
