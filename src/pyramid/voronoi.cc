#include "pyramid/voronoi.h"

#include <algorithm>
#include <cmath>

namespace anc {

void VoronoiPartition::Build(const Graph& g,
                             const std::vector<double>& weights,
                             std::vector<NodeId> seeds) {
  const uint32_t n = g.NumNodes();
  seeds_ = std::move(seeds);
  seed_of_.assign(n, kInvalidNode);
  dist_.assign(n, kInfDist);
  parent_.assign(n, kInvalidNode);
  parent_edge_.assign(n, kInvalidEdge);
  first_child_.assign(n, kInvalidNode);
  next_sibling_.assign(n, kInvalidNode);
  prev_sibling_.assign(n, kInvalidNode);
  touch_epoch_.assign(n, 0);
  subtree_epoch_.assign(n, 0);
  old_seed_.assign(n, kInvalidNode);
  is_seed_.assign(n, 0);
  for (NodeId s : seeds_) is_seed_[s] = 1;
  epoch_ = 0;
  queue_ = IndexedMinHeap(n);

  // Multi-source Dijkstra with the seed set as super source.
  for (NodeId s : seeds_) {
    dist_[s] = 0.0;
    seed_of_[s] = s;
    queue_.PushOrUpdate(s, 0.0);
  }
  while (!queue_.empty()) {
    auto [x, dx] = queue_.PopMin();
    if (dx > dist_[x]) continue;  // stale entry (cannot happen with indexed heap)
    for (const Neighbor& nb : g.Neighbors(x)) {
      const double cand = dist_[x] + weights[nb.edge];
      if (cand < dist_[nb.node]) {
        dist_[nb.node] = cand;
        seed_of_[nb.node] = seed_of_[x];
        SetParent(nb.node, x, nb.edge);
        queue_.PushOrUpdate(nb.node, cand);
      }
    }
  }
}

size_t VoronoiPartition::UpdateEdgeWeight(const Graph& g,
                                          const std::vector<double>& weights,
                                          EdgeId e, double old_w, double new_w,
                                          std::vector<NodeId>* seed_changed) {
  if (old_w == new_w) return 0;
  const auto& [u, v] = g.Endpoints(e);
  ++epoch_;
  touched_.clear();
  queue_.Clear();

  if (new_w < old_w) {
    RunDecrease(g, weights, u, v, e);
  } else {
    RunIncrease(g, weights, u, v, e);
  }

  if (seed_changed != nullptr) {
    for (NodeId x : touched_) {
      if (old_seed_[x] != seed_of_[x]) seed_changed->push_back(x);
    }
  }
  return touched_.size();
}

void VoronoiPartition::RunDecrease(const Graph& g,
                                   const std::vector<double>& weights,
                                   NodeId u, NodeId v, EdgeId e) {
  // Algorithm 1: seed the queue with whichever endpoint the cheaper edge
  // now improves, then run Dijkstra-like relaxation outward. Distances can
  // only decrease, so every relaxation is final-or-improvable and the
  // search touches exactly the affected region (Lemma 11/12).
  if (TryImprove(u, v, e, weights)) queue_.PushOrUpdate(u, dist_[u]);
  if (TryImprove(v, u, e, weights)) queue_.PushOrUpdate(v, dist_[v]);
  while (!queue_.empty()) {
    auto [x, dx] = queue_.PopMin();
    (void)dx;
    for (const Neighbor& nb : g.Neighbors(x)) {
      if (TryImprove(nb.node, x, nb.edge, weights)) {
        queue_.PushOrUpdate(nb.node, dist_[nb.node]);
      }
    }
  }
}

void VoronoiPartition::RunIncrease(const Graph& g,
                                   const std::vector<double>& weights,
                                   NodeId u, NodeId v, EdgeId e) {
  // Algorithm 3. A heavier edge matters only when it is a tree edge: the
  // orphaned endpoint's whole subtree loses its witness path and must be
  // reattached; everything else keeps a valid, unchanged shortest path.
  NodeId orphan = kInvalidNode;
  if (parent_edge_[v] == e) {
    orphan = v;
  } else if (parent_edge_[u] == e) {
    orphan = u;
  } else {
    return;
  }

  std::vector<NodeId> subtree;
  CollectSubtree(orphan, &subtree);
  ++epoch_;  // CollectSubtree stamps subtree_epoch_ with the new epoch below

  // Reset the orphaned region: distances to infinity, seeds invalid, tree
  // links cleared. Children of subtree nodes are themselves in the subtree,
  // so clearing first_child_ wholesale is safe; only the orphan must be
  // unlinked from its (outside) parent.
  SetParent(orphan, kInvalidNode, kInvalidEdge);
  for (NodeId x : subtree) {
    Touch(x);
    subtree_epoch_[x] = epoch_;
    dist_[x] = kInfDist;
    seed_of_[x] = kInvalidNode;
    parent_[x] = kInvalidNode;
    parent_edge_[x] = kInvalidEdge;
    first_child_[x] = kInvalidNode;
    next_sibling_[x] = kInvalidNode;
    prev_sibling_[x] = kInvalidNode;
  }

  // Boundary pass: every subtree node can reattach through a neighbor
  // outside the subtree, whose distance is provably unchanged by the
  // increase (its tree path avoids e). Seed the queue with the best outside
  // witness of each subtree node.
  for (NodeId x : subtree) {
    // A subtree node that is itself a seed re-roots at distance 0.
    if (is_seed_[x] != 0) {
      dist_[x] = 0.0;
      seed_of_[x] = x;
      queue_.PushOrUpdate(x, 0.0);
      continue;
    }
    for (const Neighbor& nb : g.Neighbors(x)) {
      if (subtree_epoch_[nb.node] == epoch_) continue;  // inside subtree
      if (dist_[nb.node] == kInfDist) continue;
      const double cand = dist_[nb.node] + weights[nb.edge];
      if (cand < dist_[x]) {
        dist_[x] = cand;
        seed_of_[x] = seed_of_[nb.node];
        SetParent(x, nb.node, nb.edge);
      }
    }
    if (dist_[x] < kInfDist) queue_.PushOrUpdate(x, dist_[x]);
  }

  // Dijkstra over the orphaned region to settle the reattachment.
  while (!queue_.empty()) {
    auto [x, dx] = queue_.PopMin();
    (void)dx;
    for (const Neighbor& nb : g.Neighbors(x)) {
      if (TryImprove(nb.node, x, nb.edge, weights)) {
        queue_.PushOrUpdate(nb.node, dist_[nb.node]);
      }
    }
  }
}

bool VoronoiPartition::TryImprove(NodeId a, NodeId b, EdgeId e_ab,
                                  const std::vector<double>& weights) {
  if (dist_[b] == kInfDist) return false;
  const double cand = dist_[b] + weights[e_ab];
  if (cand >= dist_[a]) return false;
  Touch(a);
  dist_[a] = cand;
  seed_of_[a] = seed_of_[b];
  SetParent(a, b, e_ab);
  return true;
}

void VoronoiPartition::SetParent(NodeId v, NodeId parent, EdgeId parent_edge) {
  // Unlink from the previous parent's child list.
  const NodeId old_parent = parent_[v];
  if (old_parent != kInvalidNode) {
    const NodeId prev = prev_sibling_[v];
    const NodeId next = next_sibling_[v];
    if (prev != kInvalidNode) {
      next_sibling_[prev] = next;
    } else if (first_child_[old_parent] == v) {
      first_child_[old_parent] = next;
    }
    if (next != kInvalidNode) prev_sibling_[next] = prev;
  }
  parent_[v] = parent;
  parent_edge_[v] = parent_edge;
  prev_sibling_[v] = kInvalidNode;
  next_sibling_[v] = kInvalidNode;
  if (parent != kInvalidNode) {
    const NodeId head = first_child_[parent];
    next_sibling_[v] = head;
    if (head != kInvalidNode) prev_sibling_[head] = v;
    first_child_[parent] = v;
  }
}

void VoronoiPartition::CollectSubtree(NodeId root,
                                      std::vector<NodeId>* out) const {
  out->clear();
  out->push_back(root);
  for (size_t i = 0; i < out->size(); ++i) {
    for (NodeId c = first_child_[(*out)[i]]; c != kInvalidNode;
         c = next_sibling_[c]) {
      out->push_back(c);
    }
  }
}

void VoronoiPartition::Touch(NodeId v) {
  if (touch_epoch_[v] == epoch_) return;
  touch_epoch_[v] = epoch_;
  old_seed_[v] = seed_of_[v];
  touched_.push_back(v);
}

bool VoronoiPartition::ConsistentWith(const Graph& g,
                                      const std::vector<double>& weights) const {
  VoronoiPartition fresh;
  fresh.Build(g, weights, seeds_);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const double a = dist_[v];
    const double b = fresh.dist_[v];
    if (a == kInfDist || b == kInfDist) {
      if (a != b) return false;
      continue;
    }
    const double tol = 1e-9 * std::max({1.0, a, b});
    if (std::abs(a - b) > tol) return false;
  }
  return true;
}

void VoronoiPartition::ScaleDistances(double factor) {
  ANC_CHECK(factor > 0.0 && std::isfinite(factor),
            "scale factor must be positive and finite");
  for (double& d : dist_) {
    if (d != kInfDist) d *= factor;
  }
}

VoronoiPartition::TreeState VoronoiPartition::ExportTree() const {
  return {seeds_,       seed_of_,      dist_,         parent_,
          parent_edge_, first_child_,  next_sibling_, prev_sibling_};
}

Status VoronoiPartition::RestoreTree(const Graph& g, TreeState state) {
  const uint32_t n = g.NumNodes();
  if (state.seed_of.size() != n || state.dist.size() != n ||
      state.parent.size() != n || state.parent_edge.size() != n ||
      state.first_child.size() != n || state.next_sibling.size() != n ||
      state.prev_sibling.size() != n) {
    return Status::InvalidArgument("tree state size mismatch");
  }
  for (NodeId s : state.seeds) {
    if (s >= n) return Status::InvalidArgument("seed id out of range");
  }
  auto in_range = [n](const std::vector<NodeId>& ids) {
    for (NodeId v : ids) {
      if (v != kInvalidNode && v >= n) return false;
    }
    return true;
  };
  if (!in_range(state.parent) || !in_range(state.first_child) ||
      !in_range(state.next_sibling) || !in_range(state.prev_sibling)) {
    return Status::InvalidArgument("tree link out of range");
  }
  seeds_ = std::move(state.seeds);
  seed_of_ = std::move(state.seed_of);
  dist_ = std::move(state.dist);
  parent_ = std::move(state.parent);
  parent_edge_ = std::move(state.parent_edge);
  first_child_ = std::move(state.first_child);
  next_sibling_ = std::move(state.next_sibling);
  prev_sibling_ = std::move(state.prev_sibling);
  is_seed_.assign(n, 0);
  for (NodeId s : seeds_) is_seed_[s] = 1;
  touch_epoch_.assign(n, 0);
  subtree_epoch_.assign(n, 0);
  old_seed_.assign(n, kInvalidNode);
  epoch_ = 0;
  queue_ = IndexedMinHeap(n);
  return Status::OK();
}

size_t VoronoiPartition::MemoryBytes() const {
  size_t bytes = 0;
  bytes += seeds_.capacity() * sizeof(NodeId);
  bytes += is_seed_.capacity() * sizeof(uint8_t);
  bytes += seed_of_.capacity() * sizeof(NodeId);
  bytes += dist_.capacity() * sizeof(double);
  bytes += parent_.capacity() * sizeof(NodeId);
  bytes += parent_edge_.capacity() * sizeof(EdgeId);
  bytes += first_child_.capacity() * sizeof(NodeId);
  bytes += next_sibling_.capacity() * sizeof(NodeId);
  bytes += prev_sibling_.capacity() * sizeof(NodeId);
  return bytes;
}

}  // namespace anc
