#include "pyramid/clustering.h"
#include <unordered_set>

#include <algorithm>
#include <deque>
#include <numeric>

#include "graph/algorithms.h"

namespace anc {

Clustering EvenClustering(const PyramidIndex& index, uint32_t level) {
  const Graph& g = index.graph();
  uint32_t num_components = 0;
  std::vector<uint32_t> labels = FilteredComponents(
      g, [&index, level](EdgeId e) { return index.EdgePassesVote(e, level); },
      &num_components);
  Clustering out;
  out.labels = std::move(labels);
  out.num_clusters = num_components;
  return out;
}

Clustering PowerClustering(const PyramidIndex& index, uint32_t level) {
  const Graph& g = index.graph();
  const uint32_t n = g.NumNodes();

  // Rank nodes by (degree desc, id asc); edges point from low rank index
  // (strong) to high rank index (weak).
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    const uint32_t da = g.Degree(a);
    const uint32_t db = g.Degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<uint32_t> rank(n);
  for (uint32_t i = 0; i < n; ++i) rank[order[i]] = i;

  Clustering out;
  out.labels.assign(n, kNoise);
  std::deque<NodeId> queue;
  for (NodeId v : order) {
    if (out.labels[v] != kNoise) continue;
    const uint32_t cluster = out.num_clusters++;
    out.labels[v] = cluster;
    queue.push_back(v);
    while (!queue.empty()) {
      NodeId x = queue.front();
      queue.pop_front();
      for (const Neighbor& nb : g.Neighbors(x)) {
        if (out.labels[nb.node] != kNoise) continue;
        if (rank[nb.node] < rank[x]) continue;  // only travel downhill
        if (!index.EdgePassesVote(nb.edge, level)) continue;
        out.labels[nb.node] = cluster;
        queue.push_back(nb.node);
      }
    }
  }
  return out;
}

std::vector<NodeId> LocalCluster(const PyramidIndex& index, NodeId query,
                                 uint32_t level) {
  const Graph& g = index.graph();
  std::vector<NodeId> members;
  // Visited set sized to the discovered frontier, not the graph: a local
  // query must not pay O(n). A hash set keyed by node id delivers that.
  std::vector<NodeId> stack = {query};
  std::unordered_set<NodeId> visited = {query};
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    members.push_back(x);
    for (const Neighbor& nb : g.Neighbors(x)) {
      if (!index.EdgePassesVote(nb.edge, level)) continue;
      if (visited.insert(nb.node).second) stack.push_back(nb.node);
    }
  }
  std::sort(members.begin(), members.end());
  return members;
}

uint32_t SmallestClusterLevel(const PyramidIndex& index, NodeId query,
                              uint32_t min_size,
                              std::vector<NodeId>* members) {
  for (uint32_t level = index.num_levels(); level >= 1; --level) {
    std::vector<NodeId> cluster = LocalCluster(index, query, level);
    if (cluster.size() >= min_size || level == 1) {
      if (members != nullptr) *members = std::move(cluster);
      return level;
    }
  }
  return 1;  // unreachable; level 1 returns above
}

}  // namespace anc
