#include "pyramid/clustering.h"

namespace anc {

// The live-index entry points instantiate the generic algorithms with
// PyramidIndex; serve::ClusterView instantiates the same templates, which
// is what makes snapshot queries byte-identical to live queries over an
// equal vote table.

Clustering EvenClustering(const PyramidIndex& index, uint32_t level) {
  return EvenClusteringOf(index, level);
}

Clustering PowerClustering(const PyramidIndex& index, uint32_t level) {
  return PowerClusteringOf(index, level);
}

std::vector<NodeId> LocalCluster(const PyramidIndex& index, NodeId query,
                                 uint32_t level) {
  return LocalClusterOf(index, query, level);
}

uint32_t SmallestClusterLevel(const PyramidIndex& index, NodeId query,
                              uint32_t min_size,
                              std::vector<NodeId>* members) {
  return SmallestClusterLevelOf(index, query, min_size, members);
}

}  // namespace anc
