#include "metrics/structural.h"

#include <algorithm>

namespace anc {

namespace {

/// Densified labels where every noise node becomes its own singleton
/// cluster, so structural sums cover the entire graph.
std::vector<uint32_t> WithSingletons(const Clustering& clustering,
                                     uint32_t* num_clusters) {
  std::vector<uint32_t> labels = clustering.labels;
  uint32_t next = clustering.num_clusters;
  for (uint32_t& l : labels) {
    if (l == kNoise) l = next++;
  }
  *num_clusters = next;
  return labels;
}

double WeightOf(const std::vector<double>& weights, EdgeId e) {
  return weights.empty() ? 1.0 : weights[e];
}

}  // namespace

double Modularity(const Graph& g, const Clustering& clustering,
                  const std::vector<double>& edge_weights) {
  uint32_t num_clusters = 0;
  std::vector<uint32_t> labels = WithSingletons(clustering, &num_clusters);

  std::vector<double> internal(num_clusters, 0.0);  // in_c (edge weights)
  std::vector<double> volume(num_clusters, 0.0);    // tot_c (degree mass)
  double total = 0.0;                               // W = sum of weights
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto& [u, v] = g.Endpoints(e);
    const double w = WeightOf(edge_weights, e);
    total += w;
    volume[labels[u]] += w;
    volume[labels[v]] += w;
    if (labels[u] == labels[v]) internal[labels[u]] += w;
  }
  if (total <= 0.0) return 0.0;
  double q = 0.0;
  const double two_w = 2.0 * total;
  for (uint32_t c = 0; c < num_clusters; ++c) {
    q += internal[c] / total - (volume[c] / two_w) * (volume[c] / two_w);
  }
  return q;
}

double MeanConductance(const Graph& g, const Clustering& clustering,
                       const std::vector<double>& edge_weights) {
  uint32_t num_clusters = 0;
  std::vector<uint32_t> labels = WithSingletons(clustering, &num_clusters);

  std::vector<double> cut(num_clusters, 0.0);
  std::vector<double> volume(num_clusters, 0.0);
  double total_volume = 0.0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto& [u, v] = g.Endpoints(e);
    const double w = WeightOf(edge_weights, e);
    volume[labels[u]] += w;
    volume[labels[v]] += w;
    total_volume += 2.0 * w;
    if (labels[u] != labels[v]) {
      cut[labels[u]] += w;
      cut[labels[v]] += w;
    }
  }
  double sum = 0.0;
  uint32_t counted = 0;
  for (uint32_t c = 0; c < num_clusters; ++c) {
    const double denom = std::min(volume[c], total_volume - volume[c]);
    if (denom <= 0.0) continue;
    sum += cut[c] / denom;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / counted;
}

}  // namespace anc
