#include "metrics/spectral.h"

#include <cmath>

#include "metrics/kmeans.h"

namespace anc {

namespace {

/// Multiplies Y = M X where M = D^{-1/2} (A + I) D^{-1/2}, X row-major
/// n x c. The +I (self loop) keeps the operator positive-semidefinite-ish
/// and damps oscillation between bipartite-like eigenvectors.
void Multiply(const Graph& g, const std::vector<double>& weights,
              const std::vector<double>& inv_sqrt_deg, uint32_t c,
              const std::vector<double>& x, std::vector<double>* y) {
  const uint32_t n = g.NumNodes();
  std::fill(y->begin(), y->end(), 0.0);
  for (NodeId v = 0; v < n; ++v) {
    double* out = y->data() + static_cast<size_t>(v) * c;
    const double* self = x.data() + static_cast<size_t>(v) * c;
    const double dv = inv_sqrt_deg[v];
    // Self loop contribution: dv^2 * x_v (weight 1 on the loop).
    for (uint32_t d = 0; d < c; ++d) out[d] += dv * dv * self[d];
    for (const Neighbor& nb : g.Neighbors(v)) {
      const double w = weights.empty() ? 1.0 : weights[nb.edge];
      const double coeff = dv * inv_sqrt_deg[nb.node] * w;
      const double* row = x.data() + static_cast<size_t>(nb.node) * c;
      for (uint32_t d = 0; d < c; ++d) out[d] += coeff * row[d];
    }
  }
}

/// Modified Gram-Schmidt over the columns of the row-major n x c matrix.
void Orthonormalize(uint32_t n, uint32_t c, std::vector<double>* x) {
  for (uint32_t j = 0; j < c; ++j) {
    // Subtract projections on previous columns.
    for (uint32_t i = 0; i < j; ++i) {
      double dot = 0.0;
      for (uint32_t r = 0; r < n; ++r) {
        dot += (*x)[static_cast<size_t>(r) * c + i] *
               (*x)[static_cast<size_t>(r) * c + j];
      }
      for (uint32_t r = 0; r < n; ++r) {
        (*x)[static_cast<size_t>(r) * c + j] -=
            dot * (*x)[static_cast<size_t>(r) * c + i];
      }
    }
    double norm = 0.0;
    for (uint32_t r = 0; r < n; ++r) {
      const double val = (*x)[static_cast<size_t>(r) * c + j];
      norm += val * val;
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) continue;  // degenerate column stays (near) zero
    const double inv = 1.0 / norm;
    for (uint32_t r = 0; r < n; ++r) {
      (*x)[static_cast<size_t>(r) * c + j] *= inv;
    }
  }
}

}  // namespace

Clustering SpectralClustering(const Graph& g,
                              const std::vector<double>& edge_weights,
                              const SpectralParams& params) {
  const uint32_t n = g.NumNodes();
  const uint32_t c = std::min(params.num_clusters, n);
  Rng rng(params.seed);

  std::vector<double> inv_sqrt_deg(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    double deg = 1.0;  // self loop
    for (const Neighbor& nb : g.Neighbors(v)) {
      deg += edge_weights.empty() ? 1.0 : edge_weights[nb.edge];
    }
    inv_sqrt_deg[v] = 1.0 / std::sqrt(deg);
  }

  std::vector<double> x(static_cast<size_t>(n) * c);
  for (double& val : x) val = rng.NextDouble() - 0.5;
  std::vector<double> y(x.size());
  Orthonormalize(n, c, &x);
  for (uint32_t iter = 0; iter < params.power_iterations; ++iter) {
    Multiply(g, edge_weights, inv_sqrt_deg, c, x, &y);
    x.swap(y);
    Orthonormalize(n, c, &x);
  }

  // Row-normalize the embedding (NJW step) before k-means.
  for (NodeId v = 0; v < n; ++v) {
    double* row = x.data() + static_cast<size_t>(v) * c;
    double norm = 0.0;
    for (uint32_t d = 0; d < c; ++d) norm += row[d] * row[d];
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (uint32_t d = 0; d < c; ++d) row[d] /= norm;
    }
  }

  Clustering out;
  out.labels = KMeans(x, n, c, c, params.kmeans_iterations, rng);
  out.num_clusters = c;
  // k-means may leave some of the c clusters empty; densify.
  return Clustering::FromLabels(std::move(out.labels));
}

}  // namespace anc
