#ifndef ANC_METRICS_QUALITY_H_
#define ANC_METRICS_QUALITY_H_

#include "graph/clustering_types.h"

namespace anc {

/// Ground-truth-based clustering quality metrics of Section VI-A. All three
/// are computed over the nodes that are assigned (non-noise) in *both*
/// clusterings; both arguments must label the same node universe.

/// Normalized Mutual Information with sqrt normalization
/// (Strehl & Ghosh 2002): I(X;Y) / sqrt(H(X) H(Y)). In [0, 1].
double Nmi(const Clustering& predicted, const Clustering& truth);

/// Purity: sum_c max_t |c intersect t| / N, where c ranges over predicted
/// clusters and t over ground-truth clusters. In (0, 1].
double Purity(const Clustering& predicted, const Clustering& truth);

/// Average best-match F1: for each truth cluster the best-F1 predicted
/// cluster and vice versa, size-weighted, averaged over both directions.
double F1Score(const Clustering& predicted, const Clustering& truth);

/// Adjusted Rand Index (Hubert & Arabie 1985): pair-counting agreement
/// corrected for chance. 1 for identical partitions, ~0 for independent
/// ones, can be negative for adversarial disagreement.
double AdjustedRandIndex(const Clustering& predicted, const Clustering& truth);

}  // namespace anc

#endif  // ANC_METRICS_QUALITY_H_
