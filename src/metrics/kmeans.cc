#include "metrics/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.h"

namespace anc {

namespace {

double SquaredDistance(const double* a, const double* b, uint32_t dim) {
  double total = 0.0;
  for (uint32_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    total += diff * diff;
  }
  return total;
}

}  // namespace

std::vector<uint32_t> KMeans(const std::vector<double>& points,
                             uint32_t num_points, uint32_t dim, uint32_t k,
                             uint32_t max_iters, Rng& rng) {
  ANC_CHECK(points.size() == static_cast<size_t>(num_points) * dim,
            "points size mismatch");
  ANC_CHECK(k >= 1, "k must be >= 1");
  k = std::min(k, num_points);

  // --- k-means++ seeding ---
  std::vector<double> centers(static_cast<size_t>(k) * dim, 0.0);
  std::vector<double> min_dist(num_points,
                               std::numeric_limits<double>::infinity());
  uint32_t first = static_cast<uint32_t>(rng.Uniform(num_points));
  std::copy_n(points.data() + static_cast<size_t>(first) * dim, dim,
              centers.data());
  for (uint32_t c = 1; c < k; ++c) {
    double total = 0.0;
    const double* prev = centers.data() + static_cast<size_t>(c - 1) * dim;
    for (uint32_t p = 0; p < num_points; ++p) {
      const double d =
          SquaredDistance(points.data() + static_cast<size_t>(p) * dim, prev,
                          dim);
      min_dist[p] = std::min(min_dist[p], d);
      total += min_dist[p];
    }
    uint32_t chosen = 0;
    if (total > 0.0) {
      double target = rng.NextDouble() * total;
      for (uint32_t p = 0; p < num_points; ++p) {
        target -= min_dist[p];
        if (target <= 0.0) {
          chosen = p;
          break;
        }
      }
    } else {
      chosen = static_cast<uint32_t>(rng.Uniform(num_points));
    }
    std::copy_n(points.data() + static_cast<size_t>(chosen) * dim, dim,
                centers.data() + static_cast<size_t>(c) * dim);
  }

  // --- Lloyd iterations ---
  std::vector<uint32_t> assignment(num_points, 0);
  std::vector<uint32_t> counts(k, 0);
  for (uint32_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (uint32_t p = 0; p < num_points; ++p) {
      const double* row = points.data() + static_cast<size_t>(p) * dim;
      double best = std::numeric_limits<double>::infinity();
      uint32_t best_c = 0;
      for (uint32_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(
            row, centers.data() + static_cast<size_t>(c) * dim, dim);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assignment[p] != best_c) {
        assignment[p] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::fill(centers.begin(), centers.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (uint32_t p = 0; p < num_points; ++p) {
      const uint32_t c = assignment[p];
      ++counts[c];
      const double* row = points.data() + static_cast<size_t>(p) * dim;
      double* center = centers.data() + static_cast<size_t>(c) * dim;
      for (uint32_t d = 0; d < dim; ++d) center[d] += row[d];
    }
    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps zero center
      double* center = centers.data() + static_cast<size_t>(c) * dim;
      for (uint32_t d = 0; d < dim; ++d) center[d] /= counts[c];
    }
  }
  return assignment;
}

}  // namespace anc
