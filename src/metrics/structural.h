#ifndef ANC_METRICS_STRUCTURAL_H_
#define ANC_METRICS_STRUCTURAL_H_

#include <vector>

#include "graph/clustering_types.h"
#include "graph/graph.h"

namespace anc {

/// Structural quality metrics of Section VI-A (no ground truth needed).
/// Noise nodes are treated as singleton communities so every edge is
/// accounted for. `edge_weights` may be empty for the unweighted case.

/// Newman modularity Q = sum_c [ in_c / (2W) - (tot_c / (2W))^2 ].
/// Higher is better; in [-0.5, 1).
double Modularity(const Graph& g, const Clustering& clustering,
                  const std::vector<double>& edge_weights = {});

/// Mean conductance over clusters with positive volume:
/// phi(c) = cut(c) / min(vol(c), vol(V \ c)). Lower is better.
double MeanConductance(const Graph& g, const Clustering& clustering,
                       const std::vector<double>& edge_weights = {});

}  // namespace anc

#endif  // ANC_METRICS_STRUCTURAL_H_
