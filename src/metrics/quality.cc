#include "metrics/quality.h"

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace anc {

namespace {

/// Sparse contingency table between two clusterings restricted to nodes
/// assigned in both, plus marginals.
struct Contingency {
  // joint[(a << 32) | b] = |cluster a of X  intersect  cluster b of Y|
  std::unordered_map<uint64_t, uint32_t> joint;
  std::vector<uint32_t> x_sizes;
  std::vector<uint32_t> y_sizes;
  uint64_t total = 0;
};

Contingency BuildContingency(const Clustering& x, const Clustering& y) {
  ANC_CHECK(x.labels.size() == y.labels.size(),
            "clusterings must label the same node universe");
  Contingency table;
  table.x_sizes.assign(x.num_clusters, 0);
  table.y_sizes.assign(y.num_clusters, 0);
  for (size_t v = 0; v < x.labels.size(); ++v) {
    const uint32_t a = x.labels[v];
    const uint32_t b = y.labels[v];
    if (a == kNoise || b == kNoise) continue;
    ++table.joint[(static_cast<uint64_t>(a) << 32) | b];
    ++table.x_sizes[a];
    ++table.y_sizes[b];
    ++table.total;
  }
  return table;
}

double Entropy(const std::vector<uint32_t>& sizes, double total) {
  double h = 0.0;
  for (uint32_t s : sizes) {
    if (s == 0) continue;
    const double p = s / total;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

double Nmi(const Clustering& predicted, const Clustering& truth) {
  Contingency table = BuildContingency(predicted, truth);
  if (table.total == 0) return 0.0;
  const double n = static_cast<double>(table.total);
  double mutual = 0.0;
  for (const auto& [key, count] : table.joint) {
    const uint32_t a = static_cast<uint32_t>(key >> 32);
    const uint32_t b = static_cast<uint32_t>(key & 0xFFFFFFFFu);
    const double pab = count / n;
    const double pa = table.x_sizes[a] / n;
    const double pb = table.y_sizes[b] / n;
    mutual += pab * std::log(pab / (pa * pb));
  }
  const double hx = Entropy(table.x_sizes, n);
  const double hy = Entropy(table.y_sizes, n);
  if (hx <= 0.0 || hy <= 0.0) {
    // One side is a single cluster: NMI is 1 only if both are.
    return (hx <= 0.0 && hy <= 0.0) ? 1.0 : 0.0;
  }
  return mutual / std::sqrt(hx * hy);
}

double Purity(const Clustering& predicted, const Clustering& truth) {
  Contingency table = BuildContingency(predicted, truth);
  if (table.total == 0) return 0.0;
  // max over truth clusters per predicted cluster.
  std::vector<uint32_t> best(predicted.num_clusters, 0);
  for (const auto& [key, count] : table.joint) {
    const uint32_t a = static_cast<uint32_t>(key >> 32);
    if (count > best[a]) best[a] = count;
  }
  uint64_t matched = 0;
  for (uint32_t b : best) matched += b;
  return static_cast<double>(matched) / static_cast<double>(table.total);
}

double AdjustedRandIndex(const Clustering& predicted,
                         const Clustering& truth) {
  Contingency table = BuildContingency(predicted, truth);
  if (table.total < 2) return 0.0;
  auto choose2 = [](uint64_t x) -> double {
    return 0.5 * static_cast<double>(x) * static_cast<double>(x - 1);
  };
  double sum_joint = 0.0;
  for (const auto& [key, count] : table.joint) {
    (void)key;
    sum_joint += choose2(count);
  }
  double sum_x = 0.0;
  for (uint32_t s : table.x_sizes) sum_x += choose2(s);
  double sum_y = 0.0;
  for (uint32_t s : table.y_sizes) sum_y += choose2(s);
  const double total_pairs = choose2(table.total);
  const double expected = sum_x * sum_y / total_pairs;
  const double max_index = 0.5 * (sum_x + sum_y);
  if (max_index == expected) return 1.0;  // both trivial partitions
  return (sum_joint - expected) / (max_index - expected);
}

double F1Score(const Clustering& predicted, const Clustering& truth) {
  Contingency table = BuildContingency(predicted, truth);
  if (table.total == 0) return 0.0;

  // best_f1_x[a]: best F1 of predicted cluster a against any truth cluster;
  // symmetric for truth clusters.
  std::vector<double> best_x(predicted.num_clusters, 0.0);
  std::vector<double> best_y(truth.num_clusters, 0.0);
  for (const auto& [key, count] : table.joint) {
    const uint32_t a = static_cast<uint32_t>(key >> 32);
    const uint32_t b = static_cast<uint32_t>(key & 0xFFFFFFFFu);
    const double precision = static_cast<double>(count) / table.x_sizes[a];
    const double recall = static_cast<double>(count) / table.y_sizes[b];
    const double f1 = 2.0 * precision * recall / (precision + recall);
    if (f1 > best_x[a]) best_x[a] = f1;
    if (f1 > best_y[b]) best_y[b] = f1;
  }
  double x_avg = 0.0;
  for (uint32_t a = 0; a < predicted.num_clusters; ++a) {
    x_avg += best_x[a] * table.x_sizes[a];
  }
  double y_avg = 0.0;
  for (uint32_t b = 0; b < truth.num_clusters; ++b) {
    y_avg += best_y[b] * table.y_sizes[b];
  }
  const double n = static_cast<double>(table.total);
  return 0.5 * (x_avg / n + y_avg / n);
}

}  // namespace anc
