#ifndef ANC_METRICS_KMEANS_H_
#define ANC_METRICS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace anc {

/// Lloyd's k-means with k-means++ seeding over row-major points
/// (`num_points` rows of `dim` doubles). Returns the per-point cluster
/// assignment in [0, k). Used by the spectral-clustering ground-truth
/// generator.
std::vector<uint32_t> KMeans(const std::vector<double>& points,
                             uint32_t num_points, uint32_t dim, uint32_t k,
                             uint32_t max_iters, Rng& rng);

}  // namespace anc

#endif  // ANC_METRICS_KMEANS_H_
