#ifndef ANC_METRICS_SPECTRAL_H_
#define ANC_METRICS_SPECTRAL_H_

#include <vector>

#include "graph/clustering_types.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace anc {

/// Parameters of the spectral-clustering ground-truth generator.
struct SpectralParams {
  uint32_t num_clusters = 8;
  uint32_t power_iterations = 30;  ///< subspace-iteration rounds
  uint32_t kmeans_iterations = 50;
  uint64_t seed = 7;
};

/// Normalized spectral clustering (Ng-Jordan-Weiss 2001), the ground-truth
/// generator the paper uses for activation-network snapshots (Section
/// VI-A). Computes the leading `num_clusters`-dimensional invariant
/// subspace of the normalized (weighted) adjacency
///     M = D^{-1/2} (A + I) D^{-1/2}
/// by subspace iteration with modified Gram-Schmidt re-orthogonalization
/// (an iterative substitute for a dense eigensolver — see DESIGN.md
/// substitution #2), row-normalizes the embedding and runs k-means++.
///
/// `edge_weights` may be empty for the unweighted case; otherwise it gives
/// the snapshot's edge weights (activeness or similarity).
Clustering SpectralClustering(const Graph& g,
                              const std::vector<double>& edge_weights,
                              const SpectralParams& params);

}  // namespace anc

#endif  // ANC_METRICS_SPECTRAL_H_
