#include "activation/activeness.h"

namespace anc {

Status ActivenessStore::Activate(EdgeId e, double t, double* delta) {
  if (e >= anchored_.size()) {
    return Status::OutOfRange("edge id " + std::to_string(e) +
                              " out of range");
  }
  if (t < last_time_) {
    return Status::InvalidArgument(
        "activation timestamps must be non-decreasing (got " +
        std::to_string(t) + " after " + std::to_string(last_time_) + ")");
  }
  last_time_ = t;
  return ActivateAnchored(e, t, delta);
}

Status ActivenessStore::ActivateAnchored(EdgeId e, double t, double* delta) {
  if (e >= anchored_.size()) {
    return Status::OutOfRange("edge id " + std::to_string(e) +
                              " out of range");
  }
  // The clock is owned by the strict path: an import must not advance it,
  // or the owner's still-queued in-order records (behind the import's
  // timestamps) would start failing Activate's monotonicity check. The
  // anchor in turn only ever advances to the strict clock, preserving the
  // serialized invariant anchor_time() <= last_time() — which bounds how
  // far ahead of last_time() an anchored apply can run: past the exponent
  // budget no rescale can keep e^{lambda (t - t*)} representable, so the
  // activation is rejected instead of poisoning the anchored values.
  if (lambda_ * (t - last_time_) > kMaxExponent) {
    return Status::InvalidArgument(
        "anchored activation at t=" + std::to_string(t) +
        " runs too far ahead of the stream clock " +
        std::to_string(last_time_) +
        " (exponent budget exceeded; the anchor cannot pass the strict "
        "clock)");
  }
  // The overflow guard keys on the farthest time this increment touches.
  if (lambda_ * (std::max(t, last_time_) - anchor_time_) > kMaxExponent ||
      ++since_rescale_ >= rescale_interval_) {
    Rescale(last_time_);
  }
  // Increase of a_t(e) by 1 (Eq. 1) == increase of a*(e) by 1/g(t, t*).
  const double increment = std::exp(lambda_ * (t - anchor_time_));
  anchored_.Mut(e) += increment;
  if (delta != nullptr) *delta = increment;
  return Status::OK();
}

Status ActivenessStore::ActivateAll(const ActivationStream& stream) {
  for (const Activation& a : stream) {
    ANC_RETURN_NOT_OK(Activate(a.edge, a.time));
  }
  return Status::OK();
}

Status ActivenessStore::RestoreAnchored(std::vector<double> anchored,
                                        double anchor_time,
                                        double last_time) {
  if (anchored.size() != anchored_.size()) {
    return Status::InvalidArgument("anchored size mismatch");
  }
  if (anchor_time > last_time) {
    return Status::InvalidArgument("anchor_time must be <= last_time");
  }
  anchored_.Assign(anchored);
  anchor_time_ = anchor_time;
  last_time_ = last_time;
  since_rescale_ = 0;
  return Status::OK();
}

void ActivenessStore::Rescale(double t) {
  const double g = GlobalFactor(t);
  anchored_.ForEachMutable([g](size_t, double& a) { a *= g; });
  anchor_time_ = t;
  since_rescale_ = 0;
  ++rescale_count_;
  if (rescale_hook_) rescale_hook_(g);
}

}  // namespace anc
