#ifndef ANC_ACTIVATION_STREAM_IO_H_
#define ANC_ACTIVATION_STREAM_IO_H_

#include <cstddef>
#include <string>

#include "activation/activeness.h"
#include "graph/graph.h"
#include "util/status.h"

namespace anc {

/// Writes an activation stream as "u v t" lines (endpoint-based, so the
/// file is meaningful across any program that loads the same edge list;
/// '#' comments allowed). Timestamps print with full round-trip precision.
Status SaveActivationStream(const Graph& g, const ActivationStream& stream,
                            const std::string& path);

/// Loader behavior for bad lines.
struct StreamLoadOptions {
  /// false (default): fail on the first bad line with a Status pinpointing
  /// "path:line", the offending text and the reason. true: skip bad lines
  /// (malformed fields, non-edges, regressed timestamps), count them in
  /// the report, and keep loading.
  bool skip_bad_lines = false;
};

/// What the loader saw (filled when a report pointer is passed; valid on
/// success and on failure).
struct StreamLoadReport {
  size_t data_lines = 0;    ///< non-comment, non-blank lines seen
  size_t loaded = 0;        ///< activations appended to the stream
  size_t skipped = 0;       ///< bad lines skipped (skip_bad_lines mode)
  std::string first_error;  ///< "path:line: reason" of the first bad line
};

/// Reads a stream saved by SaveActivationStream (or hand-written "u v t"
/// lines). Errors carry file:line context, the offending line text and
/// the failing field. Fails with InvalidArgument when a line references a
/// non-edge or regresses the timestamp (timestamps must be non-decreasing
/// to be replayable; validated here rather than at replay time), IoError
/// on malformed lines — unless options.skip_bad_lines, which skips and
/// counts them instead.
Result<ActivationStream> LoadActivationStream(
    const Graph& g, const std::string& path,
    const StreamLoadOptions& options, StreamLoadReport* report = nullptr);

/// Strict loader (fails on the first bad line) — the original interface.
Result<ActivationStream> LoadActivationStream(const Graph& g,
                                              const std::string& path);

}  // namespace anc

#endif  // ANC_ACTIVATION_STREAM_IO_H_
