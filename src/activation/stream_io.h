#ifndef ANC_ACTIVATION_STREAM_IO_H_
#define ANC_ACTIVATION_STREAM_IO_H_

#include <string>

#include "activation/activeness.h"
#include "graph/graph.h"
#include "util/status.h"

namespace anc {

/// Writes an activation stream as "u v t" lines (endpoint-based, so the
/// file is meaningful across any program that loads the same edge list;
/// '#' comments allowed). Timestamps print with full round-trip precision.
Status SaveActivationStream(const Graph& g, const ActivationStream& stream,
                            const std::string& path);

/// Reads a stream saved by SaveActivationStream (or hand-written "u v t"
/// lines). Fails with InvalidArgument when a line references a non-edge,
/// and IoError on malformed lines. Timestamps must be non-decreasing to be
/// replayable; this is validated here rather than at replay time.
Result<ActivationStream> LoadActivationStream(const Graph& g,
                                              const std::string& path);

}  // namespace anc

#endif  // ANC_ACTIVATION_STREAM_IO_H_
