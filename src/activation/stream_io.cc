#include "activation/stream_io.h"

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

namespace anc {

namespace {

/// "path:line: <reason> in "<line text>"" — every loader diagnostic names
/// the exact file position and quotes the offending line (truncated).
std::string LineContext(const std::string& path, size_t line_number,
                        const std::string& line, const std::string& reason) {
  constexpr size_t kMaxQuoted = 64;
  std::string quoted = line.substr(0, kMaxQuoted);
  if (line.size() > kMaxQuoted) quoted += "...";
  return path + ":" + std::to_string(line_number) + ": " + reason + " in \"" +
         quoted + "\"";
}

const char* FieldName(int field) {
  switch (field) {
    case 0:
      return "first endpoint";
    case 1:
      return "second endpoint";
    default:
      return "timestamp";
  }
}

/// Parses one "u v t" data line; on failure returns the reason (which
/// field, which token). Trailing junk after the three fields is malformed
/// — it usually means a corrupted or mis-formatted file, and silently
/// ignoring it hides the corruption.
bool ParseActivationLine(const std::string& line, NodeId* u, NodeId* v,
                         double* t, std::string* reason) {
  std::istringstream fields(line);
  std::string token;
  for (int field = 0; field < 3; ++field) {
    if (!(fields >> token)) {
      *reason = std::string("missing ") + FieldName(field) +
                " (expected \"u v t\")";
      return false;
    }
    std::istringstream value(token);
    bool ok = false;
    if (field < 3 - 1) {
      NodeId* out = field == 0 ? u : v;
      long long parsed = 0;
      ok = static_cast<bool>(value >> parsed) && value.eof() && parsed >= 0 &&
           parsed <= std::numeric_limits<NodeId>::max();
      if (ok) *out = static_cast<NodeId>(parsed);
    } else {
      ok = static_cast<bool>(value >> *t) && value.eof();
    }
    if (!ok) {
      *reason = std::string("bad ") + FieldName(field) + " \"" + token + "\"";
      return false;
    }
  }
  if (fields >> token) {
    *reason = "trailing content \"" + token + "\" after the three fields";
    return false;
  }
  return true;
}

}  // namespace

Status SaveActivationStream(const Graph& g, const ActivationStream& stream,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# anc activation stream: " << stream.size() << " activations\n";
  out.precision(17);
  for (const Activation& a : stream) {
    if (a.edge >= g.NumEdges()) {
      return Status::InvalidArgument("activation references edge " +
                                     std::to_string(a.edge) +
                                     " outside the graph");
    }
    const auto& [u, v] = g.Endpoints(a.edge);
    out << u << ' ' << v << ' ' << a.time << '\n';
  }
  if (!out) return Status::IoError("write error on " + path);
  return Status::OK();
}

Result<ActivationStream> LoadActivationStream(const Graph& g,
                                              const std::string& path,
                                              const StreamLoadOptions& options,
                                              StreamLoadReport* report) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  ActivationStream stream;
  StreamLoadReport local_report;
  StreamLoadReport& rep = report != nullptr ? *report : local_report;
  rep = StreamLoadReport{};
  std::string line;
  size_t line_number = 0;
  double last_time = -std::numeric_limits<double>::infinity();

  const auto fail_or_skip = [&](StatusCode code,
                                const std::string& message) -> Status {
    if (rep.first_error.empty()) rep.first_error = message;
    if (options.skip_bad_lines) {
      ++rep.skipped;
      return Status::OK();
    }
    return Status(code, message);
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    ++rep.data_lines;
    NodeId u = 0;
    NodeId v = 0;
    double t = 0.0;
    std::string reason;
    if (!ParseActivationLine(line, &u, &v, &t, &reason)) {
      ANC_RETURN_NOT_OK(fail_or_skip(
          StatusCode::kIoError,
          LineContext(path, line_number, line,
                      "malformed activation line: " + reason)));
      continue;
    }
    auto e = g.FindEdge(u, v);
    if (!e.has_value()) {
      ANC_RETURN_NOT_OK(fail_or_skip(
          StatusCode::kInvalidArgument,
          LineContext(path, line_number, line,
                      "(" + std::to_string(u) + ", " + std::to_string(v) +
                          ") is not an edge of the graph")));
      continue;
    }
    if (t < last_time) {
      ANC_RETURN_NOT_OK(fail_or_skip(
          StatusCode::kInvalidArgument,
          LineContext(path, line_number, line,
                      "timestamp regressed (must be non-decreasing; "
                      "previous was " +
                          std::to_string(last_time) + ")")));
      continue;
    }
    last_time = t;
    stream.push_back({*e, t});
    ++rep.loaded;
  }
  return stream;
}

Result<ActivationStream> LoadActivationStream(const Graph& g,
                                              const std::string& path) {
  return LoadActivationStream(g, path, StreamLoadOptions{}, nullptr);
}

}  // namespace anc
