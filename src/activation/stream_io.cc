#include "activation/stream_io.h"

#include <limits>
#include <fstream>
#include <sstream>

namespace anc {

Status SaveActivationStream(const Graph& g, const ActivationStream& stream,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# anc activation stream: " << stream.size() << " activations\n";
  out.precision(17);
  for (const Activation& a : stream) {
    if (a.edge >= g.NumEdges()) {
      return Status::InvalidArgument("activation references edge " +
                                     std::to_string(a.edge) +
                                     " outside the graph");
    }
    const auto& [u, v] = g.Endpoints(a.edge);
    out << u << ' ' << v << ' ' << a.time << '\n';
  }
  if (!out) return Status::IoError("write error on " + path);
  return Status::OK();
}

Result<ActivationStream> LoadActivationStream(const Graph& g,
                                              const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  ActivationStream stream;
  std::string line;
  size_t line_number = 0;
  double last_time = -std::numeric_limits<double>::infinity();
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    NodeId u = 0;
    NodeId v = 0;
    double t = 0.0;
    if (!(fields >> u >> v >> t)) {
      return Status::IoError(path + ":" + std::to_string(line_number) +
                             ": malformed activation line");
    }
    auto e = g.FindEdge(u, v);
    if (!e.has_value()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": (" +
          std::to_string(u) + ", " + std::to_string(v) + ") is not an edge");
    }
    if (t < last_time) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": timestamps must be non-decreasing");
    }
    last_time = t;
    stream.push_back({*e, t});
  }
  return stream;
}

}  // namespace anc
