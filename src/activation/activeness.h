#ifndef ANC_ACTIVATION_ACTIVENESS_H_
#define ANC_ACTIVATION_ACTIVENESS_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "tier/column.h"
#include "util/status.h"

namespace anc::check {
class TestHooks;
}  // namespace anc::check

namespace anc {

/// One activation: an interaction on an existing edge at a timestamp
/// (Section III). The relation graph never changes; only edge state does.
struct Activation {
  EdgeId edge;
  double time;
};

using ActivationStream = std::vector<Activation>;

/// Maintains the time-decay activeness of Eq. (1),
///   a_t(e) = sum_i e^{-lambda (t - t_i)},
/// under the *global decay factor* of Definition 1: each edge stores the
/// anchored activeness a*_t(e) = a_t(e) / g(t, t*) with
/// g(t, t*) = e^{-lambda (t - t*)} and a single shared anchor time t*.
///
/// Between activations nothing is touched (Observation 1: all unactivated
/// edges decay at the same pace); an activation on edge e at time t adds
/// 1/g(t, t*) = e^{lambda (t - t*)} to a*(e) only. A *batched rescale*
/// (Lemma 1) periodically folds the global factor into the anchored values
/// and advances t*, keeping the exponent e^{lambda (t - t*)} representable.
/// Total maintenance cost is linear in the number of activations.
class ActivenessStore {
 public:
  /// Creates the store for `num_edges` edges, all with anchored activeness
  /// `initial` at anchor time 0. The paper's online methods start from
  /// initial edge activeness 1 (Section VI "The initial edge activeness
  /// is 1"); fresh cold-start networks use 0.
  ActivenessStore(uint32_t num_edges, double lambda, double initial = 0.0)
      : lambda_(lambda), anchored_(num_edges, initial) {
    ANC_CHECK(lambda >= 0.0, "decay factor lambda must be non-negative");
  }

  double lambda() const { return lambda_; }
  double anchor_time() const { return anchor_time_; }
  double last_time() const { return last_time_; }
  uint32_t num_edges() const { return static_cast<uint32_t>(anchored_.size()); }

  /// Hands the anchored-activeness array to a storage tier
  /// (docs/storage_tiers.md): cold pages of a*(e) then live in mmap'd
  /// segments and promote transparently on the next write.
  void AttachTier(tier::ColumnHost* host) {
    anchored_.Attach(host, tier::kColAnchored);
  }

  /// Global decay factor g(t, t*) = e^{-lambda (t - t*)}.
  double GlobalFactor(double t) const {
    return std::exp(-lambda_ * (t - anchor_time_));
  }

  /// Anchored activeness a*(e) (time-invariant between activations).
  double Anchored(EdgeId e) const { return anchored_[e]; }

  /// True activeness a_t(e) = a*(e) * g(t, t*). `t` must be >= the latest
  /// activation time to be meaningful under Eq. (1).
  double ActivenessAt(EdgeId e, double t) const {
    return anchored_[e] * GlobalFactor(t);
  }

  /// Applies one activation (e, t). Timestamps must be non-decreasing.
  /// O(1) amortized; triggers a batched rescale when the pending exponent
  /// would endanger double precision or every `rescale_interval`
  /// activations. If `delta` is non-null it receives the anchored increment
  /// 1/g(t, t*) added to a*(e), so co-maintained derived state (sigma
  /// caches) can apply the same bump.
  Status Activate(EdgeId e, double t, double* delta = nullptr);

  /// Like Activate, but tolerates timestamps on either side of
  /// last_time() — the replica-import path (live shard migration and its
  /// crash-recovery splice) replays one component's history into an index
  /// whose own stream sits elsewhere in time. The anchored increment
  /// 1/g(t, t*) = e^{lambda (t - t*)} is exact for *any* t, so an
  /// out-of-order replay adds exactly the mass an in-order replay would
  /// have. The clock is deliberately NOT advanced: it belongs to the
  /// strict stream, and an import running ahead of it must not make the
  /// owner's still-queued in-order records look time-reversed.
  ///
  /// Tolerance bound: because the anchor can never pass the strict clock
  /// (anchor_time() <= last_time() is a serialized invariant), a t more
  /// than kMaxExponent / lambda *ahead* of last_time() has no
  /// representable increment and is rejected (InvalidArgument).
  /// Arbitrarily-old timestamps are fine — their increments merely
  /// underflow toward the (genuinely negligible) decayed mass.
  Status ActivateAnchored(EdgeId e, double t, double* delta = nullptr);

  /// Applies a whole stream (convenience wrapper over Activate).
  Status ActivateAll(const ActivationStream& stream);

  /// Folds the global factor into every anchored value and re-anchors at t.
  /// Public so callers co-maintaining derived state (similarity, index) can
  /// force a shared anchor; ActivenessStore invokes it automatically.
  void Rescale(double t);

  /// Sets the number of activations between automatic batched rescales
  /// (default 1<<20). The precision guard (exponent bound) always applies.
  void set_rescale_interval(uint64_t interval) { rescale_interval_ = interval; }

  /// Number of batched rescales performed so far (observable for tests and
  /// the decay-maintenance ablation).
  uint64_t rescale_count() const { return rescale_count_; }

  /// Registers a callback invoked with the applied factor g whenever a
  /// batched rescale fires, so state derived from the activeness (PosM
  /// similarity, sigma caches) stays anchored at the same t* (Lemma 2).
  void SetRescaleHook(std::function<void(double factor)> hook) {
    rescale_hook_ = std::move(hook);
  }

  /// Serialization support: replaces the anchored values and clock state
  /// wholesale. Size must match; timestamps must satisfy
  /// anchor_time <= last_time.
  Status RestoreAnchored(std::vector<double> anchored, double anchor_time,
                         double last_time);

 private:
  /// Test-only corruption seam (tests/check_test.cc): lets the invariant-
  /// checker tests plant negative / NaN anchored values.
  friend class ::anc::check::TestHooks;

  // Beyond this value of lambda * (t - t*), e^{+x} risks drowning small
  // anchored values; well inside double range (max exponent ~709).
  static constexpr double kMaxExponent = 60.0;

  double lambda_;
  double anchor_time_ = 0.0;
  double last_time_ = 0.0;
  uint64_t since_rescale_ = 0;
  uint64_t rescale_interval_ = 1ull << 20;
  uint64_t rescale_count_ = 0;
  tier::Column<double> anchored_;
  std::function<void(double)> rescale_hook_;
};

/// Reference implementation that stores every activation and evaluates
/// Eq. (1) directly. O(activations on e) per query and O(m) per decay tick —
/// exactly the cost the global decay factor removes. Used by tests as ground
/// truth and by the decay-maintenance ablation bench as the naive baseline.
class NaiveActiveness {
 public:
  NaiveActiveness(uint32_t num_edges, double lambda)
      : lambda_(lambda), history_(num_edges) {}

  void Activate(EdgeId e, double t) { history_[e].push_back(t); }

  double ActivenessAt(EdgeId e, double t) const {
    double total = 0.0;
    for (double ti : history_[e]) {
      if (ti <= t) total += std::exp(-lambda_ * (t - ti));
    }
    return total;
  }

  /// Simulates the per-tick "decay everything" maintenance an index without
  /// the global factor must perform: touches every edge once. Returns a
  /// checksum so the work cannot be optimized away.
  double DecayTick(double t) const {
    double checksum = 0.0;
    for (EdgeId e = 0; e < history_.size(); ++e) checksum += ActivenessAt(e, t);
    return checksum;
  }

 private:
  double lambda_;
  std::vector<std::vector<double>> history_;
};

}  // namespace anc

#endif  // ANC_ACTIVATION_ACTIVENESS_H_
