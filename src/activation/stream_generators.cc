#include "activation/stream_generators.h"

#include <algorithm>
#include <cmath>

namespace anc {

ActivationStream UniformStream(const Graph& g, uint32_t num_steps,
                               double fraction, Rng& rng) {
  const uint32_t m = g.NumEdges();
  const uint32_t per_step =
      std::max<uint32_t>(1, static_cast<uint32_t>(fraction * m));
  ActivationStream stream;
  stream.reserve(static_cast<size_t>(per_step) * num_steps);
  for (uint32_t step = 1; step <= num_steps; ++step) {
    std::vector<uint32_t> picked = rng.SampleWithoutReplacement(m, per_step);
    for (uint32_t e : picked) {
      stream.push_back({e, static_cast<double>(step)});
    }
  }
  return stream;
}

ActivationStream CommunityBiasedStream(const Graph& g,
                                       const std::vector<uint32_t>& membership,
                                       uint32_t num_steps, double fraction,
                                       double intra_boost, Rng& rng) {
  const uint32_t m = g.NumEdges();
  const uint32_t per_step =
      std::max<uint32_t>(1, static_cast<uint32_t>(fraction * m));
  // Weighted sampling via the alias-free CDF walk: weights are small-domain
  // (two values), so we split edges into intra/inter pools and draw the pool
  // first.
  std::vector<EdgeId> intra;
  std::vector<EdgeId> inter;
  for (EdgeId e = 0; e < m; ++e) {
    const auto& [u, v] = g.Endpoints(e);
    (membership[u] == membership[v] ? intra : inter).push_back(e);
  }
  const double intra_mass = intra_boost * static_cast<double>(intra.size());
  const double total_mass = intra_mass + static_cast<double>(inter.size());

  ActivationStream stream;
  stream.reserve(static_cast<size_t>(per_step) * num_steps);
  for (uint32_t step = 1; step <= num_steps; ++step) {
    for (uint32_t i = 0; i < per_step; ++i) {
      bool pick_intra =
          !intra.empty() &&
          (inter.empty() || rng.NextDouble() * total_mass < intra_mass);
      const auto& pool = pick_intra ? intra : inter;
      stream.push_back(
          {pool[rng.Uniform(pool.size())], static_cast<double>(step)});
    }
  }
  return stream;
}

ActivationStream DiurnalStream(const Graph& g, uint32_t minutes,
                               double mean_per_minute, double burst_prob,
                               double burst_scale, Rng& rng) {
  const uint32_t m = g.NumEdges();
  ActivationStream stream;
  constexpr double kPi = 3.14159265358979323846;
  for (uint32_t minute = 0; minute < minutes; ++minute) {
    // Sinusoid peaking mid-"day" with an off-peak floor of 20%.
    const double phase =
        std::sin(kPi * static_cast<double>(minute) / minutes);
    double rate = mean_per_minute * (0.2 + 0.8 * phase * phase);
    if (rng.Bernoulli(burst_prob)) {
      // Pareto(alpha=1.5) burst multiplier, capped to keep replay bounded.
      const double u = std::max(rng.NextDouble(), 1e-9);
      rate *= std::min(burst_scale * std::pow(u, -1.0 / 1.5), 50.0);
    }
    const uint32_t count = static_cast<uint32_t>(rate);
    for (uint32_t i = 0; i < count; ++i) {
      stream.push_back({static_cast<EdgeId>(rng.Uniform(m)),
                        static_cast<double>(minute)});
    }
  }
  return stream;
}

std::vector<ActivationStream> SplitIntoBatches(const ActivationStream& stream,
                                               uint32_t batch_size) {
  ANC_CHECK(batch_size > 0, "batch_size must be positive");
  std::vector<ActivationStream> batches;
  for (size_t begin = 0; begin < stream.size(); begin += batch_size) {
    size_t end = std::min(stream.size(), begin + batch_size);
    batches.emplace_back(stream.begin() + begin, stream.begin() + end);
  }
  return batches;
}

std::vector<ActivationStream> SplitByTimestamp(const ActivationStream& stream,
                                               uint32_t num_batches) {
  std::vector<ActivationStream> batches(num_batches);
  for (const Activation& a : stream) {
    uint32_t slot = static_cast<uint32_t>(a.time);
    if (slot >= num_batches) slot = num_batches - 1;
    batches[slot].push_back(a);
  }
  return batches;
}

}  // namespace anc
