#ifndef ANC_ACTIVATION_STREAM_GENERATORS_H_
#define ANC_ACTIVATION_STREAM_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "activation/activeness.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace anc {

/// Generates the paper's Exp-2 style stream: `num_steps` timestamps (1, 2,
/// ...), each activating `fraction` of the edges chosen uniformly at random
/// (Section VI-A: "each timestamp randomly activated 5% of the edges").
ActivationStream UniformStream(const Graph& g, uint32_t num_steps,
                               double fraction, Rng& rng);

/// Community-biased stream: at each timestamp a `fraction` of edges
/// activates, but an intra-community edge (both endpoints sharing a label in
/// `membership`) is `intra_boost` times more likely to be picked than an
/// inter-community edge. This makes communities temporally coherent, the
/// regime the activation-network model targets.
ActivationStream CommunityBiasedStream(const Graph& g,
                                       const std::vector<uint32_t>& membership,
                                       uint32_t num_steps, double fraction,
                                       double intra_boost, Rng& rng);

/// Day-long diurnal stream for Fig. 9: `minutes` one-minute batches whose
/// expected activation count follows a sinusoid (quiet at "night", busy at
/// "midday") plus Pareto-tailed bursts. Timestamps are the minute index.
ActivationStream DiurnalStream(const Graph& g, uint32_t minutes,
                               double mean_per_minute, double burst_prob,
                               double burst_scale, Rng& rng);

/// Splits a stream into consecutive batches of `batch_size` activations
/// (last batch may be short). Used by the Fig. 8 update-vs-reconstruct
/// sweep.
std::vector<ActivationStream> SplitIntoBatches(const ActivationStream& stream,
                                               uint32_t batch_size);

/// Splits a stream into per-integer-timestamp batches: batch i holds all
/// activations with time in [i, i+1). Used by minute-batched replay.
std::vector<ActivationStream> SplitByTimestamp(const ActivationStream& stream,
                                               uint32_t num_batches);

}  // namespace anc

#endif  // ANC_ACTIVATION_STREAM_GENERATORS_H_
