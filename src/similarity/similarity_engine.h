#ifndef ANC_SIMILARITY_SIMILARITY_ENGINE_H_
#define ANC_SIMILARITY_SIMILARITY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "activation/activeness.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace anc::check {
class TestHooks;
}  // namespace anc::check

namespace anc {

/// Node roles of Section IV-B. The three types disjointly partition V:
///  - kCore:      |N_eps(v)| >= mu           (leads a community)
///  - kPCore:     deg(v) >= mu but not core  (potential core)
///  - kPeriphery: deg(v) < mu                (can never be a core)
enum class NodeRole : uint8_t { kCore, kPCore, kPeriphery };

/// Parameters of the similarity layer (Table II).
struct SimilarityParams {
  double lambda = 0.1;   ///< time-decay factor
  double epsilon = 0.4;  ///< active-neighbor similarity threshold
  uint32_t mu = 3;       ///< core threshold on |N_eps(v)|
  /// Anchored similarity floor: wedge stretch may push a similarity to or
  /// below zero; the similarity is clamped here so the distance weight 1/S
  /// stays finite and positive (Attractor's truncation, adapted).
  double min_similarity = 1e-9;
  /// Numeric ceiling guarding against runaway consolidation on degenerate
  /// graphs (cliques reinforced for many repetitions).
  double max_similarity = 1e15;
  /// Initial activeness of every edge ("The initial edge activeness is 1",
  /// Section VI).
  double initial_activeness = 1.0;
  /// Activations between batched rescales (Lemma 1); 0 keeps the
  /// ActivenessStore default (1<<20). The precision guard always applies;
  /// small values force frequent rescales (used by the decay-maintenance
  /// ablation and the differential oracle to stress the ScaleAll path).
  uint64_t rescale_interval = 0;
};

/// Maintains, on top of an ActivenessStore, everything Section IV derives
/// from the activeness:
///
///  - per-node activity sums  A(v) = sum_{x in N(v)} a(v,x)
///  - per-edge sigma numerators
///        num(u,v) = sum_{x in N(u) cap N(v)} (a(u,x) + a(v,x))
///    so the active similarity sigma(u,v) = num(u,v) / (A(u) + A(v)) is an
///    O(1) lookup (sigma is NeuM: the global factor cancels, Lemma 3)
///  - the similarity function S_t (PosM, Lemma 4), updated by the three
///    local-reinforcement processes AF / TF / WSF (Eqs. 2-4)
///  - the distance weight S_t^{-1} (NegM, Lemma 6) consumed by the pyramid
///    index.
///
/// Everything is stored *anchored* at the shared anchor time of the
/// ActivenessStore; because sigma is a ratio of PosM quantities and every
/// reinforcement term is (a product of) PosM quantities, the reinforcement
/// arithmetic runs directly on anchored values with the global factor never
/// materializing. The only place the factor g(t, t*) appears is the +1
/// activeness bump of an activation.
///
/// Per-activation maintenance cost is O(deg(u) + deg(v)) (Lemma 5):
///  - activeness bump: O(1)
///  - A(u), A(v): O(1)
///  - numerators: one sorted merge of N(u) and N(v), +delta on the <=
///    min(deg) triangle edges
///  - reinforcement: one sorted merge per trigger node, O(1) sigma lookups.
class SimilarityEngine {
 public:
  /// `metrics`, when non-null, receives the layer's anc.sim.* counters
  /// (activeness/sigma-cache updates, AF/TF/WSF reinforcement terms, clamp
  /// hits, rescale events) and PosM store-size gauges; it must outlive the
  /// engine. Null disables recording.
  SimilarityEngine(const Graph& graph, SimilarityParams params,
                   obs::MetricsRegistry* metrics = nullptr);

  SimilarityEngine(const SimilarityEngine&) = delete;
  SimilarityEngine& operator=(const SimilarityEngine&) = delete;

  const Graph& graph() const { return *graph_; }
  const SimilarityParams& params() const { return params_; }
  const ActivenessStore& activeness() const { return activeness_; }

  /// Static initialization of S_0 (Section IV-C): every edge gets activeness
  /// `initial_activeness` at t = 0 (the paper's "stream initialized with
  /// activations over all edges"), S = 1 on every edge, then `rep` full
  /// local-reinforcement sweeps over E. rep = 0 leaves S uniformly 1 (pure
  /// hop distance). Resets any previously applied stream.
  void InitializeStatic(uint32_t rep);

  /// ANCF snapshot recompute: keeps the current activeness, resets S to 1
  /// and re-propagates with `rep` reinforcement sweeps.
  void RecomputeFromActiveness(uint32_t rep);

  /// Full pipeline for one activation (e, t): activeness += 1, sigma caches
  /// updated, local reinforcement applied with trigger edge e. Returns the
  /// updated anchored distance weight of e via `new_weight` (for the index
  /// update) if non-null.
  Status ApplyActivation(EdgeId e, double t, double* new_weight = nullptr);

  /// Like ApplyActivation, but tolerates timestamps behind the engine's
  /// clock (ActivenessStore::ActivateAnchored): the replica-import path of
  /// live shard migration replays one component's history into an engine
  /// whose other components already advanced the clock. Exact in anchored
  /// space — sigma and reinforcement are state functions of the anchored
  /// activeness, so a late replay converges byte-identically.
  Status ApplyActivationAnchored(EdgeId e, double t,
                                 double* new_weight = nullptr);

  /// Like ApplyActivation but skips the reinforcement step: only the
  /// activeness and sigma caches advance. Used by the offline ANCF variant,
  /// whose S is snapshot-derived (RecomputeFromActiveness).
  Status ApplyActivationNoReinforce(EdgeId e, double t,
                                    double* delta = nullptr);

  /// One local-reinforcement pass with trigger edge e, without touching the
  /// activeness (ANCOR's periodic consolidation of recently active edges).
  void ReinforceEdge(EdgeId e) { Reinforce(e); }

  /// One full reinforcement sweep over all edges at time t without adding
  /// activeness (the periodic re-propagation pass of ANCOR and the
  /// rep-rounds of ANCF). Does not touch the activeness.
  void ReinforceAllEdges();

  /// Anchored active similarity sigma(u, v) of edge e. O(1).
  double Sigma(EdgeId e) const {
    const auto& [u, v] = graph_->Endpoints(e);
    const double denom = node_activity_[u] + node_activity_[v];
    return denom > 0.0 ? sigma_numerator_[e] / denom : 0.0;
  }

  /// Anchored similarity S*(e). The true S_t(e) is S*(e) * g(t, t*).
  double Similarity(EdgeId e) const { return similarity_[e]; }

  /// Anchored distance weight 1/S*(e) consumed by the pyramid index.
  /// The true weight is (1/S*(e)) * g^{-1}(t, t*) (Lemma 10); since the
  /// factor is shared by all edges it never changes shortest-path structure,
  /// so the index only ever sees anchored weights.
  double Weight(EdgeId e) const { return 1.0 / similarity_[e]; }

  /// |N_eps(v)|: number of neighbors with sigma >= epsilon. O(deg v).
  uint32_t ActiveNeighborCount(NodeId v) const;

  /// Role of v under the current sigma (core / p-core / periphery).
  NodeRole Role(NodeId v) const;

  /// Direct-computation cross-checks used by tests and the invariant
  /// checker: recompute A(v) and num(e) from scratch and compare against
  /// the incremental caches.
  double RecomputeNodeActivity(NodeId v) const;
  double RecomputeSigmaNumerator(EdgeId e) const;

  /// The incrementally maintained caches themselves (anchored), exposed so
  /// the anc::check validators can diff them against the recomputations.
  double NodeActivity(NodeId v) const { return node_activity_[v]; }
  double SigmaNumerator(EdgeId e) const { return sigma_numerator_[e]; }

  /// Complete anchored state of the engine (serialization support).
  struct Snapshot {
    double anchor_time = 0.0;
    double last_time = 0.0;
    std::vector<double> anchored_activeness;  // per edge
    std::vector<double> similarity;           // per edge
  };

  /// Captures the current state. The sigma caches are derived and not
  /// included; Restore() recomputes them.
  Snapshot TakeSnapshot() const;

  /// Restores a snapshot taken from an engine over the same graph,
  /// rebuilding the sigma caches. O(n + sum_e min-deg).
  Status Restore(const Snapshot& snapshot);

  /// Hands the per-edge arrays (anchored activeness, similarity, sigma
  /// numerators) to a storage tier (docs/storage_tiers.md): inactive pages
  /// spill to mmap'd cold segments under the host's budget and promote
  /// transparently on the next write.
  void AttachTier(tier::ColumnHost* host) {
    activeness_.AttachTier(host);
    similarity_.Attach(host, tier::kColSimilarity);
    sigma_numerator_.Attach(host, tier::kColSigma);
  }

  /// Registers a callback fired with the rescale factor g after a batched
  /// rescale has been folded into the engine's anchored state. Consumers
  /// holding derived NegM state (the pyramid index's distance weights,
  /// which scale by 1/g) use it to stay on the same anchor (Lemma 10).
  /// `clamped` lists the edges whose similarity hit the clamp during the
  /// rescale — their weights did NOT scale uniformly and need individual
  /// repair.
  void SetRescaleCallback(
      std::function<void(double factor, const std::vector<EdgeId>& clamped)>
          callback) {
    rescale_callback_ = std::move(callback);
  }

 private:
  /// Test-only corruption seam for tests/check_test.cc: deliberately breaks
  /// individual invariants to prove the anc::check validators catch them.
  friend class ::anc::check::TestHooks;

  /// Per-reinforcement counts of applied AF/TF/WSF terms (observability).
  struct ReinforceTermCounts {
    uint64_t af = 0;
    uint64_t tf = 0;
    uint64_t wsf = 0;
  };

  /// Scales all anchored state by `factor` (batched rescale hook).
  void OnRescale(double factor);

  /// Updates sigma caches for an activeness increase of `delta` on edge e.
  void BumpActiveness(EdgeId e, double delta);

  /// Local reinforcement of Section IV-B with trigger edge e. Reads the
  /// pre-update S for both trigger nodes, then applies both deltas.
  void Reinforce(EdgeId e);

  /// Contribution of trigger node `u` (the other endpoint is `v`): returns
  /// the signed delta to S(e) per the role formulas (Eqs. 2-4). When
  /// `counts` is non-null the applied term counts are accumulated into it.
  double TriggerDelta(EdgeId e, NodeId u, NodeId v,
                      ReinforceTermCounts* counts) const;

  void ClampSimilarity(EdgeId e);

  const Graph* graph_;
  SimilarityParams params_;
  ActivenessStore activeness_;
  // A(v) stays resident (per-node, hot on every sigma lookup); the
  // per-edge arrays are tierable columns (docs/storage_tiers.md).
  std::vector<double> node_activity_;          // A(v), anchored
  tier::Column<double> sigma_numerator_;       // num(e), anchored
  tier::Column<double> similarity_;            // S*(e), anchored
  std::function<void(double, const std::vector<EdgeId>&)> rescale_callback_;

  obs::MetricsRegistry* metrics_ = nullptr;
  struct {
    obs::CounterId activeness_updates;
    obs::CounterId sigma_cache_updates;
    obs::CounterId reinforcements;
    obs::CounterId af_terms;
    obs::CounterId tf_terms;
    obs::CounterId wsf_terms;
    obs::CounterId clamp_hits;
    obs::CounterId rescale_events;
    obs::CounterId rescale_clamped_edges;
  } m_;
};

/// Suggests a graph-dependent active-neighbor threshold epsilon: the given
/// percentile (in [0, 1]) of the initial (unit-activeness) active-similarity
/// distribution over all edges. The paper tunes epsilon per dataset (Table
/// II: "graph-dependent, value setting reported in the technical report");
/// this helper reproduces that tuning mechanically. Typical percentile: 0.6.
double SuggestEpsilon(const Graph& graph, double percentile = 0.6);

}  // namespace anc

#endif  // ANC_SIMILARITY_SIMILARITY_ENGINE_H_
