#include "similarity/similarity_engine.h"

#include <algorithm>
#include <cmath>

namespace anc {

SimilarityEngine::SimilarityEngine(const Graph& graph, SimilarityParams params,
                                   obs::MetricsRegistry* metrics)
    : graph_(&graph),
      params_(params),
      activeness_(graph.NumEdges(), params.lambda, params.initial_activeness),
      node_activity_(graph.NumNodes(), 0.0),
      sigma_numerator_(graph.NumEdges(), 0.0),
      similarity_(graph.NumEdges(), 1.0),
      metrics_(metrics) {
  if (metrics_ != nullptr) {
    m_.activeness_updates = metrics_->Counter("anc.sim.activeness_updates");
    m_.sigma_cache_updates = metrics_->Counter("anc.sim.sigma_cache_updates");
    m_.reinforcements = metrics_->Counter("anc.sim.reinforcements");
    m_.af_terms = metrics_->Counter("anc.sim.af_terms");
    m_.tf_terms = metrics_->Counter("anc.sim.tf_terms");
    m_.wsf_terms = metrics_->Counter("anc.sim.wsf_terms");
    m_.clamp_hits = metrics_->Counter("anc.sim.clamp_hits");
    m_.rescale_events = metrics_->Counter("anc.sim.rescale_events");
    m_.rescale_clamped_edges =
        metrics_->Counter("anc.sim.rescale_clamped_edges");
    // PosM store sizes: the per-edge similarity/numerator arrays and the
    // per-node activity sums.
    metrics_->Set(metrics_->Gauge("anc.sim.posm_edges"),
                  static_cast<int64_t>(graph.NumEdges()));
    metrics_->Set(metrics_->Gauge("anc.sim.posm_nodes"),
                  static_cast<int64_t>(graph.NumNodes()));
  }
  activeness_.SetRescaleHook([this](double factor) { OnRescale(factor); });
  if (params_.rescale_interval > 0) {
    activeness_.set_rescale_interval(params_.rescale_interval);
  }
  // Build the sigma caches from the uniform initial activeness.
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    node_activity_[v] = RecomputeNodeActivity(v);
  }
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    sigma_numerator_.Set(e, RecomputeSigmaNumerator(e));
  }
}

void SimilarityEngine::InitializeStatic(uint32_t rep) {
  activeness_ = ActivenessStore(graph_->NumEdges(), params_.lambda,
                                params_.initial_activeness);
  activeness_.SetRescaleHook([this](double factor) { OnRescale(factor); });
  if (params_.rescale_interval > 0) {
    activeness_.set_rescale_interval(params_.rescale_interval);
  }
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    node_activity_[v] = RecomputeNodeActivity(v);
  }
  for (EdgeId e = 0; e < graph_->NumEdges(); ++e) {
    sigma_numerator_.Set(e, RecomputeSigmaNumerator(e));
  }
  similarity_.Fill(1.0);
  for (uint32_t round = 0; round < rep; ++round) ReinforceAllEdges();
}

void SimilarityEngine::RecomputeFromActiveness(uint32_t rep) {
  similarity_.Fill(1.0);
  for (uint32_t round = 0; round < rep; ++round) ReinforceAllEdges();
}

Status SimilarityEngine::ApplyActivation(EdgeId e, double t,
                                         double* new_weight) {
  if (e >= graph_->NumEdges()) {
    return Status::OutOfRange("edge id out of range");
  }
  double delta = 0.0;
  ANC_RETURN_NOT_OK(activeness_.Activate(e, t, &delta));
  BumpActiveness(e, delta);
  Reinforce(e);
  if (new_weight != nullptr) *new_weight = Weight(e);
  return Status::OK();
}

Status SimilarityEngine::ApplyActivationAnchored(EdgeId e, double t,
                                                 double* new_weight) {
  if (e >= graph_->NumEdges()) {
    return Status::OutOfRange("edge id out of range");
  }
  double delta = 0.0;
  ANC_RETURN_NOT_OK(activeness_.ActivateAnchored(e, t, &delta));
  BumpActiveness(e, delta);
  Reinforce(e);
  if (new_weight != nullptr) *new_weight = Weight(e);
  return Status::OK();
}

Status SimilarityEngine::ApplyActivationNoReinforce(EdgeId e, double t,
                                                    double* delta) {
  if (e >= graph_->NumEdges()) {
    return Status::OutOfRange("edge id out of range");
  }
  double increment = 0.0;
  ANC_RETURN_NOT_OK(activeness_.Activate(e, t, &increment));
  BumpActiveness(e, increment);
  if (delta != nullptr) *delta = increment;
  return Status::OK();
}

void SimilarityEngine::ReinforceAllEdges() {
  for (EdgeId e = 0; e < graph_->NumEdges(); ++e) Reinforce(e);
}

uint32_t SimilarityEngine::ActiveNeighborCount(NodeId v) const {
  uint32_t count = 0;
  for (const Neighbor& nb : graph_->Neighbors(v)) {
    if (Sigma(nb.edge) >= params_.epsilon) ++count;
  }
  return count;
}

NodeRole SimilarityEngine::Role(NodeId v) const {
  if (graph_->Degree(v) < params_.mu) return NodeRole::kPeriphery;
  if (ActiveNeighborCount(v) >= params_.mu) return NodeRole::kCore;
  return NodeRole::kPCore;
}

double SimilarityEngine::RecomputeNodeActivity(NodeId v) const {
  double total = 0.0;
  for (const Neighbor& nb : graph_->Neighbors(v)) {
    total += activeness_.Anchored(nb.edge);
  }
  return total;
}

double SimilarityEngine::RecomputeSigmaNumerator(EdgeId e) const {
  const auto& [u, v] = graph_->Endpoints(e);
  auto nu = graph_->Neighbors(u);
  auto nv = graph_->Neighbors(v);
  double total = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i].node < nv[j].node) {
      ++i;
    } else if (nu[i].node > nv[j].node) {
      ++j;
    } else {
      total += activeness_.Anchored(nu[i].edge) +
               activeness_.Anchored(nv[j].edge);
      ++i;
      ++j;
    }
  }
  return total;
}

void SimilarityEngine::OnRescale(double factor) {
  for (double& a : node_activity_) a *= factor;
  sigma_numerator_.ForEachMutable([factor](size_t, double& s) { s *= factor; });
  // Re-apply the clamp while scaling: a long-idle network must not
  // underflow similarities to zero (infinite distance weights). Clamped
  // edges break the uniform scale, so they are reported to the callback
  // for individual downstream repair.
  std::vector<EdgeId> clamped;
  const double lo = params_.min_similarity;
  const double hi = params_.max_similarity;
  similarity_.ForEachMutable([factor, lo, hi, &clamped](size_t e, double& s) {
    const double scaled = s * factor;
    s = std::clamp(scaled, lo, hi);
    if (s != scaled) clamped.push_back(static_cast<EdgeId>(e));
  });
  if (obs::kMetricsEnabled && metrics_ != nullptr) {
    metrics_->Add(m_.clamp_hits, clamped.size());
    metrics_->Add(m_.rescale_events);
    metrics_->Add(m_.rescale_clamped_edges, clamped.size());
  }
  if (rescale_callback_) rescale_callback_(factor, clamped);
}

void SimilarityEngine::BumpActiveness(EdgeId e, double delta) {
  const auto& [u, v] = graph_->Endpoints(e);
  node_activity_[u] += delta;
  node_activity_[v] += delta;
  // num(u,x) and num(v,x) gain `delta` for every common neighbor x of u and
  // v: the term (a(u,v) + a(x,v)) of num(u,x) contains a(u,v), symmetrically
  // for num(v,x). num(u,v) itself ranges over x != u,v and is unaffected.
  auto nu = graph_->Neighbors(u);
  auto nv = graph_->Neighbors(v);
  size_t i = 0;
  size_t j = 0;
  uint64_t numerator_updates = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i].node < nv[j].node) {
      ++i;
    } else if (nu[i].node > nv[j].node) {
      ++j;
    } else {
      sigma_numerator_.Mut(nu[i].edge) += delta;
      sigma_numerator_.Mut(nv[j].edge) += delta;
      numerator_updates += 2;
      ++i;
      ++j;
    }
  }
  if (obs::kMetricsEnabled && metrics_ != nullptr) {
    metrics_->Add(m_.activeness_updates);
    metrics_->Add(m_.sigma_cache_updates, numerator_updates);
  }
}

double SimilarityEngine::TriggerDelta(EdgeId e, NodeId u, NodeId v,
                                      ReinforceTermCounts* counts) const {
  const NodeRole role = Role(u);
  const double inv_deg = 1.0 / static_cast<double>(graph_->Degree(u));

  double af = 0.0;
  double tf = 0.0;
  double wsf = 0.0;
  uint64_t tf_terms = 0;
  uint64_t wsf_terms = 0;
  const bool needs_consolidation = role != NodeRole::kPeriphery;
  const bool needs_stretch = role != NodeRole::kCore;

  if (needs_consolidation) {
    // Direct consolidation: AF(e) = S(e) * sigma(u,v) / deg(u).
    af = similarity_[e] * Sigma(e) * inv_deg;
  }

  // One sorted merge of N(u) and N(v) yields both the common neighbors
  // (triadic consolidation) and the exclusive neighbors of u (wedge
  // stretch).
  auto nu = graph_->Neighbors(u);
  auto nv = graph_->Neighbors(v);
  size_t i = 0;
  size_t j = 0;
  while (i < nu.size()) {
    const NodeId w = nu[i].node;
    while (j < nv.size() && nv[j].node < w) ++j;
    if (j < nv.size() && nv[j].node == w) {
      if (needs_consolidation) {
        // TF term: sqrt(S(u,w) S(v,w)) * sigma(w,u) / deg(u).
        tf += std::sqrt(similarity_[nu[i].edge] * similarity_[nv[j].edge]) *
              Sigma(nu[i].edge) * inv_deg;
        ++tf_terms;
      }
      ++j;
    } else if (w != v && needs_stretch) {
      // WSF term over exclusive neighbors: S(w,u) * sigma(w,u) / deg(u).
      wsf += similarity_[nu[i].edge] * Sigma(nu[i].edge) * inv_deg;
      ++wsf_terms;
    }
    ++i;
  }

  if (counts != nullptr) {
    counts->af += needs_consolidation ? 1 : 0;
    counts->tf += tf_terms;
    counts->wsf += needs_stretch ? wsf_terms : 0;
  }

  switch (role) {
    case NodeRole::kCore:
      return af + tf;  // Eq. (2)
    case NodeRole::kPeriphery:
      return -wsf;  // Eq. (3)
    case NodeRole::kPCore:
      return af + tf - wsf;  // Eq. (4)
  }
  return 0.0;
}

void SimilarityEngine::Reinforce(EdgeId e) {
  const auto& [u, v] = graph_->Endpoints(e);
  const bool record = obs::kMetricsEnabled && metrics_ != nullptr;
  ReinforceTermCounts counts;
  ReinforceTermCounts* counts_ptr = record ? &counts : nullptr;
  // Both trigger-node deltas are computed from the pre-update S so the
  // result does not depend on endpoint order.
  const double delta =
      TriggerDelta(e, u, v, counts_ptr) + TriggerDelta(e, v, u, counts_ptr);
  similarity_.Mut(e) += delta;
  ClampSimilarity(e);
  if (record) {
    metrics_->Add(m_.reinforcements);
    if (counts.af > 0) metrics_->Add(m_.af_terms, counts.af);
    if (counts.tf > 0) metrics_->Add(m_.tf_terms, counts.tf);
    if (counts.wsf > 0) metrics_->Add(m_.wsf_terms, counts.wsf);
  }
}

void SimilarityEngine::ClampSimilarity(EdgeId e) {
  double& s = similarity_.Mut(e);
  const double raw = s;
  s = std::clamp(raw, params_.min_similarity, params_.max_similarity);
  if (obs::kMetricsEnabled && metrics_ != nullptr && s != raw) {
    metrics_->Add(m_.clamp_hits);
  }
}

SimilarityEngine::Snapshot SimilarityEngine::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.anchor_time = activeness_.anchor_time();
  snapshot.last_time = activeness_.last_time();
  snapshot.anchored_activeness.resize(graph_->NumEdges());
  for (EdgeId e = 0; e < graph_->NumEdges(); ++e) {
    snapshot.anchored_activeness[e] = activeness_.Anchored(e);
  }
  snapshot.similarity = similarity_.ToVector();
  return snapshot;
}

Status SimilarityEngine::Restore(const Snapshot& snapshot) {
  if (snapshot.anchored_activeness.size() != graph_->NumEdges() ||
      snapshot.similarity.size() != graph_->NumEdges()) {
    return Status::InvalidArgument(
        "snapshot does not match the engine's graph");
  }
  ANC_RETURN_NOT_OK(activeness_.RestoreAnchored(snapshot.anchored_activeness,
                                                snapshot.anchor_time,
                                                snapshot.last_time));
  similarity_.Assign(snapshot.similarity);
  for (EdgeId e = 0; e < graph_->NumEdges(); ++e) ClampSimilarity(e);
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    node_activity_[v] = RecomputeNodeActivity(v);
  }
  for (EdgeId e = 0; e < graph_->NumEdges(); ++e) {
    sigma_numerator_.Set(e, RecomputeSigmaNumerator(e));
  }
  return Status::OK();
}

double SuggestEpsilon(const Graph& graph, double percentile) {
  ANC_CHECK(percentile >= 0.0 && percentile <= 1.0,
            "percentile must be in [0, 1]");
  if (graph.NumEdges() == 0) return 0.0;
  // Unit activeness: sigma(u,v) = 2 |N(u) cap N(v)| / (deg u + deg v).
  std::vector<double> sigmas(graph.NumEdges());
  for (EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const auto& [u, v] = graph.Endpoints(e);
    auto nu = graph.Neighbors(u);
    auto nv = graph.Neighbors(v);
    uint32_t common = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i].node < nv[j].node) {
        ++i;
      } else if (nu[i].node > nv[j].node) {
        ++j;
      } else {
        ++common;
        ++i;
        ++j;
      }
    }
    sigmas[e] = 2.0 * common /
                static_cast<double>(graph.Degree(u) + graph.Degree(v));
  }
  std::sort(sigmas.begin(), sigmas.end());
  const size_t idx = std::min(
      sigmas.size() - 1, static_cast<size_t>(percentile * sigmas.size()));
  return sigmas[idx];
}

}  // namespace anc
