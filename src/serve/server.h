#ifndef ANC_SERVE_SERVER_H_
#define ANC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "activation/stream_io.h"
#include "core/anc.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/cluster_view.h"
#include "serve/ingest_queue.h"
#include "util/status.h"
#include "util/sync.h"

namespace anc::store {
class DurableStore;
}  // namespace anc::store

namespace anc::tier {
class TieredStore;
}  // namespace anc::tier

namespace anc::serve {

/// When an accepted activation becomes durable (docs/durability.md).
enum class DurabilityPolicy {
  /// No WAL: state lives only in memory (the pre-durability behavior).
  kNone,
  /// The writer appends every drained batch to the WAL before applying it;
  /// fsync cadence is ruled by the store's group-commit threshold and
  /// flush interval. Bounded loss (at most one flush interval) for
  /// near-zero ingest overhead.
  kAsync,
  /// kAsync plus one Sync per drained batch: the batch is the commit
  /// group, so FlushDurable resolves as soon as the queue drains.
  kGroupCommit,
};

/// Serving-layer configuration (docs/serving.md).
struct ServeOptions {
  IngestOptions ingest;
  AdmissionOptions admission;

  /// Durability (docs/durability.md): with a policy other than kNone,
  /// `store` must point at a DurableStore opened on this server's index
  /// (it must outlive the server). The writer write-ahead-logs every
  /// drained batch before applying it.
  DurabilityPolicy durability = DurabilityPolicy::kNone;
  store::DurableStore* store = nullptr;

  /// > 0: the writer rotates a checkpoint automatically after this many
  /// applied activations (on top of explicit RequestCheckpoint calls).
  uint64_t checkpoint_every_applied = 0;

  /// Writer batch coalescing: up to this many queued activations are
  /// drained and applied per wakeup, amortizing snapshot publication (and
  /// letting the similarity layer's batched rescale amortize per Lemma 1).
  size_t max_batch = 256;

  /// Staleness bounds: a fresh view is published after at most this many
  /// applied activations ...
  uint64_t snapshot_every_activations = 64;
  /// ... and at most this much wall time after an unpublished apply.
  double snapshot_max_age_s = 0.010;

  /// Idle wakeup granularity of the writer (bounds publication delay when
  /// the stream pauses mid-interval).
  std::chrono::microseconds idle_wait{1000};

  /// Shard ordinal stamped onto this server's trace spans (the `shard`
  /// field), so a sharded deployment's interleaved spans attribute to the
  /// right replica. < 0 (the standalone default) omits the field.
  int shard_ordinal = -1;

  /// Hot/cold tiering (docs/storage_tiers.md): when set, the writer calls
  /// tier->Maintain() at quiescent points (post-batch and on idle wakeups)
  /// to demote cold pages and service compactions, and
  /// tier->OnCheckpointInstalled() after every successful checkpoint so
  /// newly referenced segments become durable roots. Pair with
  /// StoreOptions::checkpoint_writer = tier->CheckpointWriter() so
  /// checkpoints rotate as incremental segment promotions instead of full
  /// index rewrites. Must outlive the server.
  tier::TieredStore* tier = nullptr;
};

/// The concurrent serving engine: a batched single-writer ingest pipeline
/// over an AncIndex plus epoch-published immutable snapshots for readers
/// (docs/serving.md).
///
///   producers --Submit--> [bounded MPSC IngestQueue] --PopBatch-->
///     writer thread: AncIndex::Apply x batch --> publish ClusterView
///       (shared_ptr swap under a micro-lock, epoch++) --> waiters notified
///   readers  --View() / Clusters() / LocalCluster() / ...--> snapshot
///
/// Threading contract:
///  - Submit / SubmitStream: any thread.
///  - View / Clusters / LocalCluster / SmallestCluster / watermark /
///    AwaitSeq / AwaitTime / Stats: any thread; acquiring the snapshot is
///    one shared_ptr copy under a mutex held for only that copy, and the
///    query then runs entirely against the immutable snapshot with no
///    further synchronization.
///  - The underlying AncIndex is mutated *only* by the writer thread
///    between Start() and Stop(); callers must not touch it directly
///    while the server is running (quiesce with Stop() first).
///
/// Watermark semantics are linearizable: when AwaitSeq(s) (or AwaitTime(t))
/// returns OK, every later View() includes all activations with ticket
/// <= s (timestamp <= t). Under kDropOldest, evicted activations resolve
/// the watermark without being applied — bounded loss in exchange for
/// liveness, visible in Stats() as anc.serve.ingest_dropped.
class AncServer {
 public:
  /// `index` must outlive the server and be quiescent (no concurrent use)
  /// while the server runs. Serve metrics are recorded into the index's
  /// own registry, so AncIndex::Stats() covers the whole stack.
  AncServer(AncIndex* index, ServeOptions options);
  ~AncServer();

  AncServer(const AncServer&) = delete;
  AncServer& operator=(const AncServer&) = delete;

  /// Publishes the initial view (epoch 1) and starts the writer thread.
  Status Start();

  /// Closes ingest, drains the queue, publishes the final view and joins
  /// the writer. Idempotent. After Stop() the index is quiescent again.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- Producer side ------------------------------------------------------

  /// Enqueues one activation; returns its durability ticket (see
  /// AwaitSeq). Backpressure behavior per ServeOptions::ingest. `trace`
  /// correlates the activation's queue-wait/apply/publish spans
  /// (docs/observability.md); when omitted and a trace sink is attached to
  /// the index's registry, a fresh root trace is minted so every submitted
  /// request is traceable without caller involvement.
  Result<uint64_t> Submit(const Activation& activation,
                          obs::TraceContext trace = {});

  /// Enqueues `count` activations under one queue lock and one writer
  /// wakeup (IngestQueue::PushBatch) — the fan-out fast path used by
  /// shard::ShardedServer's router. Validates every edge up front
  /// (InvalidArgument, nothing enqueued, on any out-of-range edge), then
  /// returns the number the queue accepted and the last ticket issued via
  /// *last_seq (optional); per-entry queue rejections (kReject, regressed
  /// timestamps with clamping off) are skipped, not errors. `traces`
  /// (optional) carries one trace context per entry, aligned with `data`
  /// — batch submitters own their trace identity, so no auto-minting here.
  Result<size_t> SubmitBatch(const Activation* data, size_t count,
                             uint64_t* last_seq = nullptr,
                             const obs::TraceContext* traces = nullptr);

  /// Enqueues a whole stream in order; stops at the first rejected
  /// activation. Returns the last ticket issued via *last_seq (optional).
  Status SubmitStream(const ActivationStream& stream,
                      uint64_t* last_seq = nullptr);

  /// Blocks until every activation accepted before the call is reflected
  /// in the published view (or `timeout` elapses -> Unavailable).
  Status Flush(std::chrono::milliseconds timeout = std::chrono::minutes(1));

  // --- Watermark / durability --------------------------------------------

  /// The published watermark: every activation with ticket <= seq (time
  /// <= time) is reflected in View().
  Watermark watermark() const;

  /// Blocks until the published watermark covers ticket `seq`.
  Status AwaitSeq(uint64_t seq, std::chrono::milliseconds timeout);

  /// Blocks until the published watermark covers activation timestamp `t`.
  /// The watermark only reaches `t` once an activation with timestamp
  /// >= t has been applied, so await a time you actually submitted.
  Status AwaitTime(double t, std::chrono::milliseconds timeout);

  /// The durable watermark: every activation with ticket <= seq is covered
  /// by an fsynced WAL record (or a checkpoint), so crash recovery
  /// reproduces it. Zero-valued under DurabilityPolicy::kNone.
  Watermark durable_watermark() const;

  /// Blocks until the durable watermark covers ticket `seq`. Fails
  /// FailedPrecondition without a configured store, Unavailable on
  /// timeout. Note: under kDropOldest, tickets evicted at the queue tail
  /// are never appended, so awaiting them stalls until the timeout.
  Status AwaitDurableSeq(uint64_t seq, std::chrono::milliseconds timeout);

  /// Flush + fsync: blocks until every activation accepted before the
  /// call is both applied AND durable. When this returns OK, recovery
  /// from the store directory reproduces a state covering all of them —
  /// it never reports a ticket recovery cannot reproduce (a simulated or
  /// real WAL failure surfaces here as Unavailable).
  Status FlushDurable(
      std::chrono::milliseconds timeout = std::chrono::minutes(1));

  /// Asks the writer to rotate a checkpoint at its next quiescent point
  /// (between batches, where the resolved watermark exactly describes the
  /// applied state) and blocks until it completes; returns the checkpoint
  /// status. FailedPrecondition without a store or when not running —
  /// checkpoint through the store directly when quiesced.
  Status RequestCheckpoint(
      std::chrono::milliseconds timeout = std::chrono::minutes(1));

  /// First error the writer (or a flush) hit talking to the durable store
  /// (OK if none, and always OK under kNone). Store errors do not stop
  /// live serving; they freeze the durable watermark.
  Status store_status() const;

  // --- Quiescent-point execution -------------------------------------------

  /// Context handed to a RunQuiesced callback (writer thread, between
  /// batches: the index is quiescent and `watermark` exactly describes the
  /// applied state).
  struct QuiescedContext {
    /// The resolved watermark at this quiescent point.
    Watermark watermark;
    /// Rebuilds and publishes a fresh view (epoch++) at `watermark`. Call
    /// this after mutating the index by other means than the ingest path
    /// (e.g. a live-migration import applied directly to the index) so
    /// readers observe the mutation; without it the published view keeps
    /// describing the pre-callback state.
    std::function<void()> republish;
  };

  /// Runs `fn` on the writer thread at its next quiescent point (between
  /// batches, same point checkpoints rotate at) and blocks until it
  /// completes. While `fn` runs, no Apply is in flight and none starts, so
  /// the callback may mutate the index directly — the mechanism live shard
  /// migration uses to import moved vertices and atomically republish.
  /// Callbacks queue FIFO across callers. FailedPrecondition when the
  /// server is not running; Unavailable when the server stops (or `timeout`
  /// elapses) before the callback ran — the callback is then never invoked.
  Status RunQuiesced(
      std::function<void(const QuiescedContext&)> fn,
      std::chrono::milliseconds timeout = std::chrono::minutes(1));

  // --- Reader side --------------------------------------------------------

  /// The current published snapshot: one atomic load, never null between
  /// Start() and destruction. Hold the shared_ptr for as long as the
  /// query runs; the writer publishing newer epochs never invalidates it.
  std::shared_ptr<const ClusterView> View() const;

  /// Admission-controlled snapshot queries: consult the overload layer
  /// (shed / degrade per ServeOptions::admission and the per-query
  /// deadline), then answer from the current view. Shed queries return
  /// Status::Unavailable without touching the snapshot.
  Result<Clustering> Clusters(uint32_t level, const QueryOptions& query = {});
  Result<Clustering> Clusters() /*default level*/;
  Result<std::vector<NodeId>> LocalCluster(NodeId node, uint32_t level,
                                           const QueryOptions& query = {});
  Result<std::vector<NodeId>> SmallestCluster(NodeId node,
                                              uint32_t min_size = 2,
                                              uint32_t* level_out = nullptr,
                                              const QueryOptions& query = {});

  // --- Introspection ------------------------------------------------------

  const AdmissionController& admission() const { return admission_; }
  size_t IngestDepth() const { return queue_.Depth(); }
  uint64_t accepted() const { return queue_.accepted(); }
  uint64_t dropped() const { return queue_.dropped(); }
  uint64_t rejected() const { return queue_.rejected(); }
  /// Deepest the ingest queue has ever been (capacity headroom).
  size_t IngestHighWatermark() const { return queue_.high_watermark(); }
  /// Age of the oldest queued activation (0 when drained) — the ingest-side
  /// staleness bound the health monitor folds into its scorecards.
  double IngestOldestAgeSeconds() const { return queue_.OldestAgeSeconds(); }

  /// First error the writer hit applying an activation (OK if none).
  /// Failed applies are counted (anc.serve.apply_errors) and skipped.
  Status writer_status() const;

  /// Full metric snapshot (the index's registry: anc.apply.*, anc.index.*,
  /// anc.serve.*, anc.store.*, anc.pool.*, ...).
  obs::StatsSnapshot Stats() const { return index_->Stats(); }

  /// Folds a stream loader's report into the serve metrics
  /// (anc.serve.load_lines / load_skipped), so lines skipped while loading
  /// a file for submission are visible in Stats() instead of vanishing.
  void RecordLoadReport(const StreamLoadReport& report);

 private:
  void WriterLoop();
  /// Builds and publishes a view at the given watermark (writer thread
  /// only). In ANC_CHECK_INVARIANTS builds, validates the index at this
  /// quiescent point first — a view is never built from a state that
  /// fails the Lemma 4-13 validators.
  void Publish(Watermark watermark);

  /// Called by the store (append/flusher thread) when an fsync advances
  /// the durable mark; advances durable_ monotonically and wakes waiters.
  void OnDurable(uint64_t seq, double time);
  /// Records a store failure: first error sticks, anc.serve.wal_errors++.
  void RecordStoreError(const Status& status);
  /// Writer thread only: rotates a checkpoint at the current quiescent
  /// point and resolves any pending RequestCheckpoint waiters.
  void ServiceCheckpoint(uint64_t seq, double time);
  /// Writer thread only: drains queued RunQuiesced callbacks (FIFO) at the
  /// current quiescent point and resolves their waiters.
  void ServiceQuiesced(uint64_t seq, double time);

  AncIndex* index_;
  ServeOptions options_;
  IngestQueue queue_;
  AdmissionController admission_;
  store::DurableStore* store_ = nullptr;  // set in Start() when policy != kNone

  std::thread writer_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  // Set by the writer after its final publish: no further watermark
  // advances are possible, so waiters can stop waiting.
  std::atomic<bool> writer_done_{false};

  // Current snapshot. Guarded by view_mutex_, which is held only for the
  // duration of one shared_ptr copy/swap — never while building a view or
  // answering a query. (libstdc++'s std::atomic<std::shared_ptr> unlocks
  // its reader path with memory_order_relaxed, which leaves load/store of
  // the embedded raw pointer formally racy — ThreadSanitizer flags it —
  // so publication uses this micro-critical-section instead.)
  mutable util::Mutex view_mutex_;
  std::shared_ptr<const ClusterView> view_ ANC_GUARDED_BY(view_mutex_);
  uint64_t epoch_ = 0;  // writer thread (and Start) only

  // Published-watermark waiters.
  mutable util::Mutex watermark_mutex_;
  util::CondVar watermark_cv_;
  Watermark published_ ANC_GUARDED_BY(watermark_mutex_);

  mutable util::Mutex writer_status_mutex_;
  Status writer_status_ ANC_GUARDED_BY(writer_status_mutex_);

  // Durable-watermark waiters (mirrors the published-watermark pair).
  mutable util::Mutex durable_mutex_;
  util::CondVar durable_cv_;
  Watermark durable_ ANC_GUARDED_BY(durable_mutex_);

  mutable util::Mutex store_status_mutex_;
  Status store_status_ ANC_GUARDED_BY(store_status_mutex_);

  // RequestCheckpoint handshake with the writer thread.
  std::atomic<bool> checkpoint_requested_{false};
  util::Mutex checkpoint_mutex_;
  util::CondVar checkpoint_cv_;
  uint64_t checkpoints_done_ ANC_GUARDED_BY(checkpoint_mutex_) = 0;
  Status last_checkpoint_status_ ANC_GUARDED_BY(checkpoint_mutex_);

  // RunQuiesced handshake (mirrors the checkpoint one, but carries a FIFO
  // of callbacks; each caller waits for its own ticket). A caller that
  // gives up (timeout / server stop) flips its ticket's `cancelled` flag,
  // so a later quiescent point can never run a callback whose owner
  // already returned Unavailable.
  struct QuiesceTicket {
    uint64_t id = 0;
    std::function<void(const QuiescedContext&)> fn;
    std::shared_ptr<std::atomic<bool>> cancelled;
  };
  std::atomic<bool> quiesce_requested_{false};
  util::Mutex quiesce_mutex_;
  util::CondVar quiesce_cv_;
  uint64_t quiesce_issued_ ANC_GUARDED_BY(quiesce_mutex_) = 0;
  uint64_t quiesce_done_ ANC_GUARDED_BY(quiesce_mutex_) = 0;
  /// Ticket id the writer is executing right now (0 when none): a caller
  /// whose timeout fires mid-execution must keep waiting — "ran" vs "never
  /// ran" has to be decided truthfully.
  uint64_t quiesce_running_ ANC_GUARDED_BY(quiesce_mutex_) = 0;
  std::vector<QuiesceTicket> quiesce_callbacks_ ANC_GUARDED_BY(quiesce_mutex_);

  struct Metrics {
    obs::CounterId epochs;
    obs::CounterId applied;
    obs::CounterId apply_errors;
    obs::CounterId batches;
    obs::HistogramId batch_size;
    obs::HistogramId snapshot_build_us;
    obs::HistogramId query_us;
    obs::HistogramId query_staleness_us;
    obs::GaugeId watermark_seq;
    obs::GaugeId publish_lag;
    obs::CounterId wal_errors;
    obs::CounterId load_lines;
    obs::CounterId load_skipped;
  } m_;
};

}  // namespace anc::serve

#endif  // ANC_SERVE_SERVER_H_
