#include "serve/harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace anc::serve {

namespace {

double Quantile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  const size_t rank = std::min(
      samples.size() - 1, static_cast<size_t>(q * (samples.size() - 1)));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

std::string HarnessReport::ToString() const {
  char buffer[512];
  std::snprintf(  // lint-ok: output (formats the report string, no I/O)
      buffer, sizeof(buffer),
      "ingest: %llu submitted (%llu accepted, %llu dropped, %llu rejected) "
      "in %.3fs = %.0f act/s | queries: %llu (%llu shed) "
      "p50=%.1fus p99=%.1fus | staleness: mean=%.1f max=%llu activations | "
      "epochs: %llu",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(rejected), ingest_seconds,
      ingest_per_sec, static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(shed), query_p50_us, query_p99_us,
      mean_staleness_activations,
      static_cast<unsigned long long>(max_staleness_activations),
      static_cast<unsigned long long>(epochs));
  std::string out = buffer;
  if (load_skipped > 0) {
    std::snprintf(  // lint-ok: output (formats the report string, no I/O)
        buffer, sizeof(buffer), " | load: %llu lines skipped (first: %s)",
        static_cast<unsigned long long>(load_skipped),
        load_first_error.c_str());
    out += buffer;
  }
  return out;
}

HarnessTarget TargetFor(AncServer* server) {
  ANC_CHECK(server != nullptr, "TargetFor requires a server");
  HarnessTarget target;
  target.submit = [server](const Activation& activation) {
    return server->Submit(activation);
  };
  target.flush = [server](std::chrono::milliseconds timeout) {
    return server->Flush(timeout);
  };
  target.accepted = [server] { return server->accepted(); };
  target.dropped = [server] { return server->dropped(); };
  target.rejected = [server] { return server->rejected(); };
  target.frontier = [server] { return server->accepted(); };
  target.view_seq = [server] { return server->View()->watermark().seq; };
  target.epochs = [server] {
    return server->Stats().counter("anc.serve.epochs");
  };
  target.num_nodes = [server]() -> uint32_t {
    const auto view = server->View();
    return view != nullptr ? view->graph().NumNodes() : 0;
  };
  target.query_clusters = [server](const QueryOptions& query) {
    return server->Clusters(server->View()->DefaultLevel(), query).ok();
  };
  target.query_local = [server](NodeId node, const QueryOptions& query) {
    return server->LocalCluster(node, server->View()->DefaultLevel(), query)
        .ok();
  };
  target.record_load_report = [server](const StreamLoadReport& report) {
    server->RecordLoadReport(report);
  };
  return target;
}

ServeHarness::ServeHarness(AncServer* server, HarnessOptions options)
    : ServeHarness(TargetFor(server), options) {}

ServeHarness::ServeHarness(HarnessTarget target, HarnessOptions options)
    : target_(std::move(target)), options_(options) {
  ANC_CHECK(target_.submit && target_.flush && target_.accepted &&
                target_.dropped && target_.rejected && target_.frontier &&
                target_.view_seq && target_.epochs && target_.num_nodes &&
                target_.query_clusters && target_.query_local,
            "ServeHarness target is missing callbacks");
  if (options_.num_producers == 0) options_.num_producers = 1;
}

HarnessReport ServeHarness::Run(const ActivationStream& stream) {
  HarnessReport report;
  report.submitted = stream.size();
  const uint64_t accepted_before = target_.accepted();
  const uint64_t dropped_before = target_.dropped();
  const uint64_t rejected_before = target_.rejected();
  const uint64_t epochs_before = target_.epochs();

  std::atomic<size_t> next_index{0};
  std::atomic<bool> stop_queries{false};

  struct QueryThreadStats {
    std::vector<double> latencies_us;
    uint64_t queries = 0;
    uint64_t shed = 0;
    double staleness_sum = 0.0;
    uint64_t staleness_max = 0;
  };
  std::vector<QueryThreadStats> per_thread(options_.num_query_threads);

  std::vector<std::thread> query_threads;
  query_threads.reserve(options_.num_query_threads);
  for (uint32_t q = 0; q < options_.num_query_threads; ++q) {
    query_threads.emplace_back([this, q, &stop_queries, &per_thread] {
      QueryThreadStats& stats = per_thread[q];
      Rng rng(options_.rng_seed + 1000 + q);
      const uint32_t num_nodes = target_.num_nodes();
      if (num_nodes == 0) return;
      while (!stop_queries.load(std::memory_order_acquire)) {
        // Staleness of the answer the next query will see.
        const uint64_t frontier = target_.frontier();
        const uint64_t seq = target_.view_seq();
        const uint64_t lag = frontier > seq ? frontier - seq : 0;
        stats.staleness_sum += static_cast<double>(lag);
        stats.staleness_max = std::max(stats.staleness_max, lag);

        const auto start = std::chrono::steady_clock::now();
        bool ok;
        if (options_.full_clusters_every != 0 &&
            stats.queries % options_.full_clusters_every ==
                options_.full_clusters_every - 1) {
          ok = target_.query_clusters(options_.query);
        } else {
          const NodeId node = static_cast<NodeId>(rng.Next() % num_nodes);
          ok = target_.query_local(node, options_.query);
        }
        const double micros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        ++stats.queries;
        if (ok) {
          stats.latencies_us.push_back(micros);
        } else {
          ++stats.shed;
        }
      }
    });
  }

  const auto ingest_start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(options_.num_producers);
  for (uint32_t p = 0; p < options_.num_producers; ++p) {
    producers.emplace_back([this, &next_index, &stream] {
      while (true) {
        const size_t i =
            next_index.fetch_add(1, std::memory_order_relaxed);
        if (i >= stream.size()) return;
        // Rejections (kReject backpressure, ordering races) are absorbed
        // into the target's rejected() tally; the harness pushes on.
        (void)target_.submit(stream[i]);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  // A flush timeout surfaces through the report's watermarks, not here.
  (void)target_.flush(std::chrono::minutes(1));
  report.ingest_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ingest_start)
          .count();

  stop_queries.store(true, std::memory_order_release);
  for (std::thread& thread : query_threads) thread.join();

  report.accepted = target_.accepted() - accepted_before;
  report.dropped = target_.dropped() - dropped_before;
  report.rejected = target_.rejected() - rejected_before;
  report.ingest_per_sec =
      report.ingest_seconds > 0.0
          ? static_cast<double>(report.accepted) / report.ingest_seconds
          : 0.0;

  std::vector<double> all_latencies;
  for (QueryThreadStats& stats : per_thread) {
    report.queries += stats.queries;
    report.shed += stats.shed;
    report.mean_staleness_activations += stats.staleness_sum;
    report.max_staleness_activations =
        std::max(report.max_staleness_activations, stats.staleness_max);
    all_latencies.insert(all_latencies.end(), stats.latencies_us.begin(),
                         stats.latencies_us.end());
  }
  if (report.queries > 0) {
    report.mean_staleness_activations /= static_cast<double>(report.queries);
  }
  report.query_p50_us = Quantile(all_latencies, 0.50);
  report.query_p99_us = Quantile(all_latencies, 0.99);
  report.epochs = target_.epochs() - epochs_before;
  return report;
}

Result<HarnessReport> ServeHarness::RunFile(const Graph& g,
                                            const std::string& path) {
  StreamLoadOptions load;
  load.skip_bad_lines = true;
  StreamLoadReport load_report;
  Result<ActivationStream> stream =
      LoadActivationStream(g, path, load, &load_report);
  if (!stream.ok()) return stream.status();
  if (target_.record_load_report) target_.record_load_report(load_report);
  HarnessReport report = Run(stream.value());
  report.load_skipped = load_report.skipped;
  report.load_first_error = load_report.first_error;
  return report;
}

}  // namespace anc::serve
