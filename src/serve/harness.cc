#include "serve/harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace anc::serve {

namespace {

double Quantile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  const size_t rank = std::min(
      samples.size() - 1, static_cast<size_t>(q * (samples.size() - 1)));
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

}  // namespace

std::string HarnessReport::ToString() const {
  char buffer[512];
  std::snprintf(  // lint-ok: output (formats the report string, no I/O)
      buffer, sizeof(buffer),
      "ingest: %llu submitted (%llu accepted, %llu dropped, %llu rejected) "
      "in %.3fs = %.0f act/s | queries: %llu (%llu shed) "
      "p50=%.1fus p99=%.1fus | staleness: mean=%.1f max=%llu activations | "
      "epochs: %llu",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(rejected), ingest_seconds,
      ingest_per_sec, static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(shed), query_p50_us, query_p99_us,
      mean_staleness_activations,
      static_cast<unsigned long long>(max_staleness_activations),
      static_cast<unsigned long long>(epochs));
  std::string out = buffer;
  if (load_skipped > 0) {
    std::snprintf(  // lint-ok: output (formats the report string, no I/O)
        buffer, sizeof(buffer), " | load: %llu lines skipped (first: %s)",
        static_cast<unsigned long long>(load_skipped),
        load_first_error.c_str());
    out += buffer;
  }
  return out;
}

ServeHarness::ServeHarness(AncServer* server, HarnessOptions options)
    : server_(server), options_(options) {
  ANC_CHECK(server_ != nullptr, "ServeHarness requires a server");
  if (options_.num_producers == 0) options_.num_producers = 1;
}

HarnessReport ServeHarness::Run(const ActivationStream& stream) {
  HarnessReport report;
  report.submitted = stream.size();
  const uint64_t accepted_before = server_->accepted();
  const uint64_t dropped_before = server_->dropped();
  const uint64_t rejected_before = server_->rejected();

  std::atomic<size_t> next_index{0};
  std::atomic<bool> stop_queries{false};

  struct QueryThreadStats {
    std::vector<double> latencies_us;
    uint64_t queries = 0;
    uint64_t shed = 0;
    double staleness_sum = 0.0;
    uint64_t staleness_max = 0;
  };
  std::vector<QueryThreadStats> per_thread(options_.num_query_threads);

  std::vector<std::thread> query_threads;
  query_threads.reserve(options_.num_query_threads);
  for (uint32_t q = 0; q < options_.num_query_threads; ++q) {
    query_threads.emplace_back([this, q, &stop_queries, &per_thread] {
      QueryThreadStats& stats = per_thread[q];
      Rng rng(options_.rng_seed + 1000 + q);
      const uint32_t num_nodes =
          server_->View() != nullptr ? server_->View()->graph().NumNodes() : 0;
      if (num_nodes == 0) return;
      while (!stop_queries.load(std::memory_order_acquire)) {
        // Staleness of the answer the next query will see.
        const uint64_t frontier = server_->accepted();
        std::shared_ptr<const ClusterView> view = server_->View();
        const uint64_t lag = frontier > view->watermark().seq
                                 ? frontier - view->watermark().seq
                                 : 0;
        stats.staleness_sum += static_cast<double>(lag);
        stats.staleness_max = std::max(stats.staleness_max, lag);

        const auto start = std::chrono::steady_clock::now();
        bool ok;
        if (options_.full_clusters_every != 0 &&
            stats.queries % options_.full_clusters_every ==
                options_.full_clusters_every - 1) {
          ok = server_->Clusters(view->DefaultLevel(), options_.query).ok();
        } else {
          const NodeId node = static_cast<NodeId>(rng.Next() % num_nodes);
          ok = server_
                   ->LocalCluster(node, view->DefaultLevel(), options_.query)
                   .ok();
        }
        const double micros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        ++stats.queries;
        if (ok) {
          stats.latencies_us.push_back(micros);
        } else {
          ++stats.shed;
        }
      }
    });
  }

  const auto ingest_start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(options_.num_producers);
  for (uint32_t p = 0; p < options_.num_producers; ++p) {
    producers.emplace_back([this, &next_index, &stream] {
      while (true) {
        const size_t i =
            next_index.fetch_add(1, std::memory_order_relaxed);
        if (i >= stream.size()) return;
        // Rejections (kReject backpressure, ordering races) are absorbed
        // into the server's rejected() tally; the harness pushes on.
        (void)server_->Submit(stream[i]);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  (void)server_->Flush();
  report.ingest_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ingest_start)
          .count();

  stop_queries.store(true, std::memory_order_release);
  for (std::thread& thread : query_threads) thread.join();

  report.accepted = server_->accepted() - accepted_before;
  report.dropped = server_->dropped() - dropped_before;
  report.rejected = server_->rejected() - rejected_before;
  report.ingest_per_sec =
      report.ingest_seconds > 0.0
          ? static_cast<double>(report.accepted) / report.ingest_seconds
          : 0.0;

  std::vector<double> all_latencies;
  for (QueryThreadStats& stats : per_thread) {
    report.queries += stats.queries;
    report.shed += stats.shed;
    report.mean_staleness_activations += stats.staleness_sum;
    report.max_staleness_activations =
        std::max(report.max_staleness_activations, stats.staleness_max);
    all_latencies.insert(all_latencies.end(), stats.latencies_us.begin(),
                         stats.latencies_us.end());
  }
  if (report.queries > 0) {
    report.mean_staleness_activations /= static_cast<double>(report.queries);
  }
  report.query_p50_us = Quantile(all_latencies, 0.50);
  report.query_p99_us = Quantile(all_latencies, 0.99);
  report.epochs = server_->Stats().counter("anc.serve.epochs");
  return report;
}

Result<HarnessReport> ServeHarness::RunFile(const Graph& g,
                                            const std::string& path) {
  StreamLoadOptions load;
  load.skip_bad_lines = true;
  StreamLoadReport load_report;
  Result<ActivationStream> stream =
      LoadActivationStream(g, path, load, &load_report);
  if (!stream.ok()) return stream.status();
  server_->RecordLoadReport(load_report);
  HarnessReport report = Run(stream.value());
  report.load_skipped = load_report.skipped;
  report.load_first_error = load_report.first_error;
  return report;
}

}  // namespace anc::serve
