#include "serve/ingest_queue.h"

namespace anc::serve {

IngestQueue::IngestQueue(IngestOptions options, obs::MetricsRegistry* registry)
    : options_(options), metrics_(registry) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (metrics_ != nullptr) {
    accepted_id_ = metrics_->Counter("anc.serve.ingest_accepted");
    dropped_id_ = metrics_->Counter("anc.serve.ingest_dropped");
    rejected_id_ = metrics_->Counter("anc.serve.ingest_rejected");
    depth_id_ = metrics_->Gauge("anc.serve.ingest_depth");
    high_watermark_id_ = metrics_->Gauge("anc.serve.ingest_high_watermark");
    oldest_age_us_id_ = metrics_->Gauge("anc.serve.ingest_oldest_age_us");
    queue_wait_us_ = metrics_->Histogram("anc.serve.ingest_wait_us");
  }
}

void IngestQueue::SetOldestGaugeLocked(
    std::chrono::steady_clock::time_point now) {
  if (metrics_ == nullptr) return;
  const double age_us =
      entries_.empty()
          ? 0.0
          : std::chrono::duration<double, std::micro>(
                now - entries_.front().enqueued_at)
                .count();
  metrics_->Set(oldest_age_us_id_, static_cast<int64_t>(age_us));
}

Result<uint64_t> IngestQueue::Push(Activation activation,
                                   obs::TraceContext trace) {
  uint64_t seq = 0;
  {
    util::MutexLock lock(mutex_);
    if (closed_) return Status::FailedPrecondition("ingest queue is closed");
    if (activation.time < last_accepted_time_) {
      if (options_.clamp_out_of_order) {
        activation.time = last_accepted_time_;
      } else {
        ++rejected_;
        if (metrics_ != nullptr) metrics_->Add(rejected_id_);
        return Status::InvalidArgument(
            "activation timestamp regressed below the accepted watermark");
      }
    }
    if (entries_.size() >= options_.capacity) {
      switch (options_.policy) {
        case BackpressurePolicy::kBlock:
          not_full_.Wait(mutex_, [this] {
            mutex_.AssertHeld();
            return closed_ || entries_.size() < options_.capacity;
          });
          if (closed_) {
            return Status::FailedPrecondition("ingest queue is closed");
          }
          break;
        case BackpressurePolicy::kDropOldest:
          // FIFO head eviction: the evicted ticket resolves (as shed), so
          // watermark waiters on it are not stranded.
          resolved_seq_ = entries_.front().seq;
          entries_.pop_front();
          ++dropped_;
          if (metrics_ != nullptr) metrics_->Add(dropped_id_);
          break;
        case BackpressurePolicy::kReject:
          ++rejected_;
          if (metrics_ != nullptr) metrics_->Add(rejected_id_);
          return Status::Unavailable("ingest queue is full");
      }
    }
    seq = next_seq_++;
    // Re-check the watermark: a kBlock wait may have admitted later pushes.
    if (activation.time < last_accepted_time_) {
      activation.time = last_accepted_time_;
    }
    last_accepted_time_ = activation.time;
    const auto now = std::chrono::steady_clock::now();
    entries_.push_back({activation, seq, now, trace});
    ++accepted_;
    if (entries_.size() > high_watermark_) high_watermark_ = entries_.size();
    if (metrics_ != nullptr) {
      metrics_->Add(accepted_id_);
      metrics_->Set(depth_id_, static_cast<int64_t>(entries_.size()));
      metrics_->Set(high_watermark_id_,
                    static_cast<int64_t>(high_watermark_));
      SetOldestGaugeLocked(now);
    }
  }
  not_empty_.NotifyOne();
  return seq;
}

Result<size_t> IngestQueue::PushBatch(const Activation* data, size_t count,
                                      uint64_t* last_seq,
                                      const obs::TraceContext* traces) {
  size_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t dropped = 0;
  {
    util::MutexLock lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < count; ++i) {
      // Close() can land while a kBlock wait releases the lock: stop and
      // report the accepted prefix (the caller's remaining entries are
      // lost exactly as a failed Push would lose them).
      if (closed_) break;
      Activation activation = data[i];
      if (activation.time < last_accepted_time_) {
        if (options_.clamp_out_of_order) {
          activation.time = last_accepted_time_;
        } else {
          ++rejected;
          continue;
        }
      }
      if (entries_.size() >= options_.capacity) {
        switch (options_.policy) {
          case BackpressurePolicy::kBlock:
            not_empty_.NotifyOne();  // wake the drainer before waiting on it
            not_full_.Wait(mutex_, [this] {
              mutex_.AssertHeld();
              return closed_ || entries_.size() < options_.capacity;
            });
            if (closed_) break;
            // A concurrent push may have advanced the watermark: re-clamp.
            if (activation.time < last_accepted_time_) {
              activation.time = last_accepted_time_;
            }
            break;
          case BackpressurePolicy::kDropOldest:
            resolved_seq_ = entries_.front().seq;
            entries_.pop_front();
            ++dropped;
            break;
          case BackpressurePolicy::kReject:
            ++rejected;
            continue;
        }
      }
      if (closed_) break;
      const uint64_t seq = next_seq_++;
      last_accepted_time_ = activation.time;
      entries_.push_back({activation, seq, now,
                          traces != nullptr ? traces[i]
                                            : obs::TraceContext{}});
      ++accepted;
      if (entries_.size() > high_watermark_) {
        high_watermark_ = entries_.size();
      }
      if (last_seq != nullptr) *last_seq = seq;
    }
    accepted_ += accepted;
    rejected_ += rejected;
    dropped_ += dropped;
    if (metrics_ != nullptr) {
      if (accepted > 0) metrics_->Add(accepted_id_, accepted);
      if (rejected > 0) metrics_->Add(rejected_id_, rejected);
      if (dropped > 0) metrics_->Add(dropped_id_, dropped);
      metrics_->Set(depth_id_, static_cast<int64_t>(entries_.size()));
      metrics_->Set(high_watermark_id_,
                    static_cast<int64_t>(high_watermark_));
      SetOldestGaugeLocked(now);
    }
    if (closed_ && accepted == 0) {
      return Status::FailedPrecondition("ingest queue is closed");
    }
  }
  if (accepted > 0) not_empty_.NotifyOne();
  return accepted;
}

size_t IngestQueue::PopBatch(std::vector<Activation>* out, size_t max_batch,
                             std::chrono::microseconds wait,
                             uint64_t* resolved_seq,
                             std::vector<Popped>* info) {
  size_t popped = 0;
  {
    util::MutexLock lock(mutex_);
    if (entries_.empty() && !closed_) {
      not_empty_.WaitFor(mutex_, wait, [this] {
        mutex_.AssertHeld();
        return closed_ || !entries_.empty();
      });
    }
    const auto now = std::chrono::steady_clock::now();
    while (popped < max_batch && !entries_.empty()) {
      Entry& entry = entries_.front();
      out->push_back(entry.activation);
      if (info != nullptr) info->push_back({entry.trace, entry.enqueued_at});
      resolved_seq_ = entry.seq;
      if (metrics_ != nullptr) {
        metrics_->Record(queue_wait_us_,
                         std::chrono::duration<double, std::micro>(
                             now - entry.enqueued_at)
                             .count());
      }
      entries_.pop_front();
      ++popped;
    }
    if (resolved_seq != nullptr) *resolved_seq = resolved_seq_;
    if (metrics_ != nullptr && popped > 0) {
      metrics_->Set(depth_id_, static_cast<int64_t>(entries_.size()));
      SetOldestGaugeLocked(now);
    }
  }
  if (popped > 0) not_full_.NotifyAll();
  return popped;
}

void IngestQueue::Close() {
  {
    util::MutexLock lock(mutex_);
    closed_ = true;
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
}

bool IngestQueue::closed() const {
  util::MutexLock lock(mutex_);
  return closed_;
}

size_t IngestQueue::Depth() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

uint64_t IngestQueue::accepted() const {
  util::MutexLock lock(mutex_);
  return accepted_;
}

uint64_t IngestQueue::dropped() const {
  util::MutexLock lock(mutex_);
  return dropped_;
}

uint64_t IngestQueue::rejected() const {
  util::MutexLock lock(mutex_);
  return rejected_;
}

double IngestQueue::last_accepted_time() const {
  util::MutexLock lock(mutex_);
  return last_accepted_time_;
}

size_t IngestQueue::high_watermark() const {
  util::MutexLock lock(mutex_);
  return high_watermark_;
}

double IngestQueue::OldestAgeSeconds() const {
  util::MutexLock lock(mutex_);
  if (entries_.empty()) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       entries_.front().enqueued_at)
      .count();
}

}  // namespace anc::serve
