#ifndef ANC_SERVE_CLUSTER_VIEW_H_
#define ANC_SERVE_CLUSTER_VIEW_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/anc.h"
#include "graph/clustering_types.h"
#include "graph/graph.h"
#include "pyramid/clustering.h"

namespace anc::serve {

/// The durability horizon of a published view: everything the single
/// writer had applied when the view was built.
struct Watermark {
  /// Ingest tickets resolved (applied or — under kDropOldest — shed) up to
  /// and including this sequence number. Tickets are issued by
  /// IngestQueue::Push starting at 1; 0 means "nothing ingested yet".
  uint64_t seq = 0;
  /// Highest activation timestamp applied to the index.
  double time = 0.0;
};

/// An immutable, point-in-time cluster snapshot published by the serve
/// writer (docs/serving.md).
///
/// A view captures the pyramid's per-level vote tallies — the complete
/// input of every Section V-B query algorithm — plus the level geometry,
/// and answers Clusters / LocalCluster / SmallestCluster / Zoom with the
/// exact same template code the live AncIndex runs, so results are
/// byte-identical to a quiesced single-threaded index at the same
/// watermark. Views are shared by shared_ptr: any number of query threads
/// read one concurrently with zero synchronization (all state is const
/// after construction), while the writer keeps mutating the live index and
/// publishing fresh views.
class ClusterView {
 public:
  ClusterView(const Graph& graph, AncIndex::ClusterState state,
              uint64_t epoch, Watermark watermark)
      : graph_(&graph),
        state_(std::move(state)),
        epoch_(epoch),
        watermark_(watermark),
        published_at_(std::chrono::steady_clock::now()) {}

  ClusterView(const ClusterView&) = delete;
  ClusterView& operator=(const ClusterView&) = delete;

  // --- Vote-source interface (pyramid/clustering.h templates) ------------
  const Graph& graph() const { return *graph_; }
  uint32_t num_levels() const { return state_.num_levels; }
  uint32_t DefaultLevel() const { return state_.default_level; }
  uint32_t vote_threshold() const { return state_.vote_threshold; }
  bool EdgePassesVote(EdgeId e, uint32_t level) const {
    return state_.vote_counts[level - 1][e] >= state_.vote_threshold;
  }
  uint32_t VotesOf(EdgeId e, uint32_t level) const {
    return state_.vote_counts[level - 1][e];
  }

  // --- Provenance --------------------------------------------------------

  /// Monotonic publication counter (1 = the view published at Start()).
  uint64_t epoch() const { return epoch_; }
  const Watermark& watermark() const { return watermark_; }

  /// Wall-clock age of the view (seconds since publication) — the
  /// staleness signal the admission layer degrades and sheds on.
  double AgeSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         published_at_)
        .count();
  }

  // --- Queries (identical semantics to AncIndex) --------------------------

  /// All clusters at `level` (power clustering by default; Section V-B).
  Clustering Clusters(uint32_t level, bool power = true) const {
    return power ? PowerClusteringOf(*this, level)
                 : EvenClusteringOf(*this, level);
  }

  /// All clusters at the Theta(sqrt n) default granularity (Problem 1.1).
  Clustering Clusters() const { return Clusters(DefaultLevel()); }

  /// Local cluster of `query` at `level` (Problem 1.2).
  std::vector<NodeId> LocalCluster(NodeId query, uint32_t level) const {
    return LocalClusterOf(*this, query, level);
  }

  /// The smallest (finest-level) cluster of `query` with >= min_size
  /// members; *level_out receives the level when non-null.
  std::vector<NodeId> SmallestCluster(NodeId query, uint32_t min_size = 2,
                                      uint32_t* level_out = nullptr) const {
    std::vector<NodeId> members;
    const uint32_t level =
        SmallestClusterLevelOf(*this, query, min_size, &members);
    if (level_out != nullptr) *level_out = level;
    return members;
  }

  /// Zoom cursor over this view. The cursor borrows the view: keep the
  /// shared_ptr alive while using it.
  BasicZoomCursor<ClusterView> Zoom() const {
    return BasicZoomCursor<ClusterView>(*this);
  }

  /// Heap bytes of the captured vote tables.
  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this);
    for (const auto& row : state_.vote_counts) {
      bytes += row.capacity() * sizeof(uint16_t);
    }
    return bytes;
  }

 private:
  const Graph* graph_;
  AncIndex::ClusterState state_;
  uint64_t epoch_;
  Watermark watermark_;
  std::chrono::steady_clock::time_point published_at_;
};

}  // namespace anc::serve

#endif  // ANC_SERVE_CLUSTER_VIEW_H_
