#ifndef ANC_SERVE_ADMISSION_H_
#define ANC_SERVE_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "obs/metrics.h"
#include "serve/cluster_view.h"
#include "util/status.h"
#include "util/sync.h"

namespace anc::serve {

/// Overload-behavior knobs (docs/serving.md). The defaults never degrade
/// or shed: serving stays best-effort-fresh until thresholds are set.
struct AdmissionOptions {
  /// Shed queries outright while the ingest backlog is at or above this
  /// depth (the writer is drowning; spending reader CPU makes it worse).
  size_t shed_queue_depth = std::numeric_limits<size_t>::max();

  /// When the published view is older than this (seconds), serve queries
  /// `degrade_levels` levels coarser: coarse clusters change more slowly,
  /// so a stale coarse answer stays closer to the truth than a stale fine
  /// one (graceful degradation).
  double degrade_staleness_s = std::numeric_limits<double>::infinity();
  uint32_t degrade_levels = 1;

  /// Shed queries once the view is older than this (seconds): past this
  /// lag an answer is considered worse than an explicit Unavailable.
  double shed_staleness_s = std::numeric_limits<double>::infinity();

  /// Smoothing factor of the query-latency EWMA the deadline check uses.
  double latency_ewma_alpha = 0.2;

  /// Per-tenant token-bucket quota (docs/networking.md): each tenant id
  /// (carried in the RPC frame) earns `tenant_quota_per_s` request tokens
  /// per second up to a burst of `tenant_quota_burst`; a request that finds
  /// the bucket empty is rejected Unavailable and counted in
  /// anc.net.quota_rejections. 0 (the default) disables quota enforcement —
  /// every tenant is admitted.
  double tenant_quota_per_s = 0.0;
  double tenant_quota_burst = 0.0;

  /// Upper bound on tracked tenant buckets. Tenant ids arrive unauthenticated
  /// on the wire, so without a bound an attacker cycling ids grows the bucket
  /// map without limit (memory exhaustion). At capacity, inserting a new
  /// tenant first drops every bucket idle long enough to have refilled to a
  /// full burst (eviction is lossless: a re-seen tenant starts with a full
  /// burst anyway), falling back to the least-recently-refilled bucket.
  size_t tenant_quota_max_tenants = 4096;
};

/// Per-query options.
struct QueryOptions {
  /// Deadline budget in seconds. The admission layer sheds the query when
  /// its smoothed latency estimate for this query class already exceeds
  /// the budget — rejecting in O(1) instead of burning reader CPU on an
  /// answer that will arrive too late. Infinity = no deadline.
  double deadline_s = std::numeric_limits<double>::infinity();
};

/// Admission decision for one query.
struct AdmissionDecision {
  enum class Action { kServe, kDegrade, kShed };
  Action action = Action::kServe;
  /// The level to serve at (== requested level unless degraded).
  uint32_t level = 0;
  /// Unavailable with the shed reason when action == kShed; OK otherwise.
  Status status;
};

/// The overload/admission layer of the serving stack: decides, per query,
/// whether to serve fresh, serve degraded (coarser level) or shed, from
/// two load signals — ingest backlog depth and published-view staleness —
/// plus the caller's deadline against a smoothed latency estimate.
/// Thread-safe; all state is atomic.
class AdmissionController {
 public:
  /// `registry` (optional) receives anc.serve.admit_* counters; it must
  /// outlive the controller.
  explicit AdmissionController(AdmissionOptions options,
                               obs::MetricsRegistry* registry = nullptr);

  const AdmissionOptions& options() const { return options_; }

  /// Decides how to serve a query for `requested_level` given the current
  /// view and ingest backlog. Never blocks.
  AdmissionDecision Admit(uint32_t requested_level, const ClusterView& view,
                          size_t ingest_depth,
                          const QueryOptions& query = {}) const;

  /// Per-tenant token-bucket admission (the networked front-end calls this
  /// with the tenant id from the RPC frame before dispatching any op).
  /// Refills `tenant_quota_per_s` tokens/s up to `tenant_quota_burst`,
  /// spends one token per admitted request, and rejects Unavailable when
  /// the bucket is empty (anc.net.quota_rejections). Always OK while
  /// quotas are disabled (tenant_quota_per_s == 0). Thread-safe.
  Status AdmitTenant(uint64_t tenant_id) const;

  /// Quota rejections so far (mirrors the anc.net.quota_rejections
  /// counter, for registry-less deployments).
  uint64_t quota_rejections() const {
    return quota_rejections_.load(std::memory_order_relaxed);
  }

  /// Feeds one completed query's latency into the deadline estimator.
  void RecordLatency(double seconds) const;

  /// Current smoothed latency estimate (seconds; 0 until the first
  /// RecordLatency).
  double LatencyEstimate() const {
    return latency_ewma_.load(std::memory_order_relaxed);
  }

 private:
  /// One tenant's bucket. Tokens refill lazily on access.
  struct TokenBucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
  };

  /// Makes room for one more tenant bucket (see tenant_quota_max_tenants):
  /// drops every bucket idle long enough to have refilled to a full burst,
  /// else the least-recently-refilled one.
  void EvictTenantsLocked(std::chrono::steady_clock::time_point now,
                          double burst) const ANC_REQUIRES(tenant_mutex_);

  AdmissionOptions options_;
  mutable std::atomic<double> latency_ewma_{0.0};
  mutable std::atomic<uint64_t> quota_rejections_{0};
  /// Tenant buckets are touched once per request under a plain mutex: the
  /// critical section is a couple of arithmetic ops, far below the cost of
  /// the socket read that precedes every AdmitTenant call.
  mutable util::Mutex tenant_mutex_;
  mutable std::unordered_map<uint64_t, TokenBucket> tenants_
      ANC_GUARDED_BY(tenant_mutex_);
  obs::MetricsRegistry* metrics_;
  obs::CounterId served_id_;
  obs::CounterId degraded_id_;
  obs::CounterId shed_id_;
  obs::CounterId quota_rejections_id_;
};

}  // namespace anc::serve

#endif  // ANC_SERVE_ADMISSION_H_
