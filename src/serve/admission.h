#ifndef ANC_SERVE_ADMISSION_H_
#define ANC_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "obs/metrics.h"
#include "serve/cluster_view.h"
#include "util/status.h"

namespace anc::serve {

/// Overload-behavior knobs (docs/serving.md). The defaults never degrade
/// or shed: serving stays best-effort-fresh until thresholds are set.
struct AdmissionOptions {
  /// Shed queries outright while the ingest backlog is at or above this
  /// depth (the writer is drowning; spending reader CPU makes it worse).
  size_t shed_queue_depth = std::numeric_limits<size_t>::max();

  /// When the published view is older than this (seconds), serve queries
  /// `degrade_levels` levels coarser: coarse clusters change more slowly,
  /// so a stale coarse answer stays closer to the truth than a stale fine
  /// one (graceful degradation).
  double degrade_staleness_s = std::numeric_limits<double>::infinity();
  uint32_t degrade_levels = 1;

  /// Shed queries once the view is older than this (seconds): past this
  /// lag an answer is considered worse than an explicit Unavailable.
  double shed_staleness_s = std::numeric_limits<double>::infinity();

  /// Smoothing factor of the query-latency EWMA the deadline check uses.
  double latency_ewma_alpha = 0.2;
};

/// Per-query options.
struct QueryOptions {
  /// Deadline budget in seconds. The admission layer sheds the query when
  /// its smoothed latency estimate for this query class already exceeds
  /// the budget — rejecting in O(1) instead of burning reader CPU on an
  /// answer that will arrive too late. Infinity = no deadline.
  double deadline_s = std::numeric_limits<double>::infinity();
};

/// Admission decision for one query.
struct AdmissionDecision {
  enum class Action { kServe, kDegrade, kShed };
  Action action = Action::kServe;
  /// The level to serve at (== requested level unless degraded).
  uint32_t level = 0;
  /// Unavailable with the shed reason when action == kShed; OK otherwise.
  Status status;
};

/// The overload/admission layer of the serving stack: decides, per query,
/// whether to serve fresh, serve degraded (coarser level) or shed, from
/// two load signals — ingest backlog depth and published-view staleness —
/// plus the caller's deadline against a smoothed latency estimate.
/// Thread-safe; all state is atomic.
class AdmissionController {
 public:
  /// `registry` (optional) receives anc.serve.admit_* counters; it must
  /// outlive the controller.
  explicit AdmissionController(AdmissionOptions options,
                               obs::MetricsRegistry* registry = nullptr);

  const AdmissionOptions& options() const { return options_; }

  /// Decides how to serve a query for `requested_level` given the current
  /// view and ingest backlog. Never blocks.
  AdmissionDecision Admit(uint32_t requested_level, const ClusterView& view,
                          size_t ingest_depth,
                          const QueryOptions& query = {}) const;

  /// Feeds one completed query's latency into the deadline estimator.
  void RecordLatency(double seconds) const;

  /// Current smoothed latency estimate (seconds; 0 until the first
  /// RecordLatency).
  double LatencyEstimate() const {
    return latency_ewma_.load(std::memory_order_relaxed);
  }

 private:
  AdmissionOptions options_;
  mutable std::atomic<double> latency_ewma_{0.0};
  obs::MetricsRegistry* metrics_;
  obs::CounterId served_id_;
  obs::CounterId degraded_id_;
  obs::CounterId shed_id_;
};

}  // namespace anc::serve

#endif  // ANC_SERVE_ADMISSION_H_
