#include "serve/server.h"

#include <algorithm>
#include <utility>

namespace anc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

double MicrosSince(Clock::time_point t) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t).count();
}

}  // namespace

AncServer::AncServer(AncIndex* index, ServeOptions options)
    : index_(index),
      options_(options),
      queue_(options.ingest, &index->metrics()),
      admission_(options.admission, &index->metrics()) {
  ANC_CHECK(index_ != nullptr, "AncServer requires an index");
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.snapshot_every_activations == 0) {
    options_.snapshot_every_activations = 1;
  }
  obs::MetricsRegistry& registry = index_->metrics();
  m_.epochs = registry.Counter("anc.serve.epochs");
  m_.applied = registry.Counter("anc.serve.applied");
  m_.apply_errors = registry.Counter("anc.serve.apply_errors");
  m_.batches = registry.Counter("anc.serve.batches");
  m_.batch_size = registry.Histogram("anc.serve.batch_size");
  m_.snapshot_build_us = registry.Histogram("anc.serve.snapshot_build_us");
  m_.query_us = registry.Histogram("anc.serve.query_us");
  m_.query_staleness_us = registry.Histogram("anc.serve.query_staleness_us");
  m_.watermark_seq = registry.Gauge("anc.serve.watermark_seq");
  m_.publish_lag = registry.Gauge("anc.serve.publish_lag_activations");
}

AncServer::~AncServer() { Stop(); }

Status AncServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  if (stop_requested_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "server already stopped; create a new AncServer to serve again");
  }
  writer_done_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // Epoch 1: readers always have a view, even before the first activation.
  Publish(Watermark{0, 0.0});
  writer_ = std::thread(&AncServer::WriterLoop, this);
  return Status::OK();
}

void AncServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_requested_.store(true, std::memory_order_release);
  queue_.Close();
  if (writer_.joinable()) writer_.join();
  // Wake waiters stranded on tickets that will never resolve.
  watermark_cv_.notify_all();
}

void AncServer::WriterLoop() {
  std::vector<Activation> batch;
  batch.reserve(options_.max_batch);
  uint64_t applied_since_publish = 0;
  uint64_t resolved_seq = 0;
  uint64_t published_seq = 0;
  double last_applied_time = 0.0;
  Clock::time_point last_publish = Clock::now();

  const auto publish = [&] {
    Publish(Watermark{resolved_seq, last_applied_time});
    published_seq = resolved_seq;
    applied_since_publish = 0;
    last_publish = Clock::now();
  };

  while (true) {
    batch.clear();
    const size_t popped = queue_.PopBatch(&batch, options_.max_batch,
                                          options_.idle_wait, &resolved_seq);
    if (popped == 0) {
      if (stop_requested_.load(std::memory_order_acquire) &&
          queue_.Depth() == 0) {
        break;
      }
      // Idle wakeup: publish pending state (applies, or tickets resolved
      // by drop-oldest eviction) once the staleness budget is spent.
      if ((applied_since_publish > 0 || resolved_seq > published_seq) &&
          SecondsSince(last_publish) >= options_.snapshot_max_age_s) {
        publish();
      }
      continue;
    }

    for (const Activation& activation : batch) {
      const Status status = index_->Apply(activation);
      if (status.ok()) {
        index_->metrics().Add(m_.applied);
        last_applied_time = std::max(last_applied_time, activation.time);
      } else {
        index_->metrics().Add(m_.apply_errors);
        std::lock_guard<std::mutex> lock(writer_status_mutex_);
        if (writer_status_.ok()) writer_status_ = status;
      }
    }
    applied_since_publish += popped;
    index_->metrics().Add(m_.batches);
    index_->metrics().Record(m_.batch_size, static_cast<double>(popped));

    if (applied_since_publish >= options_.snapshot_every_activations ||
        SecondsSince(last_publish) >= options_.snapshot_max_age_s) {
      publish();
    }
  }
  // Final quiescent publish: the watermark lands on everything resolved.
  publish();
  writer_done_.store(true, std::memory_order_release);
  watermark_cv_.notify_all();
}

void AncServer::Publish(Watermark watermark) {
#ifdef ANC_CHECK_INVARIANTS
  // Quiescent-point validation: a snapshot is never built from an index
  // state that fails the Lemma 4-13 validators (docs/serving.md).
  const Status valid = index_->ValidateInvariants(/*deep=*/false);
  ANC_CHECK(valid.ok(), valid.ToString().c_str());
#endif
  const Clock::time_point build_start = Clock::now();
  auto view = std::make_shared<const ClusterView>(
      index_->graph(), index_->ExportClusterState(), ++epoch_, watermark);
  {
    std::lock_guard<std::mutex> lock(view_mutex_);
    view_ = std::move(view);
  }
  {
    std::lock_guard<std::mutex> lock(watermark_mutex_);
    published_ = watermark;
  }
  watermark_cv_.notify_all();
  obs::MetricsRegistry& registry = index_->metrics();
  registry.Add(m_.epochs);
  registry.Record(m_.snapshot_build_us, MicrosSince(build_start));
  registry.Set(m_.watermark_seq, static_cast<int64_t>(watermark.seq));
  registry.Set(m_.publish_lag,
               static_cast<int64_t>(queue_.accepted() - watermark.seq));
}

Result<uint64_t> AncServer::Submit(const Activation& activation) {
  if (activation.edge >= index_->graph().NumEdges()) {
    return Status::InvalidArgument("activation references edge " +
                                   std::to_string(activation.edge) +
                                   " outside the graph");
  }
  return queue_.Push(activation);
}

Status AncServer::SubmitStream(const ActivationStream& stream,
                               uint64_t* last_seq) {
  for (const Activation& activation : stream) {
    Result<uint64_t> ticket = Submit(activation);
    if (!ticket.ok()) return ticket.status();
    if (last_seq != nullptr) *last_seq = *ticket;
  }
  return Status::OK();
}

Status AncServer::Flush(std::chrono::milliseconds timeout) {
  return AwaitSeq(queue_.accepted(), timeout);
}

Watermark AncServer::watermark() const {
  std::lock_guard<std::mutex> lock(watermark_mutex_);
  return published_;
}

Status AncServer::AwaitSeq(uint64_t seq, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(watermark_mutex_);
  if (published_.seq >= seq) return Status::OK();
  const bool reached = watermark_cv_.wait_for(lock, timeout, [&] {
    return published_.seq >= seq ||
           writer_done_.load(std::memory_order_acquire);
  });
  if (published_.seq >= seq) return Status::OK();
  return Status::Unavailable(
      reached ? "server stopped before ticket " + std::to_string(seq) +
                    " resolved"
              : "timed out awaiting ticket " + std::to_string(seq));
}

Status AncServer::AwaitTime(double t, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(watermark_mutex_);
  if (published_.time >= t) return Status::OK();
  const bool reached = watermark_cv_.wait_for(lock, timeout, [&] {
    return published_.time >= t ||
           writer_done_.load(std::memory_order_acquire);
  });
  if (published_.time >= t) return Status::OK();
  return Status::Unavailable(
      reached ? "server stopped before watermark time " + std::to_string(t)
              : "timed out awaiting watermark time " + std::to_string(t));
}

std::shared_ptr<const ClusterView> AncServer::View() const {
  std::lock_guard<std::mutex> lock(view_mutex_);
  return view_;
}

Result<Clustering> AncServer::Clusters(uint32_t level,
                                       const QueryOptions& query) {
  std::shared_ptr<const ClusterView> view = View();
  if (view == nullptr) {
    return Status::FailedPrecondition("server not started");
  }
  if (level < 1 || level > view->num_levels()) {
    return Status::OutOfRange("level must be in [1, " +
                              std::to_string(view->num_levels()) + "]");
  }
  const AdmissionDecision decision =
      admission_.Admit(level, *view, queue_.Depth(), query);
  if (decision.action == AdmissionDecision::Action::kShed) {
    return decision.status;
  }
  obs::MetricsRegistry& registry = index_->metrics();
  registry.Record(m_.query_staleness_us, view->AgeSeconds() * 1e6);
  const Clock::time_point start = Clock::now();
  Clustering out = view->Clusters(decision.level);
  const double micros = MicrosSince(start);
  registry.Record(m_.query_us, micros);
  admission_.RecordLatency(micros * 1e-6);
  return out;
}

Result<Clustering> AncServer::Clusters() {
  std::shared_ptr<const ClusterView> view = View();
  if (view == nullptr) {
    return Status::FailedPrecondition("server not started");
  }
  return Clusters(view->DefaultLevel());
}

Result<std::vector<NodeId>> AncServer::LocalCluster(NodeId node,
                                                    uint32_t level,
                                                    const QueryOptions& query) {
  std::shared_ptr<const ClusterView> view = View();
  if (view == nullptr) {
    return Status::FailedPrecondition("server not started");
  }
  if (node >= view->graph().NumNodes()) {
    return Status::OutOfRange("node out of range");
  }
  if (level < 1 || level > view->num_levels()) {
    return Status::OutOfRange("level must be in [1, " +
                              std::to_string(view->num_levels()) + "]");
  }
  const AdmissionDecision decision =
      admission_.Admit(level, *view, queue_.Depth(), query);
  if (decision.action == AdmissionDecision::Action::kShed) {
    return decision.status;
  }
  obs::MetricsRegistry& registry = index_->metrics();
  registry.Record(m_.query_staleness_us, view->AgeSeconds() * 1e6);
  const Clock::time_point start = Clock::now();
  std::vector<NodeId> out = view->LocalCluster(node, decision.level);
  const double micros = MicrosSince(start);
  registry.Record(m_.query_us, micros);
  admission_.RecordLatency(micros * 1e-6);
  return out;
}

Result<std::vector<NodeId>> AncServer::SmallestCluster(
    NodeId node, uint32_t min_size, uint32_t* level_out,
    const QueryOptions& query) {
  std::shared_ptr<const ClusterView> view = View();
  if (view == nullptr) {
    return Status::FailedPrecondition("server not started");
  }
  if (node >= view->graph().NumNodes()) {
    return Status::OutOfRange("node out of range");
  }
  // SmallestCluster scans levels itself, so degradation does not apply;
  // the admission check is for shedding only.
  const AdmissionDecision decision =
      admission_.Admit(view->DefaultLevel(), *view, queue_.Depth(), query);
  if (decision.action == AdmissionDecision::Action::kShed) {
    return decision.status;
  }
  obs::MetricsRegistry& registry = index_->metrics();
  registry.Record(m_.query_staleness_us, view->AgeSeconds() * 1e6);
  const Clock::time_point start = Clock::now();
  std::vector<NodeId> out = view->SmallestCluster(node, min_size, level_out);
  const double micros = MicrosSince(start);
  registry.Record(m_.query_us, micros);
  admission_.RecordLatency(micros * 1e-6);
  return out;
}

Status AncServer::writer_status() const {
  std::lock_guard<std::mutex> lock(writer_status_mutex_);
  return writer_status_;
}

}  // namespace anc::serve
