#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "store/store.h"
#include "tier/tiered_store.h"

namespace anc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

double MicrosSince(Clock::time_point t) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t).count();
}

}  // namespace

AncServer::AncServer(AncIndex* index, ServeOptions options)
    : index_(index),
      options_(options),
      queue_(options.ingest, &index->metrics()),
      admission_(options.admission, &index->metrics()) {
  ANC_CHECK(index_ != nullptr, "AncServer requires an index");
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.snapshot_every_activations == 0) {
    options_.snapshot_every_activations = 1;
  }
  obs::MetricsRegistry& registry = index_->metrics();
  m_.epochs = registry.Counter("anc.serve.epochs");
  m_.applied = registry.Counter("anc.serve.applied");
  m_.apply_errors = registry.Counter("anc.serve.apply_errors");
  m_.batches = registry.Counter("anc.serve.batches");
  m_.batch_size = registry.Histogram("anc.serve.batch_size");
  m_.snapshot_build_us = registry.Histogram("anc.serve.snapshot_build_us");
  m_.query_us = registry.Histogram("anc.serve.query_us");
  m_.query_staleness_us = registry.Histogram("anc.serve.query_staleness_us");
  m_.watermark_seq = registry.Gauge("anc.serve.watermark_seq");
  m_.publish_lag = registry.Gauge("anc.serve.publish_lag_activations");
  m_.wal_errors = registry.Counter("anc.serve.wal_errors");
  m_.load_lines = registry.Counter("anc.serve.load_lines");
  m_.load_skipped = registry.Counter("anc.serve.load_skipped");
}

AncServer::~AncServer() { Stop(); }

Status AncServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  if (stop_requested_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "server already stopped; create a new AncServer to serve again");
  }
  if (options_.durability != DurabilityPolicy::kNone) {
    if (options_.store == nullptr) {
      return Status::FailedPrecondition(
          "durability policy requires ServeOptions::store");
    }
    store_ = options_.store;
    // Seed from the store's current durable mark (the checkpoint base) and
    // route every fsync-advance back into the durable watermark.
    const store::Mark durable = store_->durable();
    {
      util::MutexLock lock(durable_mutex_);
      durable_ = Watermark{durable.seq, durable.time};
    }
    store_->SetDurableCallback(
        [this](store::Mark mark) { OnDurable(mark.seq, mark.time); });
  }
  writer_done_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // Epoch 1: readers always have a view, even before the first activation.
  Publish(Watermark{0, 0.0});
  writer_ = std::thread(&AncServer::WriterLoop, this);
  return Status::OK();
}

void AncServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_requested_.store(true, std::memory_order_release);
  queue_.Close();
  if (writer_.joinable()) writer_.join();
  if (store_ != nullptr) {
    // Detach the durable callback; SetDurableCallback serializes with any
    // in-flight invocation, so nothing touches this server afterwards.
    store_->SetDurableCallback(nullptr);
  }
  // Wake waiters stranded on tickets that will never resolve.
  watermark_cv_.NotifyAll();
  durable_cv_.NotifyAll();
  checkpoint_cv_.NotifyAll();
  quiesce_cv_.NotifyAll();
}

void AncServer::WriterLoop() {
  std::vector<Activation> batch;
  batch.reserve(options_.max_batch);
  std::vector<IngestQueue::Popped> info;
  // Distinct trace ids drained but not yet covered by a published view; a
  // "serve.publish" span is emitted for each at the next publish. Sized to
  // hold a full drain batch of distinct traces (publish follows at most a
  // few batches behind); beyond the cap, excess traces simply miss their
  // publish span.
  const size_t max_pending_publish_traces =
      std::max<size_t>(4 * options_.max_batch, 128);
  std::vector<uint64_t> pending_publish_traces;
  uint64_t applied_since_publish = 0;
  uint64_t applied_since_checkpoint = 0;
  uint64_t resolved_seq = 0;
  uint64_t published_seq = 0;
  double last_applied_time = 0.0;
  Clock::time_point last_publish = Clock::now();

  const auto emit_span = [&](obs::TraceSink* sink, const char* name,
                             Clock::time_point start, double dur_us,
                             int depth, uint64_t trace_id) {
    obs::SpanEvent span;
    span.name = name;
    span.ts_us = sink->TsMicros(start);
    span.dur_us = dur_us;
    span.depth = depth;
    span.trace_id = trace_id;
    span.shard = options_.shard_ordinal;
    sink->EmitSpan(span);
  };

  const auto publish = [&] {
    obs::TraceSink* sink =
        obs::kMetricsEnabled ? index_->metrics().trace_sink() : nullptr;
    const Clock::time_point start = Clock::now();
    if (sink != nullptr) obs::TraceSink::EnterSpan(sink->uid());
    Publish(Watermark{resolved_seq, last_applied_time});
    if (sink != nullptr) {
      const int depth = obs::TraceSink::ExitSpan(sink->uid());
      const double dur_us = MicrosSince(start);
      if (pending_publish_traces.empty()) {
        emit_span(sink, "serve.publish", start, dur_us, depth, 0);
      } else {
        for (uint64_t trace_id : pending_publish_traces) {
          emit_span(sink, "serve.publish", start, dur_us, depth, trace_id);
        }
      }
    }
    pending_publish_traces.clear();
    published_seq = resolved_seq;
    applied_since_publish = 0;
    last_publish = Clock::now();
  };

  while (true) {
    obs::TraceSink* sink =
        obs::kMetricsEnabled ? index_->metrics().trace_sink() : nullptr;
    batch.clear();
    info.clear();
    const size_t popped =
        queue_.PopBatch(&batch, options_.max_batch, options_.idle_wait,
                        &resolved_seq, sink != nullptr ? &info : nullptr);
    if (popped == 0) {
      if (stop_requested_.load(std::memory_order_acquire) &&
          queue_.Depth() == 0) {
        break;
      }
      // Idle wakeup: publish pending state (applies, or tickets resolved
      // by drop-oldest eviction) once the staleness budget is spent.
      if ((applied_since_publish > 0 || resolved_seq > published_seq) &&
          SecondsSince(last_publish) >= options_.snapshot_max_age_s) {
        publish();
      }
      if (store_ != nullptr &&
          checkpoint_requested_.load(std::memory_order_acquire)) {
        ServiceCheckpoint(resolved_seq, last_applied_time);
        applied_since_checkpoint = 0;
      }
      if (quiesce_requested_.load(std::memory_order_acquire)) {
        ServiceQuiesced(resolved_seq, last_applied_time);
      }
      // Idle wakeups are quiescent points: let the tier demote pages that
      // decayed under the budget and service any finished compaction. A
      // spill failure freezes tiering but never stops live serving.
      if (options_.tier != nullptr) {
        const Status tiered = options_.tier->Maintain();
        if (!tiered.ok()) RecordStoreError(tiered);
      }
      continue;
    }

    if (store_ != nullptr) {
      // Write-ahead: the popped batch is a contiguous ticket run (drops
      // only evict at the queue head), logged before any apply mutates
      // the index. A store failure freezes the durable watermark but
      // never stops live serving.
      const uint64_t first_seq = resolved_seq - popped + 1;
      Status logged = store_->Append(batch, first_seq);
      if (logged.ok() &&
          options_.durability == DurabilityPolicy::kGroupCommit) {
        logged = store_->Sync();
      }
      if (!logged.ok()) RecordStoreError(logged);
    }

    if (sink != nullptr) {
      // One queue-wait span per distinct trace in the drained batch (the
      // enqueue-to-drain latency), and remember the trace for its publish
      // span. Entries from one traced batch are adjacent in the queue, so
      // adjacent dedup is enough.
      const Clock::time_point drained = Clock::now();
      uint64_t last_trace = 0;
      for (const IngestQueue::Popped& p : info) {
        if (p.trace.trace_id == 0 || p.trace.trace_id == last_trace) continue;
        last_trace = p.trace.trace_id;
        emit_span(sink, "ingest.queue_wait", p.enqueued_at,
                  std::chrono::duration<double, std::micro>(drained -
                                                            p.enqueued_at)
                      .count(),
                  /*depth=*/0, p.trace.trace_id);
        if (pending_publish_traces.size() < max_pending_publish_traces &&
            std::find(pending_publish_traces.begin(),
                      pending_publish_traces.end(),
                      p.trace.trace_id) == pending_publish_traces.end()) {
          pending_publish_traces.push_back(p.trace.trace_id);
        }
      }
    }

    const Clock::time_point apply_start = Clock::now();
    if (sink != nullptr) obs::TraceSink::EnterSpan(sink->uid());
    for (const Activation& activation : batch) {
      const Status status = index_->Apply(activation);
      if (status.ok()) {
        index_->metrics().Add(m_.applied);
        last_applied_time = std::max(last_applied_time, activation.time);
      } else {
        index_->metrics().Add(m_.apply_errors);
        util::MutexLock lock(writer_status_mutex_);
        if (writer_status_.ok()) writer_status_ = status;
      }
    }
    if (sink != nullptr) {
      // One batch apply interval, attributed to every trace it covered
      // (the per-activation "apply" spans nest inside, untraced).
      const int depth = obs::TraceSink::ExitSpan(sink->uid());
      const double dur_us = MicrosSince(apply_start);
      uint64_t last_trace = 0;
      for (const IngestQueue::Popped& p : info) {
        if (p.trace.trace_id == 0 || p.trace.trace_id == last_trace) continue;
        last_trace = p.trace.trace_id;
        emit_span(sink, "serve.apply", apply_start, dur_us, depth,
                  p.trace.trace_id);
      }
    }
    applied_since_publish += popped;
    applied_since_checkpoint += popped;
    index_->metrics().Add(m_.batches);
    index_->metrics().Record(m_.batch_size, static_cast<double>(popped));

    if (applied_since_publish >= options_.snapshot_every_activations ||
        SecondsSince(last_publish) >= options_.snapshot_max_age_s) {
      publish();
    }
    if (store_ != nullptr &&
        ((options_.checkpoint_every_applied > 0 &&
          applied_since_checkpoint >= options_.checkpoint_every_applied) ||
         checkpoint_requested_.load(std::memory_order_acquire))) {
      // Between batches the index is quiescent and resolved_seq describes
      // exactly what has been applied — the only safe checkpoint mark.
      ServiceCheckpoint(resolved_seq, last_applied_time);
      applied_since_checkpoint = 0;
    }
    if (quiesce_requested_.load(std::memory_order_acquire)) {
      ServiceQuiesced(resolved_seq, last_applied_time);
    }
    // Post-batch quiescent point: demotion/compaction never overlaps an
    // Apply, so the tier can move pages without synchronizing with reads
    // of the live index (docs/storage_tiers.md).
    if (options_.tier != nullptr) {
      const Status tiered = options_.tier->Maintain();
      if (!tiered.ok()) RecordStoreError(tiered);
    }
  }
  // Final quiescent publish: the watermark lands on everything resolved.
  publish();
  if (store_ != nullptr) {
    if (checkpoint_requested_.load(std::memory_order_acquire)) {
      ServiceCheckpoint(resolved_seq, last_applied_time);
    }
    // Everything the writer logged becomes durable before waiters are
    // released: a clean Stop() never loses accepted work.
    const Status synced = store_->Sync();
    if (!synced.ok()) RecordStoreError(synced);
  }
  writer_done_.store(true, std::memory_order_release);
  watermark_cv_.NotifyAll();
  durable_cv_.NotifyAll();
  checkpoint_cv_.NotifyAll();
  // Callbacks still queued never run (the server is stopping); their
  // waiters observe writer_done_ and fail Unavailable.
  quiesce_cv_.NotifyAll();
}

void AncServer::ServiceCheckpoint(uint64_t seq, double time) {
  checkpoint_requested_.store(false, std::memory_order_release);
  const Status status =
      store_->WriteCheckpoint(*index_, store::Mark{seq, time});
  if (!status.ok()) RecordStoreError(status);
  if (status.ok() && options_.tier != nullptr) {
    // The manifest now points at the new head: its segment refs are
    // durable roots, and segments referenced only by the old head can go.
    options_.tier->OnCheckpointInstalled();
  }
  {
    util::MutexLock lock(checkpoint_mutex_);
    ++checkpoints_done_;
    last_checkpoint_status_ = status;
  }
  checkpoint_cv_.NotifyAll();
}

void AncServer::ServiceQuiesced(uint64_t seq, double time) {
  quiesce_requested_.store(false, std::memory_order_release);
  QuiescedContext context;
  context.watermark = Watermark{seq, time};
  context.republish = [this, seq, time] { Publish(Watermark{seq, time}); };
  while (true) {
    QuiesceTicket ticket;
    bool run = false;
    {
      util::MutexLock lock(quiesce_mutex_);
      if (quiesce_callbacks_.empty()) break;
      ticket = std::move(quiesce_callbacks_.front());
      quiesce_callbacks_.erase(quiesce_callbacks_.begin());
      // Decide run-vs-skip under the mutex: cancellation is also decided
      // under it, so once quiesce_running_ names this ticket the owner can
      // no longer cancel — a cancelled callback must never mutate state
      // its caller believes was left untouched.
      run = !ticket.cancelled->load(std::memory_order_acquire);
      if (run) quiesce_running_ = ticket.id;
    }
    // Run outside quiesce_mutex_: the callback may block (migration bulk
    // apply) and may take locks of its own; only the FIFO is guarded.
    if (run) ticket.fn(context);
    {
      util::MutexLock lock(quiesce_mutex_);
      quiesce_running_ = 0;
      quiesce_done_ = ticket.id;
    }
    quiesce_cv_.NotifyAll();
  }
}

Status AncServer::RunQuiesced(std::function<void(const QuiescedContext&)> fn,
                              std::chrono::milliseconds timeout) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server not running");
  }
  QuiesceTicket ticket;
  ticket.fn = std::move(fn);
  ticket.cancelled = std::make_shared<std::atomic<bool>>(false);
  std::shared_ptr<std::atomic<bool>> cancelled = ticket.cancelled;
  uint64_t target = 0;
  {
    util::MutexLock lock(quiesce_mutex_);
    ticket.id = ++quiesce_issued_;
    target = ticket.id;
    quiesce_callbacks_.push_back(std::move(ticket));
  }
  quiesce_requested_.store(true, std::memory_order_release);
  util::MutexLock lock(quiesce_mutex_);
  quiesce_cv_.WaitFor(quiesce_mutex_, timeout, [&] {
    quiesce_mutex_.AssertHeld();
    return quiesce_done_ >= target ||
           writer_done_.load(std::memory_order_acquire);
  });
  if (quiesce_done_ >= target) return Status::OK();
  if (quiesce_running_ == target) {
    // The writer picked the callback up before the timeout fired: too late
    // to cancel, so wait out the execution — the result must truthfully
    // say whether the callback ran.
    quiesce_cv_.WaitFor(quiesce_mutex_, timeout, [&] {
      quiesce_mutex_.AssertHeld();
      return quiesce_done_ >= target;
    });
    if (quiesce_done_ >= target) return Status::OK();
    return Status::Unavailable("quiesced callback still executing");
  }
  // Never ran (stop or timeout): cancel — decided under quiesce_mutex_, so
  // a later quiescent point can no longer pick the callback up.
  cancelled->store(true, std::memory_order_release);
  return Status::Unavailable(
      writer_done_.load(std::memory_order_acquire)
          ? "server stopped before the quiesced callback ran"
          : "timed out awaiting a writer quiescent point");
}

void AncServer::Publish(Watermark watermark) {
#ifdef ANC_CHECK_INVARIANTS
  // Quiescent-point validation: a snapshot is never built from an index
  // state that fails the Lemma 4-13 validators (docs/serving.md).
  const Status valid = index_->ValidateInvariants(/*deep=*/false);
  ANC_CHECK(valid.ok(), valid.ToString().c_str());
#endif
  const Clock::time_point build_start = Clock::now();
  auto view = std::make_shared<const ClusterView>(
      index_->graph(), index_->ExportClusterState(), ++epoch_, watermark);
  {
    util::MutexLock lock(view_mutex_);
    view_ = std::move(view);
  }
  {
    util::MutexLock lock(watermark_mutex_);
    published_ = watermark;
  }
  watermark_cv_.NotifyAll();
  obs::MetricsRegistry& registry = index_->metrics();
  registry.Add(m_.epochs);
  registry.Record(m_.snapshot_build_us, MicrosSince(build_start));
  registry.Set(m_.watermark_seq, static_cast<int64_t>(watermark.seq));
  registry.Set(m_.publish_lag,
               static_cast<int64_t>(queue_.accepted() - watermark.seq));
}

Result<uint64_t> AncServer::Submit(const Activation& activation,
                                   obs::TraceContext trace) {
  if (activation.edge >= index_->graph().NumEdges()) {
    return Status::InvalidArgument("activation references edge " +
                                   std::to_string(activation.edge) +
                                   " outside the graph");
  }
  if (obs::kMetricsEnabled && !trace.active() &&
      index_->metrics().trace_sink() != nullptr) {
    trace = obs::TraceContext::NewTrace();
  }
  return queue_.Push(activation, trace);
}

Result<size_t> AncServer::SubmitBatch(const Activation* data, size_t count,
                                      uint64_t* last_seq,
                                      const obs::TraceContext* traces) {
  for (size_t i = 0; i < count; ++i) {
    if (data[i].edge >= index_->graph().NumEdges()) {
      return Status::InvalidArgument("activation references edge " +
                                     std::to_string(data[i].edge) +
                                     " outside the graph");
    }
  }
  return queue_.PushBatch(data, count, last_seq, traces);
}

Status AncServer::SubmitStream(const ActivationStream& stream,
                               uint64_t* last_seq) {
  for (const Activation& activation : stream) {
    Result<uint64_t> ticket = Submit(activation);
    if (!ticket.ok()) return ticket.status();
    if (last_seq != nullptr) *last_seq = *ticket;
  }
  return Status::OK();
}

Status AncServer::Flush(std::chrono::milliseconds timeout) {
  return AwaitSeq(queue_.accepted(), timeout);
}

Watermark AncServer::watermark() const {
  util::MutexLock lock(watermark_mutex_);
  return published_;
}

Status AncServer::AwaitSeq(uint64_t seq, std::chrono::milliseconds timeout) {
  util::MutexLock lock(watermark_mutex_);
  if (published_.seq >= seq) return Status::OK();
  const bool reached = watermark_cv_.WaitFor(watermark_mutex_, timeout, [&] {
    watermark_mutex_.AssertHeld();
    return published_.seq >= seq ||
           writer_done_.load(std::memory_order_acquire);
  });
  if (published_.seq >= seq) return Status::OK();
  return Status::Unavailable(
      reached ? "server stopped before ticket " + std::to_string(seq) +
                    " resolved"
              : "timed out awaiting ticket " + std::to_string(seq));
}

Status AncServer::AwaitTime(double t, std::chrono::milliseconds timeout) {
  util::MutexLock lock(watermark_mutex_);
  if (published_.time >= t) return Status::OK();
  const bool reached = watermark_cv_.WaitFor(watermark_mutex_, timeout, [&] {
    watermark_mutex_.AssertHeld();
    return published_.time >= t ||
           writer_done_.load(std::memory_order_acquire);
  });
  if (published_.time >= t) return Status::OK();
  return Status::Unavailable(
      reached ? "server stopped before watermark time " + std::to_string(t)
              : "timed out awaiting watermark time " + std::to_string(t));
}

Watermark AncServer::durable_watermark() const {
  util::MutexLock lock(durable_mutex_);
  return durable_;
}

void AncServer::OnDurable(uint64_t seq, double time) {
  {
    util::MutexLock lock(durable_mutex_);
    if (seq > durable_.seq) durable_.seq = seq;
    if (time > durable_.time) durable_.time = time;
  }
  durable_cv_.NotifyAll();
}

void AncServer::RecordStoreError(const Status& status) {
  index_->metrics().Add(m_.wal_errors);
  util::MutexLock lock(store_status_mutex_);
  if (store_status_.ok()) store_status_ = status;
}

Status AncServer::store_status() const {
  util::MutexLock lock(store_status_mutex_);
  return store_status_;
}

Status AncServer::AwaitDurableSeq(uint64_t seq,
                                  std::chrono::milliseconds timeout) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "no durability configured (DurabilityPolicy::kNone)");
  }
  util::MutexLock lock(durable_mutex_);
  if (durable_.seq >= seq) return Status::OK();
  durable_cv_.WaitFor(durable_mutex_, timeout, [&] {
    durable_mutex_.AssertHeld();
    return durable_.seq >= seq;
  });
  if (durable_.seq >= seq) return Status::OK();
  return Status::Unavailable("timed out awaiting durability of ticket " +
                             std::to_string(seq));
}

Status AncServer::FlushDurable(std::chrono::milliseconds timeout) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "no durability configured (DurabilityPolicy::kNone)");
  }
  const uint64_t target = queue_.accepted();
  const Clock::time_point deadline = Clock::now() + timeout;
  // Applied implies appended (the writer logs before applying), so once
  // the live flush resolves the only gap left is the covering fsync.
  ANC_RETURN_NOT_OK(AwaitSeq(target, timeout));
  const Status synced = store_->Sync();
  if (!synced.ok()) {
    RecordStoreError(synced);
    return synced;
  }
  const auto remaining = std::max(
      std::chrono::milliseconds(1),
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                            Clock::now()));
  return AwaitDurableSeq(target, remaining);
}

Status AncServer::RequestCheckpoint(std::chrono::milliseconds timeout) {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "no durability configured (DurabilityPolicy::kNone)");
  }
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "server not running; checkpoint through the store directly");
  }
  util::MutexLock lock(checkpoint_mutex_);
  const uint64_t target = checkpoints_done_ + 1;
  checkpoint_requested_.store(true, std::memory_order_release);
  checkpoint_cv_.WaitFor(checkpoint_mutex_, timeout, [&] {
    checkpoint_mutex_.AssertHeld();
    return checkpoints_done_ >= target ||
           writer_done_.load(std::memory_order_acquire);
  });
  if (checkpoints_done_ >= target) return last_checkpoint_status_;
  return Status::Unavailable(
      writer_done_.load(std::memory_order_acquire)
          ? "server stopped before the checkpoint was taken"
          : "timed out awaiting checkpoint");
}

void AncServer::RecordLoadReport(const StreamLoadReport& report) {
  obs::MetricsRegistry& registry = index_->metrics();
  registry.Add(m_.load_lines, report.data_lines);
  registry.Add(m_.load_skipped, report.skipped);
}

std::shared_ptr<const ClusterView> AncServer::View() const {
  util::MutexLock lock(view_mutex_);
  return view_;
}

Result<Clustering> AncServer::Clusters(uint32_t level,
                                       const QueryOptions& query) {
  std::shared_ptr<const ClusterView> view = View();
  if (view == nullptr) {
    return Status::FailedPrecondition("server not started");
  }
  if (level < 1 || level > view->num_levels()) {
    return Status::OutOfRange("level must be in [1, " +
                              std::to_string(view->num_levels()) + "]");
  }
  const AdmissionDecision decision =
      admission_.Admit(level, *view, queue_.Depth(), query);
  if (decision.action == AdmissionDecision::Action::kShed) {
    return decision.status;
  }
  obs::MetricsRegistry& registry = index_->metrics();
  registry.Record(m_.query_staleness_us, view->AgeSeconds() * 1e6);
  const Clock::time_point start = Clock::now();
  Clustering out = view->Clusters(decision.level);
  const double micros = MicrosSince(start);
  registry.Record(m_.query_us, micros);
  admission_.RecordLatency(micros * 1e-6);
  return out;
}

Result<Clustering> AncServer::Clusters() {
  std::shared_ptr<const ClusterView> view = View();
  if (view == nullptr) {
    return Status::FailedPrecondition("server not started");
  }
  return Clusters(view->DefaultLevel());
}

Result<std::vector<NodeId>> AncServer::LocalCluster(NodeId node,
                                                    uint32_t level,
                                                    const QueryOptions& query) {
  std::shared_ptr<const ClusterView> view = View();
  if (view == nullptr) {
    return Status::FailedPrecondition("server not started");
  }
  if (node >= view->graph().NumNodes()) {
    return Status::OutOfRange("node out of range");
  }
  if (level < 1 || level > view->num_levels()) {
    return Status::OutOfRange("level must be in [1, " +
                              std::to_string(view->num_levels()) + "]");
  }
  const AdmissionDecision decision =
      admission_.Admit(level, *view, queue_.Depth(), query);
  if (decision.action == AdmissionDecision::Action::kShed) {
    return decision.status;
  }
  obs::MetricsRegistry& registry = index_->metrics();
  registry.Record(m_.query_staleness_us, view->AgeSeconds() * 1e6);
  const Clock::time_point start = Clock::now();
  std::vector<NodeId> out = view->LocalCluster(node, decision.level);
  const double micros = MicrosSince(start);
  registry.Record(m_.query_us, micros);
  admission_.RecordLatency(micros * 1e-6);
  return out;
}

Result<std::vector<NodeId>> AncServer::SmallestCluster(
    NodeId node, uint32_t min_size, uint32_t* level_out,
    const QueryOptions& query) {
  std::shared_ptr<const ClusterView> view = View();
  if (view == nullptr) {
    return Status::FailedPrecondition("server not started");
  }
  if (node >= view->graph().NumNodes()) {
    return Status::OutOfRange("node out of range");
  }
  // SmallestCluster scans levels itself, so degradation does not apply;
  // the admission check is for shedding only.
  const AdmissionDecision decision =
      admission_.Admit(view->DefaultLevel(), *view, queue_.Depth(), query);
  if (decision.action == AdmissionDecision::Action::kShed) {
    return decision.status;
  }
  obs::MetricsRegistry& registry = index_->metrics();
  registry.Record(m_.query_staleness_us, view->AgeSeconds() * 1e6);
  const Clock::time_point start = Clock::now();
  std::vector<NodeId> out = view->SmallestCluster(node, min_size, level_out);
  const double micros = MicrosSince(start);
  registry.Record(m_.query_us, micros);
  admission_.RecordLatency(micros * 1e-6);
  return out;
}

Status AncServer::writer_status() const {
  util::MutexLock lock(writer_status_mutex_);
  return writer_status_;
}

}  // namespace anc::serve
