#ifndef ANC_SERVE_INGEST_QUEUE_H_
#define ANC_SERVE_INGEST_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "activation/activeness.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/sync.h"

namespace anc::serve {

/// What Push does when the queue is at capacity.
enum class BackpressurePolicy {
  kBlock,      ///< block the producer until the writer drains a slot
  kDropOldest, ///< evict the oldest unapplied activation to make room
  kReject,     ///< bounce the push with Status::Unavailable
};

struct IngestOptions {
  size_t capacity = 4096;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Activation timestamps must be non-decreasing across *all* producers
  /// (the index's stream contract). With multiple wall-clock producers,
  /// small inversions at the ingest boundary are expected; true clamps an
  /// out-of-order timestamp up to the last accepted one instead of
  /// rejecting the push with InvalidArgument.
  bool clamp_out_of_order = false;
};

/// Bounded multi-producer single-consumer activation queue with explicit
/// backpressure and durability tickets (docs/serving.md).
///
/// Producers call Push from any thread; each accepted activation is
/// assigned a monotonically increasing *ticket* (1-based). The single
/// writer drains with PopBatch, which also reports the highest ticket
/// resolved — i.e. removed from the queue, by being handed to the writer
/// or (under kDropOldest) evicted. Because the queue is FIFO and eviction
/// happens at the head, tickets resolve in order, so "resolved up to s"
/// means every ticket <= s has left the queue.
class IngestQueue {
 public:
  /// `registry` (optional) receives anc.serve.ingest_* metrics; it must
  /// outlive the queue.
  explicit IngestQueue(IngestOptions options,
                       obs::MetricsRegistry* registry = nullptr);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Producer side (any thread): enqueues one activation and returns its
  /// ticket. `trace` (optional) rides along to PopBatch, correlating the
  /// queue-wait/apply/publish spans of a traced request
  /// (docs/observability.md). Errors:
  ///  - FailedPrecondition: the queue is closed.
  ///  - InvalidArgument: timestamp below the last accepted one (and
  ///    clamp_out_of_order is off).
  ///  - Unavailable: the queue is full under kReject.
  /// Under kBlock a full queue blocks until space frees or Close().
  Result<uint64_t> Push(Activation activation, obs::TraceContext trace = {});

  /// Batched producer fast path: enqueues `count` activations under one
  /// lock acquisition with one consumer wakeup — per-push mutex and futex
  /// costs dominate fan-out producers (shard routers) that otherwise beat
  /// the queue with many tiny pushes. Per-entry semantics match Push:
  /// regressed timestamps are clamped or (clamp off) rejected and skipped,
  /// kReject bounces entries that find the queue full, kBlock waits for
  /// space inside the batch. Returns the number accepted; *last_seq (when
  /// non-null) receives the last ticket issued (untouched if none).
  /// Fails FailedPrecondition only when the queue was closed before any
  /// entry was accepted; a mid-batch Close returns the accepted prefix.
  /// `traces` (optional) is an array of `count` per-entry trace contexts
  /// aligned with `data` (fan-out batches mix requests, so one context per
  /// batch would mis-attribute spans).
  Result<size_t> PushBatch(const Activation* data, size_t count,
                           uint64_t* last_seq = nullptr,
                           const obs::TraceContext* traces = nullptr);

  /// Per-entry metadata PopBatch hands to the writer alongside the
  /// activations: the producer's trace context and the enqueue time (the
  /// writer emits queue-wait spans from it, with the shard ordinal only it
  /// knows).
  struct Popped {
    obs::TraceContext trace;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  /// Consumer side (single thread): moves up to `max_batch` activations
  /// into *out (appended), waiting up to `wait` for the first one. Returns
  /// the number popped; *resolved_seq (when non-null) receives the highest
  /// ticket resolved so far (popped or dropped), which only grows. *info
  /// (when non-null) receives one Popped per appended activation.
  size_t PopBatch(std::vector<Activation>* out, size_t max_batch,
                  std::chrono::microseconds wait,
                  uint64_t* resolved_seq = nullptr,
                  std::vector<Popped>* info = nullptr);

  /// Closes the queue: subsequent pushes fail FailedPrecondition, blocked
  /// producers wake with that status, and PopBatch keeps draining what
  /// remains (then returns 0 immediately).
  void Close();

  bool closed() const;
  size_t Depth() const;
  uint64_t accepted() const;  ///< tickets issued
  uint64_t dropped() const;   ///< kDropOldest evictions
  uint64_t rejected() const;  ///< kReject bounces + out-of-order rejections
  double last_accepted_time() const;

  /// Deepest the queue has ever been (also the
  /// anc.serve.ingest_high_watermark gauge) — sizes the capacity headroom
  /// a shed decision had to work with.
  size_t high_watermark() const;

  /// Age of the oldest queued entry (0 when empty) — the ingest-side
  /// staleness bound: everything published lags live time by at least
  /// this much. Gauge anc.serve.ingest_oldest_age_us tracks it at the
  /// last push/pop.
  double OldestAgeSeconds() const;

 private:
  struct Entry {
    Activation activation;
    uint64_t seq;
    std::chrono::steady_clock::time_point enqueued_at;
    obs::TraceContext trace;
  };

  /// Refreshes the oldest-entry-age gauge from the current head (0 when
  /// empty).
  void SetOldestGaugeLocked(std::chrono::steady_clock::time_point now)
      ANC_REQUIRES(mutex_);

  IngestOptions options_;
  mutable util::Mutex mutex_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::deque<Entry> entries_ ANC_GUARDED_BY(mutex_);
  bool closed_ ANC_GUARDED_BY(mutex_) = false;
  uint64_t next_seq_ ANC_GUARDED_BY(mutex_) = 1;
  uint64_t resolved_seq_ ANC_GUARDED_BY(mutex_) = 0;
  uint64_t accepted_ ANC_GUARDED_BY(mutex_) = 0;
  uint64_t dropped_ ANC_GUARDED_BY(mutex_) = 0;
  uint64_t rejected_ ANC_GUARDED_BY(mutex_) = 0;
  double last_accepted_time_ ANC_GUARDED_BY(mutex_) = 0.0;
  size_t high_watermark_ ANC_GUARDED_BY(mutex_) = 0;

  obs::MetricsRegistry* metrics_;
  obs::CounterId accepted_id_;
  obs::CounterId dropped_id_;
  obs::CounterId rejected_id_;
  obs::GaugeId depth_id_;
  obs::GaugeId high_watermark_id_;
  obs::GaugeId oldest_age_us_id_;
  obs::HistogramId queue_wait_us_;
};

}  // namespace anc::serve

#endif  // ANC_SERVE_INGEST_QUEUE_H_
