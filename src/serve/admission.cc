#include "serve/admission.h"

#include <algorithm>
#include <string>

namespace anc::serve {

AdmissionController::AdmissionController(AdmissionOptions options,
                                         obs::MetricsRegistry* registry)
    : options_(options), metrics_(registry) {
  if (metrics_ != nullptr) {
    served_id_ = metrics_->Counter("anc.serve.admit_served");
    degraded_id_ = metrics_->Counter("anc.serve.admit_degraded");
    shed_id_ = metrics_->Counter("anc.serve.admit_shed");
    quota_rejections_id_ = metrics_->Counter("anc.net.quota_rejections");
  }
}

void AdmissionController::EvictTenantsLocked(
    std::chrono::steady_clock::time_point now, double burst) const {
  // A bucket idle for burst/rate seconds has refilled to a full burst, so
  // dropping it is lossless — a re-seen tenant starts with a full burst
  // either way. One pass drops them all, amortizing the scan across the
  // inserts that forced it; only when every bucket is still hot does the
  // least-recently-refilled one (the closest to full) go instead.
  const double full_after_s = burst / options_.tenant_quota_per_s;
  auto oldest = tenants_.end();
  for (auto it = tenants_.begin(); it != tenants_.end();) {
    const double idle =
        std::chrono::duration<double>(now - it->second.last_refill).count();
    if (idle >= full_after_s) {
      it = tenants_.erase(it);
    } else {
      if (oldest == tenants_.end() ||
          it->second.last_refill < oldest->second.last_refill) {
        oldest = it;
      }
      ++it;
    }
  }
  if (tenants_.size() >= options_.tenant_quota_max_tenants &&
      oldest != tenants_.end()) {
    tenants_.erase(oldest);
  }
}

Status AdmissionController::AdmitTenant(uint64_t tenant_id) const {
  if (options_.tenant_quota_per_s <= 0.0) return Status::OK();
  const double burst = options_.tenant_quota_burst > 0.0
                           ? options_.tenant_quota_burst
                           : options_.tenant_quota_per_s;
  const auto now = std::chrono::steady_clock::now();
  bool admitted = false;
  {
    util::MutexLock lock(tenant_mutex_);
    if (tenants_.size() >= options_.tenant_quota_max_tenants &&
        tenants_.find(tenant_id) == tenants_.end()) {
      EvictTenantsLocked(now, burst);
    }
    auto [it, inserted] = tenants_.try_emplace(tenant_id);
    TokenBucket& bucket = it->second;
    if (inserted) {
      bucket.tokens = burst;  // a fresh tenant starts with a full burst
      bucket.last_refill = now;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - bucket.last_refill).count();
      bucket.tokens = std::min(
          burst, bucket.tokens + elapsed * options_.tenant_quota_per_s);
      bucket.last_refill = now;
    }
    if (bucket.tokens >= 1.0) {
      bucket.tokens -= 1.0;
      admitted = true;
    }
  }
  if (admitted) return Status::OK();
  quota_rejections_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->Add(quota_rejections_id_);
  return Status::Unavailable(
      "tenant " + std::to_string(tenant_id) + " over quota (" +
      std::to_string(options_.tenant_quota_per_s) + " req/s, burst " +
      std::to_string(burst) + ")");
}

AdmissionDecision AdmissionController::Admit(uint32_t requested_level,
                                             const ClusterView& view,
                                             size_t ingest_depth,
                                             const QueryOptions& query) const {
  AdmissionDecision decision;
  decision.level = requested_level;

  const double age = view.AgeSeconds();
  if (ingest_depth >= options_.shed_queue_depth) {
    decision.action = AdmissionDecision::Action::kShed;
    decision.status = Status::Unavailable(
        "shed: ingest backlog at " + std::to_string(ingest_depth) +
        " (threshold " + std::to_string(options_.shed_queue_depth) + ")");
  } else if (age >= options_.shed_staleness_s) {
    decision.action = AdmissionDecision::Action::kShed;
    decision.status = Status::Unavailable(
        "shed: published view is " + std::to_string(age) +
        "s stale (threshold " + std::to_string(options_.shed_staleness_s) +
        "s)");
  } else if (LatencyEstimate() > query.deadline_s) {
    decision.action = AdmissionDecision::Action::kShed;
    decision.status = Status::Unavailable(
        "shed: latency estimate " + std::to_string(LatencyEstimate()) +
        "s exceeds the " + std::to_string(query.deadline_s) + "s deadline");
  } else if (age >= options_.degrade_staleness_s) {
    decision.action = AdmissionDecision::Action::kDegrade;
    decision.level = requested_level > options_.degrade_levels
                         ? requested_level - options_.degrade_levels
                         : 1;
  }

  if (metrics_ != nullptr) {
    switch (decision.action) {
      case AdmissionDecision::Action::kServe:
        metrics_->Add(served_id_);
        break;
      case AdmissionDecision::Action::kDegrade:
        metrics_->Add(degraded_id_);
        break;
      case AdmissionDecision::Action::kShed:
        metrics_->Add(shed_id_);
        break;
    }
  }
  return decision;
}

void AdmissionController::RecordLatency(double seconds) const {
  double prev = latency_ewma_.load(std::memory_order_relaxed);
  double next;
  do {
    next = prev == 0.0
               ? seconds
               : prev + options_.latency_ewma_alpha * (seconds - prev);
  } while (!latency_ewma_.compare_exchange_weak(prev, next,
                                                std::memory_order_relaxed));
}

}  // namespace anc::serve
