#ifndef ANC_SERVE_HARNESS_H_
#define ANC_SERVE_HARNESS_H_

#include <cstdint>
#include <string>

#include "activation/activeness.h"
#include "serve/server.h"

namespace anc::serve {

/// Load-generator configuration for ServeHarness.
struct HarnessOptions {
  uint32_t num_producers = 2;
  uint32_t num_query_threads = 4;
  /// Each query thread issues local-cluster queries on random nodes and,
  /// every `full_clusters_every` queries, one full Clusters() sweep
  /// (0 disables the full sweeps).
  uint32_t full_clusters_every = 64;
  uint64_t rng_seed = 1;
  QueryOptions query;
};

/// One harness run's scorecard (bench_serve_throughput and
/// scripts/bench_smoke.sh report these).
struct HarnessReport {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t dropped = 0;
  uint64_t rejected = 0;
  /// RunFile only: lines the stream loader skipped (malformed fields,
  /// non-edges, regressed timestamps) and the first one's "path:line:
  /// reason". Skips are also folded into the serve stats
  /// (anc.serve.load_skipped) so they never vanish silently.
  uint64_t load_skipped = 0;
  std::string load_first_error;
  double ingest_seconds = 0.0;
  double ingest_per_sec = 0.0;

  uint64_t queries = 0;
  uint64_t shed = 0;
  double query_p50_us = 0.0;
  double query_p99_us = 0.0;

  /// Staleness observed by queries: accepted tickets minus the view's
  /// watermark ticket at query time (how many activations the answer is
  /// behind the ingest frontier).
  double mean_staleness_activations = 0.0;
  uint64_t max_staleness_activations = 0;

  uint64_t epochs = 0;

  std::string ToString() const;
};

/// Multi-threaded driver for an AncServer: N producer threads race to
/// submit a prepared activation stream while M query threads hammer the
/// snapshot read path; reports ingest throughput, query latency quantiles
/// and observed staleness. With more than one producer, configure the
/// server's ingest with clamp_out_of_order = true — producers dispatch
/// stream entries in order but race at the queue boundary.
class ServeHarness {
 public:
  /// `server` must be started and outlive the harness.
  ServeHarness(AncServer* server, HarnessOptions options);

  /// Drives the full stream through the server (blocking), then flushes.
  /// Query threads run for the whole ingest window. Reusable.
  HarnessReport Run(const ActivationStream& stream);

  /// Loads "u v t" lines from `path` (skipping bad lines), records the
  /// loader's report into the server stats, then runs the loaded stream.
  /// Fails only when the file itself is unreadable.
  Result<HarnessReport> RunFile(const Graph& g, const std::string& path);

 private:
  AncServer* server_;
  HarnessOptions options_;
};

}  // namespace anc::serve

#endif  // ANC_SERVE_HARNESS_H_
