#ifndef ANC_SERVE_HARNESS_H_
#define ANC_SERVE_HARNESS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "activation/activeness.h"
#include "serve/server.h"

namespace anc::serve {

/// Load-generator configuration for ServeHarness.
struct HarnessOptions {
  uint32_t num_producers = 2;
  uint32_t num_query_threads = 4;
  /// Each query thread issues local-cluster queries on random nodes and,
  /// every `full_clusters_every` queries, one full Clusters() sweep
  /// (0 disables the full sweeps).
  uint32_t full_clusters_every = 64;
  uint64_t rng_seed = 1;
  QueryOptions query;
};

/// One harness run's scorecard (bench_serve_throughput and
/// scripts/bench_smoke.sh report these).
struct HarnessReport {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t dropped = 0;
  uint64_t rejected = 0;
  /// RunFile only: lines the stream loader skipped (malformed fields,
  /// non-edges, regressed timestamps) and the first one's "path:line:
  /// reason". Skips are also folded into the serve stats
  /// (anc.serve.load_skipped) so they never vanish silently.
  uint64_t load_skipped = 0;
  std::string load_first_error;
  double ingest_seconds = 0.0;
  double ingest_per_sec = 0.0;

  uint64_t queries = 0;
  uint64_t shed = 0;
  double query_p50_us = 0.0;
  double query_p99_us = 0.0;

  /// Staleness observed by queries: the target's ingest frontier minus its
  /// published watermark at query time (how many activations the answer is
  /// behind the ingest frontier).
  double mean_staleness_activations = 0.0;
  uint64_t max_staleness_activations = 0;

  uint64_t epochs = 0;

  std::string ToString() const;
};

/// The routing seam between the harness and whatever it drives: a bundle
/// of callbacks any serving stack can satisfy — a single AncServer
/// (TargetFor), a shard::ShardedServer (ShardedServer::HarnessTarget), or
/// a test double. All callbacks except record_load_report are required and
/// must be thread-safe: producers call submit concurrently while query
/// threads poll the counters and issue queries.
struct HarnessTarget {
  std::function<Result<uint64_t>(const Activation&)> submit;
  std::function<Status(std::chrono::milliseconds)> flush;

  /// Ingest tallies for the report.
  std::function<uint64_t()> accepted;
  std::function<uint64_t()> dropped;
  std::function<uint64_t()> rejected;

  /// Staleness pair in one shared unit (e.g. resolved tickets): how far
  /// published answers lag the ingest frontier.
  std::function<uint64_t()> frontier;
  std::function<uint64_t()> view_seq;

  /// Snapshot publications over the target's lifetime.
  std::function<uint64_t()> epochs;

  /// Node-id domain the query threads draw from (0 disables queries).
  std::function<uint32_t()> num_nodes;

  /// Issue one full cluster sweep / one local-cluster query at the
  /// target's default granularity; return false when shed.
  std::function<bool(const QueryOptions&)> query_clusters;
  std::function<bool(NodeId, const QueryOptions&)> query_local;

  /// Optional: fold a stream loader's report into the target's stats.
  std::function<void(const StreamLoadReport&)> record_load_report;
};

/// The canonical single-server target.
HarnessTarget TargetFor(AncServer* server);

/// Multi-threaded load driver: N producer threads race to submit a
/// prepared activation stream into a HarnessTarget while M query threads
/// hammer its snapshot read path; reports ingest throughput, query latency
/// quantiles and observed staleness. With more than one producer,
/// configure the target's ingest with clamp_out_of_order = true —
/// producers dispatch stream entries in order but race at the queue
/// boundary.
class ServeHarness {
 public:
  /// Convenience: drives a single AncServer (must be started and outlive
  /// the harness).
  ServeHarness(AncServer* server, HarnessOptions options);

  /// Drives any target (e.g. a ShardedServer routing to N shards). The
  /// callbacks must stay valid for the harness lifetime.
  ServeHarness(HarnessTarget target, HarnessOptions options);

  /// Drives the full stream through the target (blocking), then flushes.
  /// Query threads run for the whole ingest window. Reusable.
  HarnessReport Run(const ActivationStream& stream);

  /// Loads "u v t" lines from `path` (skipping bad lines), records the
  /// loader's report into the target's stats, then runs the loaded
  /// stream. Fails only when the file itself is unreadable.
  Result<HarnessReport> RunFile(const Graph& g, const std::string& path);

 private:
  HarnessTarget target_;
  HarnessOptions options_;
};

}  // namespace anc::serve

#endif  // ANC_SERVE_HARNESS_H_
