#!/usr/bin/env bash
# Builds everything, runs the full test suite and regenerates every paper
# table/figure, teeing results into test_output.txt / bench_output.txt at
# the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "########## $(basename "$b") ##########" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done

echo "done: test_output.txt, bench_output.txt"
