#!/usr/bin/env bash
# Serving/durability/sharding bench smoke: builds bench_serve_throughput,
# bench_store_wal and bench_shard_scaling, runs them on the shrunk
# ANC_*_SMOKE workloads (seconds, not minutes) and snapshots the
# StatsJsonExporter output as BENCH_serve.json / BENCH_store.json /
# BENCH_shard.json at the repo root, so the serving stack's
# throughput/latency/staleness counters, the WAL's group-commit sweep and
# the sharded-ingest scaling rows (bench.speedup_x100 >= 200 at ldg_s4 is
# the sharding acceptance bar) are tracked in-tree next to the code that
# produces them (docs/serving.md, docs/durability.md, docs/sharding.md).
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
JOBS=$(nproc 2>/dev/null || echo 4)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target bench_serve_throughput bench_store_wal bench_shard_scaling

STATS_DIR=$(mktemp -d)
trap 'rm -rf "$STATS_DIR"' EXIT

ANC_SERVE_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_serve_throughput"
ANC_STORE_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_store_wal"
ANC_SHARD_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_shard_scaling"

cp "$STATS_DIR/bench_serve_throughput_stats.json" BENCH_serve.json
cp "$STATS_DIR/bench_store_wal_stats.json" BENCH_store.json
cp "$STATS_DIR/bench_shard_scaling_stats.json" BENCH_shard.json
echo "wrote BENCH_serve.json BENCH_store.json BENCH_shard.json"
