#!/usr/bin/env bash
# Serving-layer bench smoke: builds bench_serve_throughput, runs it on the
# shrunk ANC_SERVE_SMOKE workload (seconds, not minutes) and snapshots the
# StatsJsonExporter output as BENCH_serve.json at the repo root, so the
# serving stack's throughput/latency/staleness counters are tracked in-tree
# next to the code that produces them (docs/serving.md).
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
JOBS=$(nproc 2>/dev/null || echo 4)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_serve_throughput

STATS_DIR=$(mktemp -d)
trap 'rm -rf "$STATS_DIR"' EXIT

ANC_SERVE_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_serve_throughput"

cp "$STATS_DIR/bench_serve_throughput_stats.json" BENCH_serve.json
echo "wrote BENCH_serve.json"
