#!/usr/bin/env bash
# Serving/durability/tiering/sharding/networking/rebalance bench smoke:
# builds bench_serve_throughput, bench_store_wal, bench_tier_spill,
# bench_shard_scaling, bench_net_qps and bench_rebalance, runs them on the shrunk
# ANC_*_SMOKE workloads (seconds, not minutes) and snapshots the
# StatsJsonExporter output as BENCH_serve.json / BENCH_store.json /
# BENCH_tier.json / BENCH_shard.json / BENCH_net.json /
# BENCH_rebalance.json at the repo root,
# so the serving stack's throughput/latency/staleness counters, the WAL's
# group-commit sweep, the tiered-store spill rows (tiered ingest within
# 2x of the in-RAM baseline with the resident delta under budget is the
# tiering acceptance bar), the sharded-ingest scaling rows
# (bench.speedup_x100 >= 200 at ldg_s4 is the sharding acceptance bar) and
# the networked front-end's QPS rows (cache off/on with hit rate,
# leader-only vs leader+2-follower scale-out) and the live-rebalance
# recovery rows (bench.recovery_pct >= 70 on the rebalanced run is the
# re-partitioning acceptance bar) are tracked in-tree next to
# the code that produces them (docs/serving.md, docs/durability.md,
# docs/storage_tiers.md, docs/sharding.md, docs/networking.md).
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
JOBS=$(nproc 2>/dev/null || echo 4)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target bench_serve_throughput bench_store_wal bench_tier_spill \
  bench_shard_scaling bench_net_qps bench_rebalance

STATS_DIR=$(mktemp -d)
trap 'rm -rf "$STATS_DIR"' EXIT

ANC_SERVE_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_serve_throughput"
ANC_STORE_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_store_wal"
ANC_TIER_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_tier_spill"
ANC_SHARD_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_shard_scaling"
ANC_NET_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_net_qps"
ANC_REBALANCE_SMOKE=1 ANC_STATS_DIR="$STATS_DIR" \
  "$BUILD_DIR/bench/bench_rebalance"

cp "$STATS_DIR/bench_serve_throughput_stats.json" BENCH_serve.json
cp "$STATS_DIR/bench_store_wal_stats.json" BENCH_store.json
cp "$STATS_DIR/bench_tier_spill_stats.json" BENCH_tier.json
cp "$STATS_DIR/bench_shard_scaling_stats.json" BENCH_shard.json
cp "$STATS_DIR/bench_net_qps_stats.json" BENCH_net.json
cp "$STATS_DIR/bench_rebalance_stats.json" BENCH_rebalance.json
echo "wrote BENCH_serve.json BENCH_store.json BENCH_tier.json" \
  "BENCH_shard.json BENCH_net.json BENCH_rebalance.json"
