#!/usr/bin/env bash
# Lint gate: clang-format (diff-clean or fail) and clang-tidy over src/
# (every subsystem directory, src/rebalance/ included), tests/ and bench/,
# driven by the committed .clang-format / .clang-tidy. The portable stage
# also sweeps fuzz/ (harnesses + corpus generator).
#
# Both tools are optional in minimal containers: when one is missing the
# corresponding stage is skipped with a warning (CI installs both, so the
# gate is always enforced there). A set of portable checks that need no
# LLVM tooling always runs. Exits non-zero on any finding.
#
# Usage: scripts/lint.sh [format|tidy|portable]   (default: all stages)
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"
fail=0

cxx_sources() {
  find src tests bench -name '*.cc' -o -name '*.h' | sort
}

run_format() {
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "[lint] clang-format not found; skipping format stage" >&2
    return 0
  fi
  echo "[lint] clang-format --dry-run -Werror"
  if ! cxx_sources | xargs clang-format --dry-run -Werror; then
    fail=1
  fi
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "[lint] clang-tidy not found; skipping tidy stage" >&2
    return 0
  fi
  # clang-tidy needs a compilation database; configure a throwaway build
  # dir exporting one if the default build hasn't.
  local db_dir=build
  if [ ! -f build/compile_commands.json ]; then
    db_dir=build-lint
    cmake -S . -B "$db_dir" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCMAKE_BUILD_TYPE=Release >/dev/null
  fi
  echo "[lint] clang-tidy (database: $db_dir)"
  if ! find src bench -name '*.cc' | sort |
    xargs clang-tidy -p "$db_dir" --quiet; then
    fail=1
  fi
}

# Tool-free checks enforceable with grep alone; these run everywhere,
# including containers without LLVM.
run_portable() {
  echo "[lint] portable checks"
  # No accidental debugging output in library code (tests/bench excluded;
  # tools under src/tools are the CLI surface and print by design). A
  # 'lint-ok: output' marker on the printing line or the one above
  # suppresses the finding for deliberate fatal-path diagnostics.
  if find src -name '*.cc' -o -name '*.h' | grep -v '^src/tools/' |
    grep -v '^src/obs/' | sort | xargs awk '
      /lint-ok: output/ { skip = 2 }
      /std::cout|std::cerr|printf\(/ {
        if (skip == 0) { print FILENAME ":" FNR ": " $0; found = 1 }
      }
      { if (skip > 0) skip-- }
      END { exit found }'; then
    :
  else
    echo "[lint] error: raw output in library code (annotate deliberate" \
      "uses with '// lint-ok: output')" >&2
    fail=1
  fi
  # Headers must carry include guards matching the repo convention.
  local h
  for h in $(find src fuzz -name '*.h'); do
    if ! grep -q '#ifndef ANC_' "$h"; then
      echo "[lint] error: $h lacks an ANC_* include guard" >&2
      fail=1
    fi
  done
  # No TODOs without an owner or issue reference.
  if grep -rn 'TODO[^(:]' src tests bench fuzz --include='*.cc' \
    --include='*.h'; then
    echo "[lint] error: bare TODO (use TODO(name) or TODO(#issue))" >&2
    fail=1
  fi
  # [[nodiscard]] discipline: Status and Result are class-level
  # [[nodiscard]] (src/util/status.h), which is what turns a silently
  # dropped error into a compile error under -Werror=unused-result. Guard
  # the attributes themselves so a refactor cannot quietly shed them.
  local attr
  for attr in 'class \[\[nodiscard\]\] Status' 'class \[\[nodiscard\]\] Result'; do
    if ! grep -q "$attr" src/util/status.h; then
      echo "[lint] error: src/util/status.h lost its '$attr' attribute" \
        "(dropped Status/Result results would compile again)" >&2
      fail=1
    fi
  done
  # And deliberate drops must say why: every '(void)' cast of a
  # Status/Result-returning call needs a reason in a comment on the same
  # line or the line above ('//' anywhere nearby counts; fuzz harnesses
  # drop by design and carry a file-level rationale).
  if find src -name '*.cc' -o -name '*.h' | sort | xargs awk '
      { prev_comment = comment; comment = (/\/\// ? 1 : 0) }
      /\(void\)[A-Za-z_:.>-]+.*\(/ {
        if (!comment && !prev_comment) {
          print FILENAME ":" FNR ": " $0; found = 1
        }
      }
      END { exit found }'; then
    :
  else
    echo "[lint] error: unexplained (void) drop of a function result" \
      "(add a comment saying why the Status/Result is discarded)" >&2
    fail=1
  fi
}

case "$stage" in
  format) run_format ;;
  tidy) run_tidy ;;
  portable) run_portable ;;
  all)
    run_format
    run_tidy
    run_portable
    ;;
  *)
    echo "usage: scripts/lint.sh [format|tidy|portable]" >&2
    exit 2
    ;;
esac

if [ "$fail" -ne 0 ]; then
  echo "[lint] FAILED" >&2
  exit 1
fi
echo "[lint] OK"
