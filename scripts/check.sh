#!/usr/bin/env bash
# Tier-1 verification plus hardened configurations:
#   default     default build + full ctest          (the tier-1 gate)
#   nometrics   ANC_METRICS=OFF build + full ctest  (no-op escape hatch compiles)
#   asan        ASan/UBSan build + full ctest       (memory/UB audit)
#   tsan        TSan build + full ctest             (race audit of the thread
#               pool, metric shards, Lemma-13 parallel updates and the
#               serving stack, docs/serving.md)
#   invariants  ANC_CHECK_INVARIANTS=ON + full ctest (lemma-level validators
#               armed in the update path)
#   store-crash ASan/UBSan build, durability fault-injection suite only
#               (store_test crash matrix + persistence corruption tests,
#               docs/durability.md)
#   tier        ASan/UBSan build, tiered-storage suite only: segment
#               round-trip/corruption units, budgeted spill + compaction
#               byte-identity differentials, tiered recovery and the
#               crash-seam matrix (mid-segment-write, pre-manifest-swap,
#               mid-compaction), and the server-driven quiescent-point
#               maintenance test (docs/storage_tiers.md)
#   shard       TSan build, sharding suite only: partitioner/router/
#               ShardedServer differential + recovery tests and the
#               racing-producers scatter-gather stress in
#               concurrency_test.cc (docs/sharding.md)
#   obs-trace   Release build, traced smoke runs of the serving and
#               sharding benches; trace_check validates the emitted JSONL
#               (span nesting, queue-wait→apply and query→gather
#               correlation, required span names — docs/observability.md)
#   tsa         Clang Thread Safety Analysis build
#               (-DANC_THREAD_SAFETY=ON, -Werror=thread-safety): every
#               GUARDED_BY / REQUIRES contract in serve/shard/store/obs/
#               thread_pool is checked at compile time
#               (docs/static_analysis.md). Self-skips with a message when
#               no clang++ is installed — the annotations are no-ops under
#               GCC, so a GCC "pass" would be meaningless.
#   rebalance   TSan build, adaptive re-partitioning suite only:
#               Fennel/HDRF partitioner units, cut-drift monitor +
#               planner units, live-migration differentials (byte-
#               identity vs the unsharded oracle before/during/after a
#               handoff), the migration crash-seam matrix, and the
#               concurrent ingest-during-migration stress
#               (docs/sharding.md "Rebalancing & live migration")
#   net         TSan build, networking suite only: RPC frame/body codec
#               units, query-cache semantics, loopback client/server
#               end-to-end (byte-identity vs. the in-process view, tenant
#               quotas, garbage connections) and the replication chain
#               (WAL shipping, follower staleness barrier) — plus a smoke
#               run of the net QPS bench under TSan (docs/networking.md)
#   fuzz-smoke  ASan/UBSan build of the fuzz/ harnesses, replayed over the
#               checked-in corpora (plus bounded deterministic mutations)
#               by the standalone driver: WAL frames, checkpoints +
#               MANIFEST, obs JSON, activation streams. Malformed input
#               must come back as a Status, never a crash/leak/UB. Also
#               covers ANCSEG01 cold-segment parsing (fuzz_segment) and
#               ANCMIG01 migration journals (fuzz_journal).
#
# Usage: scripts/check.sh [--fast] [config ...]
#   With no arguments every configuration runs. Naming one or more configs
#   (e.g. `scripts/check.sh tsan` in a CI job) builds and tests only those.
#   --fast is an alias for `default`.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

run_config() {
  local dir=$1
  shift
  echo "=== [$dir] cmake $* ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_one() {
  case "$1" in
    default)
      run_config build
      ;;
    nometrics)
      run_config build-nometrics -DANC_METRICS=OFF
      ;;
    asan)
      run_config build-asan -DANC_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
      ;;
    tsan)
      run_config build-tsan -DANC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
      ;;
    invariants)
      run_config build-invariants -DANC_CHECK_INVARIANTS=ON
      ;;
    store-crash)
      # The fault-injection matrix under ASan: simulated crashes at every
      # seam, torn tails, corrupt checkpoints/manifests — the durability
      # suite, without re-running the full tier-1 battery.
      local dir=build-asan
      echo "=== [$dir] store-crash (fault-injection under ASan) ==="
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DANC_SANITIZE=address
      cmake --build "$dir" -j "$JOBS" --target store_test persistence_test
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
        -R '^(WalTest|StoreCrashMatrixTest|StoreRecoveryTest|DurableServeTest|SerializationTest)\.'
      ;;
    tier)
      # The tiered-storage suite under ASan: cold-segment format units,
      # budgeted spill and compaction byte-identity differentials against
      # the untiered index, tiered recovery, the tier crash-seam matrix,
      # and the AncServer quiescent-point maintenance path — without
      # re-running the full tier-1 battery.
      local dir=build-asan
      echo "=== [$dir] tier (tiered-storage suite under ASan) ==="
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DANC_SANITIZE=address
      cmake --build "$dir" -j "$JOBS" --target tier_test store_test
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
        -R '^(SegmentTest|TieredStoreTest|TieredHeadTest|TierRecoveryTest|TierCrashMatrixTest|TierServeTest|StoreRecoveryTest)\.'
      ;;
    shard)
      # The sharding suite under TSan: partition/router unit tests, the
      # byte-identity and quality differentials, per-shard crash recovery,
      # and the racing-producers scatter-gather stress — without re-running
      # the full tier-1 battery.
      local dir=build-tsan
      echo "=== [$dir] shard (sharding suite under TSan) ==="
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DANC_SANITIZE=thread
      cmake --build "$dir" -j "$JOBS" --target shard_test concurrency_test
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
        -R '^(ShardPartitionerTest|ShardRouterTest|ShardedServerTest|ShardRecoveryTest|ShardStressTest)\.'
      ;;
    rebalance)
      # The adaptive re-partitioning suite under TSan: streaming
      # partitioner units, monitor/planner units, and the live-migration
      # stack — migration runs concurrently with ingest, so the handoff
      # protocol (route lock, frontier tickets, side-buffer, epoch swap)
      # is the raciest new surface. Crash seams re-run under the asan
      # config via the full battery.
      local dir=build-tsan
      echo "=== [$dir] rebalance (re-partitioning suite under TSan) ==="
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DANC_SANITIZE=thread
      cmake --build "$dir" -j "$JOBS" --target rebalance_test
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
        -R '^(RebalancePartitionerTest|ActivityTrackerTest|CutMonitorTest|RebalancePlanTest|MigrationJournalTest|LiveMigrationTest|MigrationCrashTest|MigrationStressTest|RebalanceRouterTest|RebalanceHealthTest|RebalancerTest)\.'
      ;;
    net)
      # The networking suite under TSan: codec + cache units, the loopback
      # end-to-end matrix, and leader/follower replication with its pause/
      # resume staleness stall — the raciest surfaces in src/net/. Finishes
      # with a smoke run of the loopback QPS bench (acceptor + workers +
      # pullers + client threads all live at once).
      local dir=build-tsan
      echo "=== [$dir] net (networking suite under TSan) ==="
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DANC_SANITIZE=thread
      cmake --build "$dir" -j "$JOBS" --target net_test bench_net_qps
      ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
        -R '^(NetProtocolTest|QueryCacheTest|NetServerTest|NetReplicationTest)\.'
      local statsdir
      statsdir=$(mktemp -d)
      ANC_NET_SMOKE=1 ANC_NET_THREADS=2 ANC_STATS_DIR="$statsdir" \
        "$dir/bench/bench_net_qps"
      rm -rf "$statsdir"
      ;;
    obs-trace)
      # Traced smoke runs of the serving and sharding benches; trace_check
      # rejects malformed JSONL, broken span nesting, queue-wait spans with
      # no matching apply, query spans with no matching gather, and missing
      # required span names (docs/observability.md).
      local dir=build
      echo "=== [$dir] obs-trace (traced bench smoke + trace_check) ==="
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release
      cmake --build "$dir" -j "$JOBS" \
        --target bench_serve_throughput bench_shard_scaling trace_check
      local tracedir
      tracedir=$(mktemp -d)
      ANC_SERVE_SMOKE=1 ANC_TRACE_FILE="$tracedir/serve.jsonl" \
        "$dir/bench/bench_serve_throughput"
      "$dir/examples/trace_check" "$tracedir/serve.jsonl" \
        ingest.queue_wait serve.apply serve.publish
      ANC_SHARD_SMOKE=1 ANC_TRACE_FILE="$tracedir/shard.jsonl" \
        "$dir/bench/bench_shard_scaling"
      "$dir/examples/trace_check" "$tracedir/shard.jsonl" \
        ingest.queue_wait serve.apply serve.publish \
        shard.query_clusters shard.gather shard.merge
      rm -rf "$tracedir"
      ;;
    tsa)
      # Compile-time lock-discipline audit. Build-only: the point is the
      # -Werror=thread-safety diagnostics, and runtime behavior is already
      # covered by the tsan configuration (annotations must not change it).
      if ! command -v clang++ >/dev/null 2>&1; then
        echo "=== [tsa] SKIPPED: clang++ not found (Thread Safety Analysis" \
          "is Clang-only; install clang or rely on the CI tsa job) ==="
        return 0
      fi
      local dir=build-tsa
      echo "=== [$dir] Clang Thread Safety Analysis (-Werror=thread-safety) ==="
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_COMPILER=clang++ -DANC_THREAD_SAFETY=ON
      cmake --build "$dir" -j "$JOBS"
      ;;
    fuzz-smoke)
      # Bounded fuzz replay under ASan/UBSan: every harness over its
      # checked-in corpus plus ANC_FUZZ_MUTATIONS deterministic mutations
      # per input. Any crash, leak or sanitizer report fails the run.
      local dir=build-fuzz
      echo "=== [$dir] fuzz-smoke (corpus replay under ASan/UBSan) ==="
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DANC_FUZZ=ON -DANC_SANITIZE=address
      cmake --build "$dir" -j "$JOBS" \
        --target fuzz_wal fuzz_index fuzz_json fuzz_stream fuzz_rpc \
                 fuzz_segment fuzz_journal
      local target
      for target in wal index json stream rpc segment journal; do
        echo "--- fuzz_$target over fuzz/corpus/$target ---"
        ASAN_OPTIONS=detect_leaks=1 \
          ANC_FUZZ_MUTATIONS="${ANC_FUZZ_MUTATIONS:-256}" \
          "$dir/fuzz/fuzz_$target" "fuzz/corpus/$target"
      done
      ;;
    *)
      echo "unknown configuration '$1'" >&2
      echo "known: default nometrics asan tsan invariants store-crash tier shard rebalance net obs-trace tsa fuzz-smoke" >&2
      exit 2
      ;;
  esac
}

CONFIGS=()
for arg in "$@"; do
  if [[ "$arg" == "--fast" ]]; then
    CONFIGS+=(default)
  else
    CONFIGS+=("$arg")
  fi
done
if [[ ${#CONFIGS[@]} -eq 0 ]]; then
  CONFIGS=(default nometrics asan tsan invariants)
fi

for config in "${CONFIGS[@]}"; do
  run_one "$config"
done

echo "=== configurations passed: ${CONFIGS[*]} ==="
