#!/usr/bin/env bash
# Tier-1 verification plus hardened configurations:
#   1. default build  + full ctest            (the tier-1 gate)
#   2. ANC_METRICS=OFF build + full ctest     (no-op escape hatch compiles)
#   3. ASan/UBSan build + full ctest          (exercises the lock-free
#      metric shard merging under sanitizers)
#
# Usage: scripts/check.sh [--fast]
#   --fast runs only the default configuration.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
FAST=${1:-}

run_config() {
  local dir=$1
  shift
  echo "=== [$dir] cmake $* ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config build

if [[ "$FAST" != "--fast" ]]; then
  run_config build-nometrics -DANC_METRICS=OFF
  run_config build-asan -DANC_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "=== all configurations passed ==="
