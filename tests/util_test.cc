#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/indexed_heap.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace anc {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad lambda");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad lambda");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad lambda");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  ANC_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Uniform(bound), bound);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(17);
  for (uint32_t population : {10u, 100u, 1000u}) {
    for (uint32_t count : {0u, 1u, 5u, population / 2, population}) {
      std::vector<uint32_t> sample =
          rng.SampleWithoutReplacement(population, count);
      ASSERT_EQ(sample.size(), count);
      std::set<uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), count);
      for (uint32_t x : sample) EXPECT_LT(x, population);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementCoversPopulation) {
  // Every element should appear in some sample; a crude uniformity check.
  Rng rng(19);
  std::vector<int> seen(20, 0);
  for (int trial = 0; trial < 400; ++trial) {
    for (uint32_t x : rng.SampleWithoutReplacement(20, 5)) ++seen[x];
  }
  for (int count : seen) EXPECT_GT(count, 40);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ----------------------------------------------------------- IndexedHeap --

TEST(IndexedHeapTest, PopsInPriorityOrder) {
  IndexedMinHeap heap(100);
  Rng rng(31);
  std::vector<double> priorities(100);
  for (uint32_t i = 0; i < 100; ++i) {
    priorities[i] = rng.NextDouble();
    heap.PushOrUpdate(i, priorities[i]);
  }
  double last = -1.0;
  while (!heap.empty()) {
    auto [item, priority] = heap.PopMin();
    EXPECT_GE(priority, last);
    EXPECT_EQ(priority, priorities[item]);
    last = priority;
  }
}

TEST(IndexedHeapTest, DecreaseKeyMovesItemUp) {
  IndexedMinHeap heap(10);
  for (uint32_t i = 0; i < 10; ++i) heap.PushOrUpdate(i, 10.0 + i);
  heap.PushOrUpdate(7, 0.5);
  auto [item, priority] = heap.PopMin();
  EXPECT_EQ(item, 7u);
  EXPECT_EQ(priority, 0.5);
}

TEST(IndexedHeapTest, IncreaseKeyMovesItemDown) {
  IndexedMinHeap heap(3);
  heap.PushOrUpdate(0, 1.0);
  heap.PushOrUpdate(1, 2.0);
  heap.PushOrUpdate(2, 3.0);
  heap.PushOrUpdate(0, 99.0);
  EXPECT_EQ(heap.PopMin().first, 1u);
  EXPECT_EQ(heap.PopMin().first, 2u);
  EXPECT_EQ(heap.PopMin().first, 0u);
}

TEST(IndexedHeapTest, ContainsAndErase) {
  IndexedMinHeap heap(5);
  heap.PushOrUpdate(2, 1.0);
  heap.PushOrUpdate(4, 2.0);
  EXPECT_TRUE(heap.Contains(2));
  EXPECT_FALSE(heap.Contains(3));
  heap.Erase(2);
  EXPECT_FALSE(heap.Contains(2));
  EXPECT_EQ(heap.size(), 1u);
  heap.Erase(3);  // no-op
  EXPECT_EQ(heap.size(), 1u);
}

TEST(IndexedHeapTest, ClearResetsPositions) {
  IndexedMinHeap heap(4);
  for (uint32_t i = 0; i < 4; ++i) heap.PushOrUpdate(i, i);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  heap.PushOrUpdate(1, 5.0);
  EXPECT_TRUE(heap.Contains(1));
  EXPECT_EQ(heap.PopMin().first, 1u);
}

TEST(IndexedHeapTest, RandomizedAgainstMultiset) {
  IndexedMinHeap heap(200);
  Rng rng(37);
  std::vector<double> current(200, -1.0);
  for (int op = 0; op < 5000; ++op) {
    const uint32_t item = static_cast<uint32_t>(rng.Uniform(200));
    const double p = rng.NextDouble();
    heap.PushOrUpdate(item, p);
    current[item] = p;
    if (op % 7 == 0 && !heap.empty()) {
      auto [min_item, min_p] = heap.PopMin();
      // Must be the global minimum of all enqueued entries.
      for (uint32_t i = 0; i < 200; ++i) {
        if (heap.Contains(i)) {
          EXPECT_LE(min_p, heap.PriorityOf(i));
        }
      }
      EXPECT_EQ(min_p, current[min_item]);
      current[min_item] = -1.0;
    }
  }
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, SerialFallbackRunsEverything) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.ParallelFor(64, [&](size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPoolTest, ParallelRunsEverythingExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(50, [&](size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "must not run"; });
}

}  // namespace
}  // namespace anc
