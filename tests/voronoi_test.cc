#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "pyramid/voronoi.h"
#include "util/rng.h"

namespace anc {
namespace {

/// The weighted graph of Fig. 2(a)/Fig. 3 is not reproduced verbatim (node
/// ids differ); these tests build their own shapes.

Graph Path5() {
  GraphBuilder b;
  for (NodeId v = 0; v + 1 < 5; ++v) EXPECT_TRUE(b.AddEdge(v, v + 1).ok());
  return b.Build();
}

TEST(VoronoiTest, SingleSeedIsDijkstraTree) {
  Graph g = Path5();
  std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  VoronoiPartition part;
  part.Build(g, w, {0});
  EXPECT_EQ(part.SeedOf(4), 0u);
  EXPECT_DOUBLE_EQ(part.Dist(0), 0.0);
  EXPECT_DOUBLE_EQ(part.Dist(1), 1.0);
  EXPECT_DOUBLE_EQ(part.Dist(2), 3.0);
  EXPECT_DOUBLE_EQ(part.Dist(3), 6.0);
  EXPECT_DOUBLE_EQ(part.Dist(4), 10.0);
  EXPECT_EQ(part.Parent(4), 3u);
  EXPECT_EQ(part.Parent(0), kInvalidNode);
}

TEST(VoronoiTest, TwoSeedsSplitThePath) {
  Graph g = Path5();
  std::vector<double> w(4, 1.0);
  VoronoiPartition part;
  part.Build(g, w, {0, 4});
  EXPECT_EQ(part.SeedOf(0), 0u);
  EXPECT_EQ(part.SeedOf(1), 0u);
  EXPECT_EQ(part.SeedOf(3), 4u);
  EXPECT_EQ(part.SeedOf(4), 4u);
  EXPECT_TRUE(part.SameSeed(0, 1));
  EXPECT_FALSE(part.SameSeed(1, 3));
}

TEST(VoronoiTest, DisconnectedNodesUnreachable) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  b.SetNumNodes(3);
  Graph g = b.Build();
  std::vector<double> w = {1.0};
  VoronoiPartition part;
  part.Build(g, w, {0});
  EXPECT_EQ(part.SeedOf(2), kInvalidNode);
  EXPECT_EQ(part.Dist(2), kInfDist);
  EXPECT_FALSE(part.SameSeed(0, 2));
}

TEST(VoronoiTest, DecreaseReroutesThroughCheaperEdge) {
  // Square 0-1-2-3-0; seed 0. Edge (2,3) expensive at first.
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());  // e0
  ASSERT_TRUE(b.AddEdge(1, 2).ok());  // e1
  ASSERT_TRUE(b.AddEdge(2, 3).ok());  // e2
  ASSERT_TRUE(b.AddEdge(0, 3).ok());  // e3
  Graph g = b.Build();
  std::vector<double> w = {1.0, 1.0, 10.0, 1.0};
  VoronoiPartition part;
  part.Build(g, w, {0});
  EXPECT_DOUBLE_EQ(part.Dist(2), 2.0);  // via 0-1-2
  // Make (2,3) cheap: 2 should now be reached via 0-3-2 at 1 + 0.5.
  const EdgeId e2 = *g.FindEdge(2, 3);
  w[e2] = 0.5;
  std::vector<NodeId> changed;
  part.UpdateEdgeWeight(g, w, e2, 10.0, 0.5, &changed);
  EXPECT_DOUBLE_EQ(part.Dist(2), 1.5);
  EXPECT_EQ(part.Parent(2), 3u);
  EXPECT_TRUE(part.ConsistentWith(g, w));
}

TEST(VoronoiTest, IncreaseOnNonTreeEdgeIsFree) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  Graph g = b.Build();
  // Edge ids follow sorted endpoint order; set weights by lookup so the
  // direct edge (0,2) is the expensive non-tree one.
  std::vector<double> w(g.NumEdges(), 1.0);
  const EdgeId non_tree = *g.FindEdge(0, 2);
  w[non_tree] = 5.0;
  VoronoiPartition part;
  part.Build(g, w, {0});
  ASSERT_NE(part.ParentEdge(2), non_tree);
  w[non_tree] = 50.0;
  std::vector<NodeId> changed;
  const size_t touched =
      part.UpdateEdgeWeight(g, w, non_tree, 5.0, 50.0, &changed);
  EXPECT_EQ(touched, 0u);
  EXPECT_TRUE(changed.empty());
  EXPECT_TRUE(part.ConsistentWith(g, w));
}

TEST(VoronoiTest, IncreaseOnTreeEdgeReattachesSubtree) {
  Graph g = Path5();
  std::vector<double> w(4, 1.0);
  VoronoiPartition part;
  part.Build(g, w, {0, 4});
  // 1 hangs off 0; raising (0,1) pushes 1 to seed 4's side? Path: 0-1-2-3-4,
  // seeds 0 and 4; node 1 at dist 1 from 0 and 3 from 4.
  const EdgeId e01 = *g.FindEdge(0, 1);
  w[e01] = 10.0;
  std::vector<NodeId> changed;
  part.UpdateEdgeWeight(g, w, e01, 1.0, 10.0, &changed);
  EXPECT_TRUE(part.ConsistentWith(g, w));
  EXPECT_EQ(part.SeedOf(1), 4u);  // now cheaper via 4-3-2-1 = 3
  EXPECT_DOUBLE_EQ(part.Dist(1), 3.0);
  // Node 1's seed changed; it must be reported.
  EXPECT_NE(std::find(changed.begin(), changed.end(), 1u), changed.end());
}

TEST(VoronoiTest, IncreaseCanDisconnectSubtree) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  std::vector<double> w = {1.0};
  VoronoiPartition part;
  part.Build(g, w, {0});
  // Raising the only edge still leaves node 1 reachable (just farther).
  w[0] = 5.0;
  std::vector<NodeId> changed;
  part.UpdateEdgeWeight(g, w, 0, 1.0, 5.0, &changed);
  EXPECT_DOUBLE_EQ(part.Dist(1), 5.0);
  EXPECT_EQ(part.SeedOf(1), 0u);
  EXPECT_TRUE(part.ConsistentWith(g, w));
}

TEST(VoronoiTest, SeedInsideOrphanedSubtreeSurvives) {
  // Path 0-1-2 with seeds {0, 2}: no orphan case; craft one where a seed is
  // inside a subtree: seeds {0}, path 0-1-2; raise (0,1): both 1 and 2
  // reattach through the same (now heavier) edge.
  Graph g = Path5();
  std::vector<double> w(4, 1.0);
  VoronoiPartition part;
  part.Build(g, w, {2});
  const EdgeId e12 = *g.FindEdge(1, 2);
  w[e12] = 4.0;
  std::vector<NodeId> changed;
  part.UpdateEdgeWeight(g, w, e12, 1.0, 4.0, &changed);
  EXPECT_TRUE(part.ConsistentWith(g, w));
  EXPECT_DOUBLE_EQ(part.Dist(1), 4.0);
  EXPECT_DOUBLE_EQ(part.Dist(0), 5.0);
}

class VoronoiPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VoronoiPropertyTest, RandomUpdatesStayConsistentWithRebuild) {
  // The core index invariant (Lemmas 11-12): after any sequence of weight
  // increases and decreases, the incrementally maintained partition has the
  // same distances as a from-scratch Dijkstra.
  Rng rng(GetParam());
  Graph g = BarabasiAlbert(120, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();

  const uint32_t num_seeds = 1 + static_cast<uint32_t>(rng.Uniform(12));
  VoronoiPartition part;
  part.Build(g, w, rng.SampleWithoutReplacement(g.NumNodes(), num_seeds));

  for (int step = 0; step < 120; ++step) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(g.NumEdges()));
    const double old_w = w[e];
    // Mix of sharpenings (decrease, like an activation) and fades
    // (increase, like decay relative to the rest).
    const double new_w = rng.Bernoulli(0.5) ? old_w * (0.2 + 0.6 * rng.NextDouble())
                                            : old_w * (1.2 + 2.0 * rng.NextDouble());
    w[e] = new_w;
    part.UpdateEdgeWeight(g, w, e, old_w, new_w, nullptr);
    if (step % 10 == 9) {
      ASSERT_TRUE(part.ConsistentWith(g, w)) << "seed " << GetParam()
                                             << " step " << step;
    }
  }
  EXPECT_TRUE(part.ConsistentWith(g, w));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoronoiPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(VoronoiTest, SeedChangeReportingMatchesDiff) {
  // Whatever the update reports as seed-changed must equal the diff of
  // seed assignments before and after.
  Rng rng(77);
  Graph g = BarabasiAlbert(100, 2, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  VoronoiPartition part;
  part.Build(g, w, rng.SampleWithoutReplacement(g.NumNodes(), 8));

  for (int step = 0; step < 60; ++step) {
    std::vector<NodeId> before(g.NumNodes());
    for (NodeId v = 0; v < g.NumNodes(); ++v) before[v] = part.SeedOf(v);
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(g.NumEdges()));
    const double old_w = w[e];
    const double new_w =
        rng.Bernoulli(0.5) ? old_w * 0.3 : old_w * 3.0;
    w[e] = new_w;
    std::vector<NodeId> reported;
    part.UpdateEdgeWeight(g, w, e, old_w, new_w, &reported);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const bool changed = before[v] != part.SeedOf(v);
      const bool in_report =
          std::find(reported.begin(), reported.end(), v) != reported.end();
      EXPECT_EQ(changed, in_report) << "node " << v << " step " << step;
    }
  }
}

TEST(VoronoiTest, MemoryBytesPositiveAndScales) {
  Rng rng(5);
  Graph small = BarabasiAlbert(50, 2, rng);
  Graph large = BarabasiAlbert(500, 2, rng);
  std::vector<double> ws(small.NumEdges(), 1.0);
  std::vector<double> wl(large.NumEdges(), 1.0);
  VoronoiPartition ps;
  VoronoiPartition pl;
  ps.Build(small, ws, {0});
  pl.Build(large, wl, {0});
  EXPECT_GT(ps.MemoryBytes(), 0u);
  EXPECT_GT(pl.MemoryBytes(), ps.MemoryBytes());
}

}  // namespace
}  // namespace anc
