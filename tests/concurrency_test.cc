// Concurrency regression stress tests — the executable half of the TSan
// race audit (run them in the build-tsan configuration; scripts/check.sh
// tsan). Covers the three shared-state surfaces: the ThreadPool closure
// handoff, the MetricsRegistry shard writers vs. Snapshot merges, and the
// Lemma-13 parallel pyramid batch updates.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "core/anc.h"
#include "datasets/synthetic.h"
#include "obs/metrics.h"
#include "pyramid/pyramid_index.h"
#include "serve/server.h"
#include "shard/sharded_server.h"
#include "shard/sharded_view.h"
#include "similarity/similarity_engine.h"
#include "store/store.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace anc {
namespace {

TEST(ThreadPoolStressTest, RepeatedParallelForRunsEveryIteration) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  constexpr int kRounds = 100;
  constexpr size_t kIters = 64;
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(kIters, [&](size_t i) {
      total.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), kRounds * (kIters * (kIters + 1) / 2));
}

TEST(ThreadPoolStressTest, SetMetricsVisibleToFirstParallelFor) {
  // Regression: SetMetrics publishes the registry pointer under the pool
  // mutex, so workers that started (and parked) in the constructor observe
  // it — along with the counter/histogram ids it registered — on their
  // next wake. Before the fix the publish was a plain unsynchronized
  // store, and the very first ParallelFor after SetMetrics could record
  // through a half-visible registry.
  for (int round = 0; round < 32; ++round) {
    obs::MetricsRegistry registry;
    ThreadPool pool(4);
    pool.SetMetrics(&registry);
    std::atomic<uint64_t> total{0};
    pool.ParallelFor(64, [&](size_t i) {
      total.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 64u * 65u / 2u);
    if (obs::kMetricsEnabled) {
      const obs::StatsSnapshot snap = registry.Snapshot();
      EXPECT_EQ(snap.counter("anc.pool.tasks_run"), 64u);
      EXPECT_EQ(snap.counter("anc.pool.tasks_queued"), 64u);
    }
  }
}

TEST(ThreadPoolStressTest, MetricsRecordingUnderContention) {
  obs::MetricsRegistry registry;
  ThreadPool pool(4);
  pool.SetMetrics(&registry);
  const obs::CounterId work = registry.Counter("test.work");
  const obs::HistogramId samples = registry.Histogram("test.samples");

  // A reader thread merges snapshots while the pool's workers record into
  // their shards; under TSan this exercises writer/merge ordering.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      obs::StatsSnapshot snap = registry.Snapshot();
      ASSERT_LE(snap.counter("test.work"), 50u * 128u);
    }
  });
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(128, [&](size_t i) {
      registry.Add(work);
      registry.Record(samples, static_cast<double>(i));
    });
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  // Recorded values are all-zero in the ANC_METRICS=OFF no-op build; the
  // writer/merge interleaving above is the point of the test either way.
  if (obs::kMetricsEnabled) {
    obs::StatsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.counter("test.work"), 50u * 128u);
    ASSERT_NE(snap.histogram("test.samples"), nullptr);
    EXPECT_EQ(snap.histogram("test.samples")->count, 50u * 128u);
    EXPECT_EQ(snap.counter("anc.pool.tasks_run"), 50u * 128u);
  }
}

TEST(MetricsStressTest, ManualThreadsRecordWhileSnapshotting) {
  obs::MetricsRegistry registry;
  const obs::CounterId hits = registry.Counter("stress.hits");
  const obs::GaugeId level = registry.Gauge("stress.level");
  const obs::HistogramId lat = registry.Histogram("stress.lat");

  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        registry.Add(hits);
        registry.Record(lat, static_cast<double>(i % 512));
        if ((i & 1023) == 0) registry.Set(level, static_cast<int64_t>(t));
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    obs::StatsSnapshot snap = registry.Snapshot();
    ASSERT_LE(snap.counter("stress.hits"), kThreads * kOpsPerThread);
  }
  for (std::thread& w : writers) w.join();

  if (obs::kMetricsEnabled) {
    obs::StatsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.counter("stress.hits"), kThreads * kOpsPerThread);
    ASSERT_NE(snap.histogram("stress.lat"), nullptr);
    EXPECT_EQ(snap.histogram("stress.lat")->count, kThreads * kOpsPerThread);
  }
}

TEST(MetricsStressTest, ConcurrentRegistrationDeduplicates) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<obs::CounterId> ids(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        obs::CounterId id = registry.Counter("shared.counter");
        registry.Add(id);
        ids[t] = id;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t].slot, ids[0].slot);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(registry.Snapshot().counter("shared.counter"),
              static_cast<uint64_t>(kThreads) * 50u);
  }
}

/// Serial and 4-worker batch updates over the same pyramid parameters must
/// agree exactly: the partitions are mutually independent (Lemma 13), so
/// parallelism may not change a single distance or vote.
TEST(ParallelPyramidTest, BatchUpdatesMatchSerial) {
  Rng rng(97);
  Graph g = BarabasiAlbert(300, 3, rng);
  std::vector<double> weights(g.NumEdges(), 1.0);

  PyramidParams serial_params;
  serial_params.num_pyramids = 3;
  serial_params.seed = 5;
  serial_params.num_threads = 1;
  PyramidParams parallel_params = serial_params;
  parallel_params.num_threads = 4;

  obs::MetricsRegistry registry;  // recorded into from pool workers
  PyramidIndex serial(g, weights, serial_params);
  PyramidIndex parallel(g, weights, parallel_params, &registry);

  for (int round = 0; round < 5; ++round) {
    std::vector<std::pair<EdgeId, double>> batch;
    batch.reserve(64);
    for (int i = 0; i < 64; ++i) {
      const EdgeId e = static_cast<EdgeId>(rng.Next() % g.NumEdges());
      batch.emplace_back(e, 0.2 + rng.NextDouble());
    }
    serial.UpdateEdgeWeights(batch);
    parallel.UpdateEdgeWeights(batch);
  }

  for (uint32_t level = 1; level <= serial.num_levels(); ++level) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      ASSERT_EQ(serial.VotesOf(e, level), parallel.VotesOf(e, level))
          << "edge " << e << " level " << level;
    }
  }
  std::vector<double> final_weights(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    final_weights[e] = parallel.WeightOf(e);
  }
  for (uint32_t p = 0; p < serial_params.num_pyramids; ++p) {
    for (uint32_t level = 1; level <= serial.num_levels(); ++level) {
      const VoronoiPartition& a = serial.partition(p, level);
      const VoronoiPartition& b = parallel.partition(p, level);
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        ASSERT_EQ(a.SeedOf(v), b.SeedOf(v));
        ASSERT_DOUBLE_EQ(a.Dist(v), b.Dist(v));
      }
      ASSERT_TRUE(b.ConsistentWith(g, final_weights));
    }
  }
}

/// End-to-end Lemma-13 coverage: a 4-worker AncIndex digests a stream while
/// another thread polls Stats() (documented safe concurrently with
/// updates). Under TSan this is the race audit for the full update path.
TEST(ParallelPyramidTest, StreamApplyWithConcurrentStatsReader) {
  PlantedPartitionParams pp;
  pp.num_communities = 4;
  pp.min_size = 12;
  pp.max_size = 16;
  Rng rng(31);
  GroundTruthGraph data = PlantedPartition(pp, rng);

  AncConfig config;
  config.pyramid.num_pyramids = 3;
  config.pyramid.num_threads = 4;
  config.mode = AncMode::kOnline;
  AncIndex anc(data.graph, config);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      obs::StatsSnapshot snap = anc.Stats();
      ASSERT_GE(snap.counter("anc.apply.count"), 0u);
    }
  });

  ActivationStream stream = UniformStream(data.graph, 25, 0.08, rng);
  const Status status = anc.ApplyStream(stream);
  stop.store(true, std::memory_order_release);
  reader.join();
  ASSERT_TRUE(status.ok()) << status.ToString();

  if (obs::kMetricsEnabled) {
    EXPECT_EQ(anc.Stats().counter("anc.apply.count"), stream.size());
  }
  EXPECT_TRUE(anc.ValidateInvariants(/*deep=*/false).ok());
}

/// The serving stack's shared-state surfaces under TSan: racing producers
/// against the IngestQueue, the writer's view publication against
/// concurrent readers, and watermark waiters against the final drain. The
/// functional assertions live in serve_test.cc; this variant maximizes
/// interleavings (tiny snapshot interval, aggressive backpressure).
TEST(ServeStressTest, PublishRaceAudit) {
  PlantedPartitionParams pp;
  pp.num_communities = 3;
  pp.min_size = 8;
  pp.max_size = 12;
  Rng rng(61);
  GroundTruthGraph data = PlantedPartition(pp, rng);
  ActivationStream stream = UniformStream(data.graph, 30, 0.08, rng);

  AncConfig config;
  config.pyramid.num_pyramids = 3;
  config.mode = AncMode::kOnline;
  AncIndex index(data.graph, config);

  serve::ServeOptions options;
  options.ingest.capacity = 8;  // force backpressure blocking
  options.ingest.clamp_out_of_order = true;
  options.snapshot_every_activations = 1;  // publish on every apply
  options.snapshot_max_age_s = 0.0;
  serve::AncServer server(&index, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kProducers = 3;
  std::atomic<size_t> next{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        ASSERT_TRUE(server.Submit(stream[i]).ok());
      }
    });
  }

  std::atomic<bool> stop{false};
  std::thread waiter([&] {
    // Repeatedly await the moving accepted frontier: exercises the
    // watermark cv against concurrent publishes and the final drain.
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t target = server.accepted();
      ASSERT_TRUE(
          server.AwaitSeq(target, std::chrono::milliseconds(5000)).ok());
      ASSERT_GE(server.watermark().seq, target);
    }
  });
  std::thread reader([&] {
    uint64_t last_epoch = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::shared_ptr<const serve::ClusterView> view = server.View();
      ASSERT_GE(view->epoch(), last_epoch);
      last_epoch = view->epoch();
      view->LocalCluster(static_cast<NodeId>(last_epoch %
                                             data.graph.NumNodes()),
                         view->DefaultLevel());
    }
  });

  for (std::thread& p : producers) p.join();
  ASSERT_TRUE(server.Flush(std::chrono::milliseconds(30000)).ok());
  stop.store(true, std::memory_order_release);
  waiter.join();
  reader.join();
  server.Stop();

  EXPECT_TRUE(server.writer_status().ok());
  EXPECT_EQ(server.accepted(), stream.size());
  EXPECT_TRUE(index.ValidateInvariants(/*deep=*/false).ok());
}

/// The durability stack's shared-state surfaces under TSan: the serve
/// writer appending WAL batches races the store's background group-commit
/// flusher (flush_interval_s > 0) over the append buffer and durable mark,
/// while other threads poll StoreStats and await the durable watermark.
/// Functional crash/recovery assertions live in store_test.cc; this
/// variant maximizes interleavings (sub-millisecond flush ticks, auto-sync
/// disabled so the flusher owns every fsync).
TEST(StoreStressTest, WriterVsGroupCommitFlusherRaceAudit) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "anc_store_stress").string();
  std::filesystem::remove_all(dir);

  PlantedPartitionParams pp;
  pp.num_communities = 3;
  pp.min_size = 8;
  pp.max_size = 12;
  Rng rng(71);
  GroundTruthGraph data = PlantedPartition(pp, rng);
  ActivationStream stream = UniformStream(data.graph, 30, 0.08, rng);

  AncConfig config;
  config.pyramid.num_pyramids = 3;
  config.mode = AncMode::kOnline;
  AncIndex index(data.graph, config);

  store::StoreOptions store_options;
  store_options.flush_interval_s = 0.0005;  // flusher ticks constantly
  store_options.group_commit_records = 0;   // only the flusher fsyncs
  auto opened = store::DurableStore::Open(dir, index, store::Mark{0, 0.0},
                                          store_options, &index.metrics());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  serve::ServeOptions options;
  options.ingest.capacity = 8;  // force backpressure blocking
  options.ingest.clamp_out_of_order = true;
  options.max_batch = 4;  // many small WAL appends racing the flusher
  options.durability = serve::DurabilityPolicy::kAsync;
  options.store = opened.value().get();
  serve::AncServer server(&index, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kProducers = 3;
  std::atomic<size_t> next{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        ASSERT_TRUE(server.Submit(stream[i]).ok());
      }
    });
  }

  std::atomic<bool> stop{false};
  std::thread stats_poller([&] {
    // Stats() and durable() take the store mutex against the writer's
    // appends and the flusher's syncs; the watermark read crosses the
    // durable-callback path.
    uint64_t last_durable = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const store::StoreStats stats = opened.value()->Stats();
      ASSERT_GE(stats.appended.seq, stats.durable.seq);
      ASSERT_GE(server.durable_watermark().seq, last_durable);
      last_durable = server.durable_watermark().seq;
    }
  });

  for (std::thread& p : producers) p.join();
  // FlushDurable races the flusher's own fsyncs: both sides may advance
  // the durable mark and fire the callback.
  ASSERT_TRUE(server.FlushDurable(std::chrono::milliseconds(30000)).ok());
  stop.store(true, std::memory_order_release);
  stats_poller.join();
  EXPECT_GE(server.durable_watermark().seq, stream.size());
  server.Stop();

  EXPECT_TRUE(server.writer_status().ok());
  EXPECT_TRUE(server.store_status().ok());
  EXPECT_EQ(server.accepted(), stream.size());
  opened.value().reset();
  std::filesystem::remove_all(dir);
}

/// The sharded router's shared surfaces under TSan: racing producers push
/// through the routing mutex into four concurrent shard writers, a reader
/// thread repeatedly captures merged ShardedViews (N snapshot publishes
/// racing N captures) and runs scatter-gather queries over them, a waiter
/// chases the moving global ticket frontier across the per-shard watermark
/// cvs, and a stats poller crosses every per-shard metrics registry.
/// Functional differential assertions live in shard_test.cc; this variant
/// maximizes interleavings (tiny queues, publish-on-every-apply).
TEST(ShardStressTest, RoutedProducersVsScatterGatherReaders) {
  PlantedPartitionParams pp;
  pp.num_communities = 4;
  pp.min_size = 10;
  pp.max_size = 14;
  pp.mixing = 0.2;  // cut edges so halo delivery races too
  Rng rng(81);
  GroundTruthGraph data = PlantedPartition(pp, rng);
  ActivationStream stream = UniformStream(data.graph, 30, 0.08, rng);

  AncConfig config;
  config.pyramid.num_pyramids = 3;
  config.mode = AncMode::kOnline;

  shard::ShardedOptions options;
  options.partition.num_shards = 4;
  options.serve.ingest.capacity = 8;  // force backpressure blocking
  options.serve.ingest.clamp_out_of_order = true;
  options.serve.snapshot_every_activations = 1;  // publish on every apply
  options.serve.snapshot_max_age_s = 0.0;
  auto created = shard::ShardedServer::Create(data.graph, config, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  shard::ShardedServer& server = *created.value();
  ASSERT_GT(server.router()->cut_edges(), 0u);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kProducers = 3;
  std::atomic<size_t> next{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        ASSERT_TRUE(server.Submit(stream[i]).ok());
      }
    });
  }

  std::atomic<bool> stop{false};
  std::thread waiter([&] {
    // Await the moving global frontier: ShardFrontiers snapshots under the
    // route mutex while producers issue tickets, then blocks on every
    // shard's watermark cv.
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t target = server.accepted();
      ASSERT_TRUE(
          server.AwaitSeq(target, std::chrono::milliseconds(5000)).ok());
    }
  });
  std::thread reader([&] {
    uint64_t reads = 0;
    std::vector<uint64_t> last_epochs(4, 0);
    while (!stop.load(std::memory_order_acquire)) {
      const shard::ShardedView view = server.View();
      const std::vector<uint64_t> epochs = view.Epochs();
      for (size_t s = 0; s < epochs.size(); ++s) {
        ASSERT_GE(epochs[s], last_epochs[s]);  // per-shard monotone
        last_epochs[s] = epochs[s];
      }
      view.LocalCluster(
          static_cast<NodeId>(reads % data.graph.NumNodes()),
          view.DefaultLevel());
      if (++reads % 16 == 0) view.Clusters();
    }
  });
  std::thread stats_poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::StatsSnapshot stats = server.Stats();
      ASSERT_GE(stats.counter("anc.shard.accepted") +
                    stats.counter("anc.shard.rejected"),
                stats.counter("anc.shard.halo_partial"));
    }
  });

  for (std::thread& p : producers) p.join();
  ASSERT_TRUE(server.Flush(std::chrono::milliseconds(30000)).ok());
  stop.store(true, std::memory_order_release);
  waiter.join();
  reader.join();
  stats_poller.join();
  server.Stop();

  EXPECT_TRUE(server.writer_status().ok());
  EXPECT_EQ(server.accepted(), stream.size());
  EXPECT_GT(server.halo_deliveries(), 0u);
  for (uint32_t s = 0; s < server.num_shards(); ++s) {
    EXPECT_TRUE(server.shard_index(s).ValidateInvariants(/*deep=*/false).ok());
  }
}

}  // namespace
}  // namespace anc
