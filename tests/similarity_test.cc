#include <cmath>

#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "similarity/similarity_engine.h"
#include "util/rng.h"

namespace anc {
namespace {

/// Two 4-cliques joined by one bridge edge (3-4).
Graph TwoCliques() {
  GraphBuilder b;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) EXPECT_TRUE(b.AddEdge(u, v).ok());
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) EXPECT_TRUE(b.AddEdge(u, v).ok());
  }
  EXPECT_TRUE(b.AddEdge(3, 4).ok());
  return b.Build();
}

SimilarityParams DefaultParams() {
  SimilarityParams p;
  p.lambda = 0.1;
  p.epsilon = 0.4;
  p.mu = 3;
  return p;
}

TEST(SimilarityEngineTest, InitialSigmaIsDiceLikeJaccard) {
  Graph g = TwoCliques();
  SimilarityEngine engine(g, DefaultParams());
  // Inside a 4-clique: 2 common neighbors, both endpoints degree 3 (corner
  // nodes) -> sigma = 2*2 / (3+3) = 2/3.
  const EdgeId e01 = *g.FindEdge(0, 1);
  EXPECT_NEAR(engine.Sigma(e01), 2.0 * 2.0 / (3.0 + 3.0), 1e-12);
  // Bridge edge 3-4: no common neighbors -> sigma = 0.
  const EdgeId bridge = *g.FindEdge(3, 4);
  EXPECT_NEAR(engine.Sigma(bridge), 0.0, 1e-12);
}

TEST(SimilarityEngineTest, SigmaCachesMatchRecomputation) {
  Rng rng(7);
  Graph g = BarabasiAlbert(80, 3, rng);
  SimilarityEngine engine(g, DefaultParams());
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    t += rng.NextDouble() * 0.2;
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(g.NumEdges()));
    ASSERT_TRUE(engine.ApplyActivation(e, t).ok());
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const double expected = engine.RecomputeSigmaNumerator(e);
    const auto& [u, v] = g.Endpoints(e);
    const double denom =
        engine.RecomputeNodeActivity(u) + engine.RecomputeNodeActivity(v);
    const double expected_sigma = denom > 0 ? expected / denom : 0.0;
    EXPECT_NEAR(engine.Sigma(e), expected_sigma,
                1e-9 * std::max(1.0, expected_sigma))
        << "edge " << e;
  }
}

TEST(SimilarityEngineTest, SigmaIsNeuMUnderRescale) {
  // Lemma 3: the active similarity (and hence N_eps, roles) is invariant
  // under the global decay factor.
  Graph g = TwoCliques();
  SimilarityParams params = DefaultParams();
  SimilarityEngine a(g, params);
  SimilarityEngine b(g, params);
  ASSERT_TRUE(a.ApplyActivation(0, 1.0).ok());
  ASSERT_TRUE(b.ApplyActivation(0, 1.0).ok());
  // Force b to rescale by a long quiet gap followed by an activation; apply
  // the same activation to a (which auto-rescales too only if needed).
  ASSERT_TRUE(a.ApplyActivation(1, 2.0).ok());
  ASSERT_TRUE(b.ApplyActivation(1, 2.0).ok());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_NEAR(a.Sigma(e), b.Sigma(e), 1e-12);
  }
}

TEST(SimilarityEngineTest, RolesPartitionNodes) {
  Graph g = TwoCliques();
  SimilarityParams params = DefaultParams();
  params.mu = 3;
  SimilarityEngine engine(g, params);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const NodeRole role = engine.Role(v);
    if (g.Degree(v) < params.mu) {
      EXPECT_EQ(role, NodeRole::kPeriphery);
    } else {
      EXPECT_NE(role, NodeRole::kPeriphery);
    }
  }
  // Clique corner nodes (degree 3, all neighbors similar) must be cores.
  EXPECT_EQ(engine.Role(0), NodeRole::kCore);
}

TEST(SimilarityEngineTest, PeripheryRoleForLowDegree) {
  // A star: center degree 5, leaves degree 1 < mu.
  GraphBuilder b;
  for (NodeId leaf = 1; leaf <= 5; ++leaf) {
    ASSERT_TRUE(b.AddEdge(0, leaf).ok());
  }
  Graph g = b.Build();
  SimilarityParams params = DefaultParams();
  params.mu = 2;
  SimilarityEngine engine(g, params);
  for (NodeId leaf = 1; leaf <= 5; ++leaf) {
    EXPECT_EQ(engine.Role(leaf), NodeRole::kPeriphery);
  }
  // Center has 5 neighbors but sigma = 0 with all of them (no triangles),
  // so with eps > 0 it cannot be a core: it is a p-core.
  EXPECT_EQ(engine.Role(0), NodeRole::kPCore);
}

TEST(SimilarityEngineTest, ReinforcementStrengthensIntraCliqueEdges) {
  Graph g = TwoCliques();
  SimilarityEngine engine(g, DefaultParams());
  engine.InitializeStatic(3);
  const EdgeId intra = *g.FindEdge(0, 1);
  const EdgeId bridge = *g.FindEdge(3, 4);
  // Intra-clique similarity must exceed the bridge similarity after
  // reinforcement (the propagation of structural cohesiveness).
  EXPECT_GT(engine.Similarity(intra), engine.Similarity(bridge));
  // And intra similarity must have grown above its initial value 1.
  EXPECT_GT(engine.Similarity(intra), 1.0);
}

TEST(SimilarityEngineTest, WeightIsInverseSimilarity) {
  Graph g = TwoCliques();
  SimilarityEngine engine(g, DefaultParams());
  engine.InitializeStatic(2);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_NEAR(engine.Weight(e), 1.0 / engine.Similarity(e), 1e-12);
    EXPECT_GT(engine.Weight(e), 0.0);
  }
}

TEST(SimilarityEngineTest, ActivationOnlyChangesTriggerEdgeSimilarity) {
  // Lemma 5 locality: one activation's reinforcement touches only S of the
  // trigger edge (sigma caches change, but S elsewhere must not).
  Graph g = TwoCliques();
  SimilarityEngine engine(g, DefaultParams());
  engine.InitializeStatic(2);
  std::vector<double> before(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) before[e] = engine.Similarity(e);
  const EdgeId trigger = *g.FindEdge(0, 1);
  ASSERT_TRUE(engine.ApplyActivation(trigger, 1.0).ok());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e == trigger) continue;
    EXPECT_EQ(engine.Similarity(e), before[e]) << "edge " << e;
  }
  EXPECT_NE(engine.Similarity(trigger), before[trigger]);
}

TEST(SimilarityEngineTest, SimilarityStaysWithinClamp) {
  Rng rng(11);
  Graph g = BarabasiAlbert(60, 3, rng);
  SimilarityParams params = DefaultParams();
  SimilarityEngine engine(g, params);
  engine.InitializeStatic(5);
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    t += 0.05;
    ASSERT_TRUE(
        engine.ApplyActivation(static_cast<EdgeId>(rng.Uniform(g.NumEdges())), t)
            .ok());
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_GE(engine.Similarity(e), params.min_similarity);
    EXPECT_LE(engine.Similarity(e), params.max_similarity);
  }
}

TEST(SimilarityEngineTest, RepZeroLeavesUnitSimilarity) {
  Graph g = TwoCliques();
  SimilarityEngine engine(g, DefaultParams());
  engine.InitializeStatic(0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(engine.Similarity(e), 1.0);
  }
}

TEST(SimilarityEngineTest, MoreRepsMorePolarization) {
  // The gap between intra-clique and bridge similarity should widen with
  // more reinforcement repetitions (Exp 1's "increasing rep improves").
  Graph g = TwoCliques();
  const EdgeId intra = *g.FindEdge(0, 1);
  const EdgeId bridge = *g.FindEdge(3, 4);
  double prev_ratio = 0.0;
  for (uint32_t rep : {1u, 3u, 7u}) {
    SimilarityEngine engine(g, DefaultParams());
    engine.InitializeStatic(rep);
    const double ratio =
        engine.Similarity(intra) / engine.Similarity(bridge);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
}

TEST(SimilarityEngineTest, RecomputeFromActivenessResetsThenPropagates) {
  Graph g = TwoCliques();
  SimilarityEngine engine(g, DefaultParams());
  engine.InitializeStatic(5);
  const EdgeId intra = *g.FindEdge(0, 1);
  const double before = engine.Similarity(intra);
  engine.RecomputeFromActiveness(5);
  EXPECT_NEAR(engine.Similarity(intra), before, 1e-9 * before);
  engine.RecomputeFromActiveness(0);
  EXPECT_EQ(engine.Similarity(intra), 1.0);
}

TEST(SimilarityEngineTest, ApplyActivationRejectsBadEdge) {
  Graph g = TwoCliques();
  SimilarityEngine engine(g, DefaultParams());
  EXPECT_FALSE(engine.ApplyActivation(g.NumEdges(), 1.0).ok());
}

TEST(SuggestEpsilonTest, PercentileEndpointsAndMonotonicity) {
  Graph g = TwoCliques();
  const double lo = SuggestEpsilon(g, 0.0);
  const double mid = SuggestEpsilon(g, 0.5);
  const double hi = SuggestEpsilon(g, 1.0);
  EXPECT_LE(lo, mid);
  EXPECT_LE(mid, hi);
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 1.0);
  // Clique interiors give the top sigma: 2*2/(3+3).
  EXPECT_NEAR(hi, 2.0 * 2.0 / 6.0, 1e-12);
}

TEST(SuggestEpsilonTest, TriangleFreeGraphSuggestsZero) {
  // A tree has no common neighbors anywhere: every sigma is 0.
  GraphBuilder b;
  for (NodeId v = 1; v < 8; ++v) ASSERT_TRUE(b.AddEdge(v / 2, v).ok());
  Graph g = b.Build();
  EXPECT_EQ(SuggestEpsilon(g, 0.6), 0.0);
}

}  // namespace
}  // namespace anc
