#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "core/anc.h"
#include "core/serialization.h"
#include "pyramid/pyramid_index.h"
#include "datasets/synthetic.h"
#include "util/rng.h"

namespace anc {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

AncConfig TestConfig() {
  AncConfig config;
  config.similarity.lambda = 0.15;
  config.similarity.epsilon = 0.3;
  config.similarity.mu = 3;
  config.rep = 3;
  config.pyramid.num_pyramids = 3;
  config.pyramid.seed = 77;
  config.mode = AncMode::kOnlineReinforce;
  config.reinforce_interval = 4;
  return config;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  Rng rng(1);
  Graph g = BarabasiAlbert(150, 3, rng);
  AncIndex original(g, TestConfig());
  ActivationStream stream = UniformStream(g, 10, 0.03, rng);
  ASSERT_TRUE(original.ApplyStream(stream).ok());

  const std::string path = TempPath("anc_roundtrip.idx");
  ASSERT_TRUE(SaveIndex(original, path).ok());
  Result<LoadedIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  AncIndex& restored = *loaded.value().index;

  // Graph topology identical.
  ASSERT_EQ(restored.graph().NumNodes(), g.NumNodes());
  ASSERT_EQ(restored.graph().NumEdges(), g.NumEdges());

  // Configuration identical.
  EXPECT_EQ(restored.config().similarity.lambda, 0.15);
  EXPECT_EQ(restored.config().mode, AncMode::kOnlineReinforce);
  EXPECT_EQ(restored.config().reinforce_interval, 4u);

  // Similarity / activeness state identical.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    ASSERT_DOUBLE_EQ(restored.engine().Similarity(e),
                     original.engine().Similarity(e));
    ASSERT_DOUBLE_EQ(restored.engine().activeness().Anchored(e),
                     original.engine().activeness().Anchored(e));
    ASSERT_DOUBLE_EQ(restored.engine().Sigma(e), original.engine().Sigma(e));
  }

  // Pyramid structure identical: same seeds, same distances, same votes.
  for (uint32_t p = 0; p < 3; ++p) {
    for (uint32_t l = 1; l <= original.num_levels(); ++l) {
      ASSERT_EQ(restored.index().partition(p, l).seeds(),
                original.index().partition(p, l).seeds());
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        ASSERT_DOUBLE_EQ(restored.index().partition(p, l).Dist(v),
                         original.index().partition(p, l).Dist(v));
      }
    }
  }
  for (uint32_t l = 1; l <= original.num_levels(); ++l) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      ASSERT_EQ(restored.index().VotesOf(e, l), original.index().VotesOf(e, l));
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RestoredIndexContinuesTheStream) {
  // Save mid-stream, continue the identical suffix on both copies and
  // verify the clusterings agree.
  Rng rng(2);
  Graph g = BarabasiAlbert(120, 3, rng);
  AncIndex original(g, TestConfig());
  ActivationStream stream = UniformStream(g, 20, 0.02, rng);
  const size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(original.Apply(stream[i]).ok());
  }

  const std::string path = TempPath("anc_continue.idx");
  ASSERT_TRUE(SaveIndex(original, path).ok());
  Result<LoadedIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok());
  AncIndex& restored = *loaded.value().index;

  for (size_t i = half; i < stream.size(); ++i) {
    ASSERT_TRUE(original.Apply(stream[i]).ok());
    ASSERT_TRUE(restored.Apply(stream[i]).ok());
  }
  for (uint32_t l = 1; l <= original.num_levels(); ++l) {
    Clustering a = original.Clusters(l);
    Clustering b = restored.Clusters(l);
    ASSERT_EQ(a.labels, b.labels) << "level " << l;
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, FromTreeStatesRejectsMalformedState) {
  Rng rng(9);
  Graph g = BarabasiAlbert(40, 2, rng);
  std::vector<double> w(g.NumEdges(), 1.0);
  PyramidParams params;
  params.num_pyramids = 2;

  // Wrong slot count.
  EXPECT_EQ(PyramidIndex::FromTreeStates(g, w, params, {}), nullptr);

  // Right count but truncated arrays.
  PyramidIndex good(g, w, params);
  std::vector<VoronoiPartition::TreeState> trees = good.ExportTreeStates();
  trees[0].dist.pop_back();
  EXPECT_EQ(PyramidIndex::FromTreeStates(g, w, params, std::move(trees)),
            nullptr);

  // Out-of-range parent id.
  trees = good.ExportTreeStates();
  trees[1].parent[0] = g.NumNodes() + 5;
  EXPECT_EQ(PyramidIndex::FromTreeStates(g, w, params, std::move(trees)),
            nullptr);

  // Pristine export restores fine.
  trees = good.ExportTreeStates();
  auto restored =
      PyramidIndex::FromTreeStates(g, w, params, std::move(trees));
  ASSERT_NE(restored, nullptr);
  for (uint32_t l = 1; l <= good.num_levels(); ++l) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      EXPECT_EQ(restored->VotesOf(e, l), good.VotesOf(e, l));
    }
  }
}

TEST(SerializationTest, MissingFileFails) {
  Result<LoadedIndex> r = LoadIndex("/nonexistent/path.idx");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SerializationTest, GarbageFileRejected) {
  const std::string path = TempPath("anc_garbage.idx");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an index";
  }
  Result<LoadedIndex> r = LoadIndex(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejected) {
  Rng rng(3);
  Graph g = BarabasiAlbert(60, 2, rng);
  AncIndex index(g, TestConfig());
  const std::string path = TempPath("anc_trunc.idx");
  ASSERT_TRUE(SaveIndex(index, path).ok());
  // Truncate to 60% and expect a clean rejection, not a crash.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size * 6 / 10);
  Result<LoadedIndex> r = LoadIndex(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, BitFlipAnywhereInPayloadRejected) {
  Rng rng(4);
  Graph g = BarabasiAlbert(60, 2, rng);
  AncIndex index(g, TestConfig());
  ActivationStream stream = UniformStream(g, 5, 0.05, rng);
  ASSERT_TRUE(index.ApplyStream(stream).ok());
  const std::string path = TempPath("anc_bitflip.idx");
  ASSERT_TRUE(SaveIndex(index, path).ok());
  const auto size = std::filesystem::file_size(path);
  const size_t header = 8 + 4 + 8 + 4;  // magic, version, size, crc

  // Flip one byte at several payload offsets; the checksum must catch
  // every one of them with InvalidArgument (never a crash or a silently
  // different index).
  for (const double frac : {0.0, 0.25, 0.5, 0.9}) {
    const auto offset =
        header + static_cast<size_t>(frac * static_cast<double>(size - header - 1));
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
    file.close();

    Result<LoadedIndex> r = LoadIndex(path);
    ASSERT_FALSE(r.ok()) << "bit flip at offset " << offset << " not caught";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

    // Flip back so the next iteration starts from a clean file.
    std::fstream undo(path, std::ios::binary | std::ios::in | std::ios::out);
    byte = static_cast<char>(byte ^ 0x10);
    undo.seekp(static_cast<std::streamoff>(offset));
    undo.write(&byte, 1);
  }
  // Pristine file still loads.
  EXPECT_TRUE(LoadIndex(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, VersionSkewRejected) {
  Rng rng(5);
  Graph g = BarabasiAlbert(40, 2, rng);
  AncIndex index(g, TestConfig());
  const std::string path = TempPath("anc_skew.idx");
  ASSERT_TRUE(SaveIndex(index, path).ok());

  // A file from the previous format generation (magic "ANCIDX01") must be
  // rejected as version skew, not misparsed.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(7);
    file.put('1');
  }
  Result<LoadedIndex> old_gen = LoadIndex(path);
  ASSERT_FALSE(old_gen.ok());
  EXPECT_EQ(old_gen.status().code(), StatusCode::kInvalidArgument);
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(7);
    file.put('2');
  }

  // Matching magic but a skewed version field is rejected too.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(8);
    const uint32_t version = 99;
    file.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  Result<LoadedIndex> skewed = LoadIndex(path);
  ASSERT_FALSE(skewed.ok());
  EXPECT_EQ(skewed.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace anc
