#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "core/anc.h"
#include "datasets/synthetic.h"
#include "metrics/quality.h"
#include "metrics/structural.h"
#include "util/rng.h"

namespace anc {
namespace {

AncConfig SmallConfig(AncMode mode = AncMode::kOnline) {
  AncConfig config;
  config.similarity.lambda = 0.1;
  config.similarity.epsilon = 0.3;
  config.similarity.mu = 3;
  config.pyramid.num_pyramids = 4;
  config.pyramid.seed = 17;
  config.rep = 5;
  config.mode = mode;
  return config;
}

GroundTruthGraph Planted(uint64_t seed) {
  Rng rng(seed);
  PlantedPartitionParams params;
  params.num_communities = 8;
  params.min_size = 16;
  params.max_size = 24;
  params.p_in = 0.45;
  params.mixing = 0.08;
  return PlantedPartition(params, rng);
}

TEST(AncIndexTest, StaticClusteringBeatsTrivialBaselines) {
  GroundTruthGraph data = Planted(1);
  AncIndex anc(data.graph, SmallConfig());
  // Search granularities for the best NMI (the paper picks the granularity
  // whose cluster count is closest to the ground truth).
  double best_nmi = 0.0;
  for (uint32_t l = 1; l <= anc.num_levels(); ++l) {
    Clustering c = anc.Clusters(l);
    best_nmi = std::max(best_nmi, Nmi(c, data.truth));
  }
  EXPECT_GT(best_nmi, 0.6);
}

TEST(AncIndexTest, DefaultClustersReturnsThetaSqrtNGranularity) {
  GroundTruthGraph data = Planted(2);
  AncIndex anc(data.graph, SmallConfig());
  Clustering c = anc.Clusters();
  EXPECT_GT(c.num_clusters, 1u);
  EXPECT_EQ(c.labels.size(), data.graph.NumNodes());
}

TEST(AncIndexTest, OnlineStreamKeepsIndexConsistent) {
  // End-to-end ANCO invariant: after a stream, every partition equals a
  // from-scratch rebuild at the final weights.
  GroundTruthGraph data = Planted(3);
  AncIndex anc(data.graph, SmallConfig(AncMode::kOnline));
  Rng rng(3);
  ActivationStream stream = UniformStream(data.graph, 10, 0.02, rng);
  ASSERT_TRUE(anc.ApplyStream(stream).ok());

  std::vector<double> weights(data.graph.NumEdges());
  for (EdgeId e = 0; e < weights.size(); ++e) {
    weights[e] = anc.engine().Weight(e);
  }
  for (uint32_t p = 0; p < anc.config().pyramid.num_pyramids; ++p) {
    for (uint32_t l = 1; l <= anc.num_levels(); ++l) {
      EXPECT_TRUE(anc.index().partition(p, l).ConsistentWith(data.graph,
                                                             weights))
          << "pyramid " << p << " level " << l;
    }
  }
  EXPECT_GT(anc.total_touched_nodes(), 0u);
}

TEST(AncIndexTest, StatsMatchesTouchedNodesAfterStream) {
  GroundTruthGraph data = Planted(3);
  AncIndex anc(data.graph, SmallConfig(AncMode::kOnline));
  Rng rng(3);
  ActivationStream stream = UniformStream(data.graph, 10, 0.02, rng);
  ASSERT_TRUE(anc.ApplyStream(stream).ok());

  const obs::StatsSnapshot stats = anc.Stats();
  if (!obs::kMetricsEnabled) {
    // Disabled build: the snapshot keeps its shape but reads all-zero.
    EXPECT_EQ(stats.counter("anc.apply.count"), 0u);
    return;
  }
  // The facade's apply counters track the stream exactly.
  EXPECT_EQ(stats.counter("anc.apply.count"), stream.size());
  EXPECT_EQ(stats.counter("anc.apply.online"), stream.size());
  EXPECT_EQ(stats.counter("anc.apply.offline"), 0u);
  // The index counter is the same accounting as total_touched_nodes():
  // every UpdateEdgeWeight call records the nodes it touched.
  EXPECT_EQ(stats.counter("anc.index.touched_nodes"),
            anc.total_touched_nodes());
  EXPECT_GT(stats.counter("anc.index.touched_nodes"), 0u);
  EXPECT_GT(stats.counter("anc.index.repairs"), 0u);
  // Per-level repairs sum to at most repairs * levels, and at least one
  // level saw repair work.
  uint64_t level_repairs = 0;
  for (uint32_t l = 1; l <= anc.num_levels(); ++l) {
    level_repairs +=
        stats.counter("anc.index.level" + std::to_string(l) + ".repairs");
  }
  EXPECT_GT(level_repairs, 0u);
  // Similarity-layer counters: one reinforcement and one activeness bump
  // per online activation (S0 init happens before the stream, but
  // InitializeStatic resets nothing here — so >= stream.size()).
  EXPECT_GE(stats.counter("anc.sim.reinforcements"), stream.size());
  EXPECT_GT(stats.counter("anc.sim.activeness_updates"), 0u);
  // Latency histograms saw one sample per apply.
  const auto* latency = stats.histogram("anc.apply.latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, stream.size());
  // The snapshot serializes and parses back intact.
  obs::StatsSnapshot parsed;
  ASSERT_TRUE(obs::StatsSnapshot::FromJson(stats.ToJson(), &parsed));
  EXPECT_EQ(parsed.counter("anc.index.touched_nodes"),
            stats.counter("anc.index.touched_nodes"));
}

TEST(AncIndexTest, OfflineModeRecordsZeroIndexRepairs) {
  GroundTruthGraph data = Planted(5);
  AncIndex ancf(data.graph, SmallConfig(AncMode::kOffline));
  ancf.metrics().Reset();  // drop construction-time S0 bookkeeping
  Rng rng(5);
  ActivationStream stream = UniformStream(data.graph, 5, 0.05, rng);
  ASSERT_TRUE(ancf.ApplyStream(stream).ok());

  const obs::StatsSnapshot stats = ancf.Stats();
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics disabled";
  // ANCF never touches the index during the stream: no incremental repairs
  // and no reinforcement, only activeness/sigma bookkeeping.
  EXPECT_EQ(stats.counter("anc.apply.offline"), stream.size());
  EXPECT_EQ(stats.counter("anc.index.repairs"), 0u);
  EXPECT_EQ(stats.counter("anc.index.touched_nodes"), 0u);
  EXPECT_EQ(stats.counter("anc.sim.reinforcements"), 0u);
  EXPECT_GT(stats.counter("anc.sim.activeness_updates"), 0u);
  // The snapshot recompute is counted (and is not an index repair).
  ancf.RecomputeSnapshot();
  EXPECT_EQ(ancf.Stats().counter("anc.snapshot.recomputes"), 1u);
  EXPECT_EQ(ancf.Stats().counter("anc.index.repairs"), 0u);
}

TEST(AncIndexTest, AncorRunsPeriodicReinforcement) {
  GroundTruthGraph data = Planted(4);
  AncConfig config = SmallConfig(AncMode::kOnlineReinforce);
  config.reinforce_interval = 2;
  AncIndex ancor(data.graph, config);
  AncIndex anco(data.graph, SmallConfig(AncMode::kOnline));
  Rng rng(4);
  ActivationStream stream = UniformStream(data.graph, 8, 0.02, rng);
  ASSERT_TRUE(ancor.ApplyStream(stream).ok());
  ASSERT_TRUE(anco.ApplyStream(stream).ok());
  // The extra consolidation passes must have produced different similarity
  // state on at least one activated edge.
  bool differs = false;
  for (EdgeId e = 0; e < data.graph.NumEdges() && !differs; ++e) {
    differs = ancor.engine().Similarity(e) != anco.engine().Similarity(e);
  }
  EXPECT_TRUE(differs);
}

TEST(AncIndexTest, OfflineModeDefersToRecomputeSnapshot) {
  GroundTruthGraph data = Planted(5);
  AncIndex ancf(data.graph, SmallConfig(AncMode::kOffline));
  Rng rng(5);
  ActivationStream stream = UniformStream(data.graph, 5, 0.05, rng);

  // In offline mode the index weights do not move with the stream...
  const double w0 = ancf.index().WeightOf(0);
  ASSERT_TRUE(ancf.ApplyStream(stream).ok());
  EXPECT_EQ(ancf.index().WeightOf(0), w0);
  // ...until the snapshot recompute.
  ancf.RecomputeSnapshot();
  for (uint32_t p = 0; p < ancf.config().pyramid.num_pyramids; ++p) {
    std::vector<double> weights(data.graph.NumEdges());
    for (EdgeId e = 0; e < weights.size(); ++e) {
      weights[e] = ancf.engine().Weight(e);
    }
    for (uint32_t l = 1; l <= ancf.num_levels(); ++l) {
      EXPECT_TRUE(
          ancf.index().partition(p, l).ConsistentWith(data.graph, weights));
    }
  }
}

TEST(AncIndexTest, CommunityBiasedStreamImprovesActiveCommunityCohesion) {
  // Activations concentrated inside planted communities must push the
  // similarity of intra-community edges above inter-community ones.
  GroundTruthGraph data = Planted(6);
  AncConfig config = SmallConfig(AncMode::kOnline);
  config.rep = 3;
  AncIndex anc(data.graph, config);
  Rng rng(6);
  ActivationStream stream = CommunityBiasedStream(
      data.graph, data.truth.labels, 15, 0.03, 10.0, rng);
  ASSERT_TRUE(anc.ApplyStream(stream).ok());
  double intra_sum = 0.0;
  double inter_sum = 0.0;
  uint32_t intra_count = 0;
  uint32_t inter_count = 0;
  for (EdgeId e = 0; e < data.graph.NumEdges(); ++e) {
    const auto& [u, v] = data.graph.Endpoints(e);
    if (data.truth.labels[u] == data.truth.labels[v]) {
      intra_sum += anc.engine().Similarity(e);
      ++intra_count;
    } else {
      inter_sum += anc.engine().Similarity(e);
      ++inter_count;
    }
  }
  ASSERT_GT(intra_count, 0u);
  ASSERT_GT(inter_count, 0u);
  EXPECT_GT(intra_sum / intra_count, inter_sum / inter_count);
}

TEST(AncIndexTest, LocalClusterAndSmallestCluster) {
  GroundTruthGraph data = Planted(7);
  AncIndex anc(data.graph, SmallConfig());
  const NodeId q = 0;
  std::vector<NodeId> local = anc.LocalCluster(q, anc.DefaultLevel());
  EXPECT_TRUE(std::binary_search(local.begin(), local.end(), q));
  uint32_t level = 0;
  std::vector<NodeId> smallest = anc.SmallestCluster(q, 3, &level);
  EXPECT_GE(smallest.size(), 3u);
  EXPECT_GE(level, 1u);
  EXPECT_LE(level, anc.num_levels());
}

TEST(AncIndexTest, ZoomCursorRoundTrip) {
  GroundTruthGraph data = Planted(8);
  AncIndex anc(data.graph, SmallConfig());
  ZoomCursor cursor = anc.Zoom();
  const uint32_t start = cursor.level();
  cursor.ZoomIn();
  cursor.ZoomOut();
  EXPECT_EQ(cursor.level(), start);
}

TEST(AncIndexTest, MemoryAccounting) {
  GroundTruthGraph data = Planted(9);
  AncIndex anc(data.graph, SmallConfig());
  EXPECT_GT(anc.MemoryBytes(), 0u);
}

TEST(AncIndexTest, MidStreamRescaleKeepsIndexConsistent) {
  // A long stream with aggressive decay forces batched rescales (the
  // exponent guard); the index must absorb them via ScaleAll + clamp
  // repairs and stay equal to a from-scratch rebuild.
  GroundTruthGraph data = Planted(11);
  AncConfig config = SmallConfig(AncMode::kOnline);
  config.similarity.lambda = 2.0;  // lambda * t > 60 within ~30 time units
  AncIndex anc(data.graph, config);
  Rng rng(11);
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    t += 0.25;  // reaches t = 100: multiple forced rescales
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(data.graph.NumEdges()));
    ASSERT_TRUE(anc.Apply({e, t}).ok());
  }
  ASSERT_GE(anc.engine().activeness().rescale_count(), 1u);

  std::vector<double> weights(data.graph.NumEdges());
  for (EdgeId e = 0; e < weights.size(); ++e) {
    weights[e] = anc.engine().Weight(e);
  }
  // Index weights must equal engine weights exactly...
  for (EdgeId e = 0; e < weights.size(); ++e) {
    ASSERT_NEAR(anc.index().WeightOf(e), weights[e],
                1e-9 * std::max(1.0, weights[e]))
        << "edge " << e;
  }
  // ...and partition distances must match a rebuild.
  for (uint32_t p = 0; p < config.pyramid.num_pyramids; ++p) {
    for (uint32_t l = 1; l <= anc.num_levels(); ++l) {
      EXPECT_TRUE(
          anc.index().partition(p, l).ConsistentWith(data.graph, weights))
          << "pyramid " << p << " level " << l;
    }
  }
}

TEST(AncConfigTest, ValidateAcceptsDefaults) {
  AncConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(AncConfigTest, ValidateRejectsEachBadKnob) {
  {
    AncConfig c;
    c.similarity.lambda = -0.1;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    AncConfig c;
    c.similarity.epsilon = 1.5;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    AncConfig c;
    c.similarity.mu = 0;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    AncConfig c;
    c.similarity.min_similarity = 0.0;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    AncConfig c;
    c.pyramid.num_pyramids = 0;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    AncConfig c;
    c.pyramid.theta = 0.0;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    AncConfig c;
    c.mode = AncMode::kOnlineReinforce;
    c.reinforce_interval = 0;
    EXPECT_FALSE(c.Validate().ok());
  }
}

TEST(AncIndexTest, CreateFactoryValidates) {
  GroundTruthGraph data = Planted(12);
  AncConfig bad = SmallConfig();
  bad.pyramid.theta = -1.0;
  Result<std::unique_ptr<AncIndex>> r = AncIndex::Create(data.graph, bad);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  Result<std::unique_ptr<AncIndex>> good =
      AncIndex::Create(data.graph, SmallConfig());
  ASSERT_TRUE(good.ok());
  EXPECT_GT(good.value()->num_levels(), 0u);
}

TEST(AncIndexTest, TinyGraphsWork) {
  // Degenerate relation networks must not crash any query path.
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  AncConfig config;
  config.rep = 2;
  config.similarity.mu = 1;
  AncIndex anc(g, config);
  ASSERT_TRUE(anc.Apply({0, 1.0}).ok());
  Clustering c = anc.Clusters();
  EXPECT_EQ(c.NumAssigned(), 2u);
  EXPECT_FALSE(anc.LocalCluster(0, 1).empty());
  ZoomCursor cursor = anc.Zoom();
  cursor.ZoomOut();
  cursor.ZoomIn();
}

TEST(AncIndexTest, RejectsOutOfRangeActivation) {
  GroundTruthGraph data = Planted(10);
  AncIndex anc(data.graph, SmallConfig());
  EXPECT_FALSE(anc.Apply({data.graph.NumEdges(), 1.0}).ok());
}

}  // namespace
}  // namespace anc
