// Tests of the distance-oracle queries (ApproxDistance / AttractionStrength)
#include <map>
// and the watched-node vote-change reporting (Section V-C Remarks).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "graph/algorithms.h"
#include "pyramid/pyramid_index.h"
#include "util/rng.h"

namespace anc {
namespace {

PyramidParams Params(uint32_t k = 4) {
  PyramidParams p;
  p.num_pyramids = k;
  p.seed = 5;
  return p;
}

TEST(ShortestDistanceTest, MatchesHandComputation) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  b.SetNumNodes(4);
  Graph g = b.Build();
  std::vector<double> w(g.NumEdges(), 1.0);
  w[*g.FindEdge(0, 2)] = 5.0;
  EXPECT_DOUBLE_EQ(ShortestDistance(g, w, 0, 2), 2.0);  // via 1
  EXPECT_DOUBLE_EQ(ShortestDistance(g, w, 0, 0), 0.0);
  EXPECT_TRUE(std::isinf(ShortestDistance(g, w, 0, 3)));
}

class OracleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleProperty, ApproxDistanceUpperBoundsExact) {
  Rng rng(GetParam());
  Graph g = BarabasiAlbert(200, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.2 + rng.NextDouble();
  PyramidIndex idx(g, w, Params());

  for (int trial = 0; trial < 50; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId v = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const double approx = idx.ApproxDistance(u, v);
    const double exact = ShortestDistance(g, w, u, v);
    // Upper-bound property of the common-seed witness.
    EXPECT_GE(approx, exact - 1e-9) << u << "-" << v;
    // Connected BA graph at level 1 shares one seed: always finite.
    EXPECT_TRUE(std::isfinite(approx));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleProperty, ::testing::Values(1, 2, 3, 4));

TEST(OracleTest, MorePyramidsTightenTheEstimate) {
  Rng rng(9);
  Graph g = BarabasiAlbert(300, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.2 + rng.NextDouble();
  PyramidIndex small(g, w, Params(2));
  PyramidIndex large(g, w, Params(16));

  double small_total = 0.0;
  double large_total = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId v = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    small_total += small.ApproxDistance(u, v);
    large_total += large.ApproxDistance(u, v);
  }
  // More independent witnesses can only tighten the minimum (in
  // expectation; the fixed trials make this effectively deterministic).
  EXPECT_LE(large_total, small_total * 1.02);
}

TEST(OracleTest, ApproxDistanceZeroForSameNode) {
  Rng rng(11);
  Graph g = BarabasiAlbert(50, 2, rng);
  PyramidIndex idx(g, std::vector<double>(g.NumEdges(), 1.0), Params());
  EXPECT_DOUBLE_EQ(idx.ApproxDistance(7, 7), 0.0);
  EXPECT_TRUE(std::isinf(idx.AttractionStrength(7, 7)) ||
              idx.AttractionStrength(7, 7) > 0.0);
}

TEST(OracleTest, DisconnectedPairsUnreachable) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  Graph g = b.Build();
  PyramidIndex idx(g, std::vector<double>(g.NumEdges(), 1.0), Params());
  EXPECT_TRUE(std::isinf(idx.ApproxDistance(0, 3)));
  EXPECT_DOUBLE_EQ(idx.AttractionStrength(0, 3), 0.0);
}

TEST(OracleTest, AttractionStrengthInverseOfDistance) {
  Rng rng(13);
  Graph g = BarabasiAlbert(80, 2, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  PyramidIndex idx(g, w, Params());
  const double d = idx.ApproxDistance(0, 40);
  ASSERT_TRUE(std::isfinite(d));
  ASSERT_GT(d, 0.0);
  EXPECT_DOUBLE_EQ(idx.AttractionStrength(0, 40), 1.0 / d);
}

// --------------------------------------------------------------- watcher --

TEST(WatcherTest, ReportsFlipsOnWatchedNodesOnly) {
  Rng rng(21);
  Graph g = BarabasiAlbert(150, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  PyramidIndex idx(g, w, Params());

  const NodeId watched = 10;
  idx.Watch(watched);
  EXPECT_TRUE(idx.IsWatched(watched));

  Rng updates(22);
  std::vector<PyramidIndex::VoteChange> all_changes;
  for (int step = 0; step < 200; ++step) {
    const EdgeId e = static_cast<EdgeId>(updates.Uniform(g.NumEdges()));
    idx.UpdateEdgeWeight(e, idx.WeightOf(e) *
                                (updates.Bernoulli(0.5) ? 0.4 : 2.5));
    for (const auto& change : idx.DrainVoteChanges()) {
      all_changes.push_back(change);
    }
  }
  // Every reported change concerns an edge incident to the watched node
  // and a level in range.
  for (const auto& change : all_changes) {
    const auto& [u, v] = g.Endpoints(change.edge);
    EXPECT_TRUE(u == watched || v == watched);
    EXPECT_GE(change.level, 1u);
    EXPECT_LE(change.level, idx.num_levels());
  }
  // A degree->=3 node under 200 random updates should see some action.
  EXPECT_FALSE(all_changes.empty());
}

TEST(WatcherTest, FinalEventStateMatchesIndex) {
  // Replaying the drained events per (edge, level) must end at the edge's
  // current pass/fail status.
  Rng rng(31);
  Graph g = BarabasiAlbert(100, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  PyramidIndex idx(g, w, Params());
  const NodeId watched = 0;
  idx.Watch(watched);

  // Record the initial status of watched-incident edges.
  std::map<std::pair<EdgeId, uint32_t>, bool> status;
  for (const Neighbor& nb : g.Neighbors(watched)) {
    for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
      status[{nb.edge, l}] = idx.EdgePassesVote(nb.edge, l);
    }
  }
  Rng updates(32);
  for (int step = 0; step < 300; ++step) {
    const EdgeId e = static_cast<EdgeId>(updates.Uniform(g.NumEdges()));
    idx.UpdateEdgeWeight(e, idx.WeightOf(e) *
                                (updates.Bernoulli(0.5) ? 0.4 : 2.5));
  }
  for (const auto& change : idx.DrainVoteChanges()) {
    auto it = status.find({change.edge, change.level});
    if (it != status.end()) it->second = change.now_passing;
  }
  for (const auto& [key, passing] : status) {
    EXPECT_EQ(passing, idx.EdgePassesVote(key.first, key.second))
        << "edge " << key.first << " level " << key.second;
  }
}

TEST(WatcherTest, UnwatchStopsReporting) {
  Rng rng(41);
  Graph g = BarabasiAlbert(80, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  PyramidIndex idx(g, w, Params());
  idx.Watch(5);
  idx.Unwatch(5);
  EXPECT_FALSE(idx.IsWatched(5));
  Rng updates(42);
  for (int step = 0; step < 100; ++step) {
    const EdgeId e = static_cast<EdgeId>(updates.Uniform(g.NumEdges()));
    idx.UpdateEdgeWeight(e, idx.WeightOf(e) *
                                (updates.Bernoulli(0.5) ? 0.4 : 2.5));
  }
  EXPECT_TRUE(idx.DrainVoteChanges().empty());
}

}  // namespace
}  // namespace anc
