// Rebalance-subsystem tests (src/rebalance/, docs/sharding.md
// "Rebalancing & live migration"): Fennel/HDRF partitioner units, the
// ANCMIG01 migration journal, the cut-drift monitor and activity-weighted
// planner, and the live-migration differential guarantees — merged
// answers byte-identical to an unsharded oracle before and after a
// whole-community move, crash seams that recover byte-identical through
// ShardedServer::RecoverAll, and a drift-triggered Rebalancer loop.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "core/anc.h"
#include "datasets/synthetic.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "rebalance/activity.h"
#include "rebalance/journal.h"
#include "rebalance/migrator.h"
#include "rebalance/monitor.h"
#include "rebalance/rebalancer.h"
#include "serve/server.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "shard/sharded_server.h"
#include "shard/sharded_view.h"
#include "store/test_hooks.h"
#include "util/rng.h"

namespace anc {
namespace {

using rebalance::ActivityTracker;
using rebalance::CutMonitor;
using rebalance::CutMonitorOptions;
using rebalance::CutSample;
using rebalance::DecodeJournal;
using rebalance::EncodeJournal;
using rebalance::MigrationJournal;
using rebalance::MigrationPhase;
using rebalance::Migrator;
using rebalance::PlanRebalance;
using rebalance::Rebalancer;
using rebalance::RebalancerOptions;
using rebalance::RebalancePlan;
using shard::ComputeStats;
using shard::FennelPartition;
using shard::HashPartition;
using shard::HdrfPartition;
using shard::LdgPartition;
using shard::MakePartition;
using shard::Partition;
using shard::PartitionerKind;
using shard::PartitionerKindName;
using shard::PartitionOptions;
using shard::PartitionStats;
using shard::Router;
using shard::ShardedOptions;
using shard::ShardedServer;
using shard::ShardedView;

constexpr std::chrono::milliseconds kAwait{10000};

std::string TempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

AncConfig TestConfig() {
  AncConfig config;
  config.similarity.lambda = 0.15;
  config.similarity.epsilon = 0.3;
  config.similarity.mu = 3;
  config.rep = 3;
  config.pyramid.num_pyramids = 3;
  config.pyramid.seed = 77;
  config.mode = AncMode::kOnline;
  return config;
}

/// Four communities with zero inter-community edges: a community-aligned
/// partition has no cut edges, and moving a whole community keeps its
/// active neighborhood closed — the byte-identity regime for live
/// migration (docs/sharding.md).
GroundTruthGraph DisjointCommunities(Rng& rng) {
  PlantedPartitionParams params;
  params.num_communities = 4;
  params.min_size = 14;
  params.max_size = 20;
  params.p_in = 0.35;
  params.mixing = 0.0;
  return PlantedPartition(params, rng);
}

std::vector<NodeId> CommunityMembers(const GroundTruthGraph& data,
                                     uint32_t community) {
  std::vector<NodeId> members;
  for (NodeId v = 0; v < data.truth.labels.size(); ++v) {
    if (data.truth.labels[v] == community) members.push_back(v);
  }
  return members;
}

void ExpectClusteringsEqual(const Clustering& a, const Clustering& b,
                            const std::string& what) {
  ASSERT_EQ(a.num_clusters, b.num_clusters) << what;
  ASSERT_EQ(a.labels, b.labels) << what;
}

/// Asserts the merged sharded answers are byte-identical to `oracle` at
/// every level.
void ExpectMatchesOracle(const ShardedServer& server, const AncIndex& oracle,
                         const std::string& what) {
  const ShardedView view = server.View();
  ASSERT_EQ(view.num_levels(), oracle.num_levels()) << what;
  const AncIndex::ClusterState oracle_state = oracle.ExportClusterState();
  for (uint32_t level = 1; level <= view.num_levels(); ++level) {
    for (EdgeId e = 0; e < server.graph().NumEdges(); ++e) {
      const uint32_t owner = server.router()->EdgeOwner(e);
      ASSERT_EQ(view.VotesOf(e, level),
                oracle_state.vote_counts[level - 1][e])
          << what << ": level " << level << " edge " << e << " ("
          << server.graph().Endpoints(e).first << ","
          << server.graph().Endpoints(e).second << ") owner " << owner
          << " w_shard="
          << const_cast<ShardedServer&>(server)
                 .shard_index(owner)
                 .index()
                 .WeightOf(e)
          << " w_oracle=" << oracle.index().WeightOf(e);
    }
    ExpectClusteringsEqual(view.Clusters(level), oracle.Clusters(level),
                           what + " at level " + std::to_string(level));
  }
}

// --- Partitioners: Fennel and HDRF ----------------------------------------

TEST(RebalancePartitionerTest, FennelAndHdrfCoverBalanceAndBeatHash) {
  Rng rng(11);
  PlantedPartitionParams params;
  params.num_communities = 8;
  params.min_size = 20;
  params.max_size = 40;
  params.mixing = 0.10;
  GroundTruthGraph data = PlantedPartition(params, rng);
  const Graph& g = data.graph;

  auto hash = HashPartition(g, 4, 1);
  ASSERT_TRUE(hash.ok());
  const PartitionStats hash_stats = ComputeStats(g, hash.value());

  for (const PartitionerKind kind :
       {PartitionerKind::kFennel, PartitionerKind::kHdrf}) {
    PartitionOptions options;
    options.num_shards = 4;
    options.kind = kind;
    options.ldg_passes = 2;
    auto partition = MakePartition(g, options);
    ASSERT_TRUE(partition.ok()) << PartitionerKindName(kind);
    const PartitionStats stats = ComputeStats(g, partition.value());
    uint64_t nodes = 0;
    uint64_t owned = 0;
    for (const uint32_t c : stats.shard_nodes) nodes += c;
    for (const uint32_t c : stats.shard_owned_edges) owned += c;
    EXPECT_EQ(nodes, g.NumNodes()) << PartitionerKindName(kind);
    EXPECT_EQ(owned, g.NumEdges()) << PartitionerKindName(kind);
    EXPECT_LT(stats.cut_ratio, hash_stats.cut_ratio)
        << PartitionerKindName(kind);
    EXPECT_LT(stats.cut_ratio, 0.5) << PartitionerKindName(kind);
    EXPECT_LE(stats.balance, 1.1 * 1.1) << PartitionerKindName(kind);
  }
}

TEST(RebalancePartitionerTest, FennelAndHdrfAreDeterministicPerSeed) {
  Rng rng(13);
  const Graph g = BarabasiAlbert(200, 3, rng);
  for (const auto& run : {FennelPartition, HdrfPartition}) {
    auto a = run(g, 4, 1.1, 42, 1, 0);
    auto b = run(g, 4, 1.1, 42, 1, 0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().node_shard, b.value().node_shard);
  }
}

TEST(RebalancePartitionerTest, ArrivalSeedVariesOrderIndependentlyOfSeed) {
  Rng rng(17);
  const Graph g = BarabasiAlbert(300, 3, rng);
  // Same seed, different arrival orders: the greedy outcome should change
  // for at least one of the streaming partitioners, while each
  // (seed, arrival_seed) pair stays reproducible.
  bool any_differs = false;
  for (const auto& run : {LdgPartition, FennelPartition, HdrfPartition}) {
    auto base = run(g, 4, 1.1, /*seed=*/1, 1, /*arrival_seed=*/0);
    auto shuffled = run(g, 4, 1.1, /*seed=*/1, 1, /*arrival_seed=*/99);
    auto shuffled_again = run(g, 4, 1.1, /*seed=*/1, 1, /*arrival_seed=*/99);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(shuffled.ok());
    ASSERT_TRUE(shuffled_again.ok());
    EXPECT_EQ(shuffled.value().node_shard, shuffled_again.value().node_shard);
    if (shuffled.value().node_shard != base.value().node_shard) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(RebalancePartitionerTest, RestreamingTightensFennelAndHdrfCuts) {
  Rng rng(19);
  PlantedPartitionParams params;
  params.num_communities = 8;
  params.min_size = 20;
  params.max_size = 40;
  params.mixing = 0.10;
  GroundTruthGraph data = PlantedPartition(params, rng);
  for (const auto& run : {FennelPartition, HdrfPartition}) {
    auto one_pass = run(data.graph, 4, 1.1, 1, /*passes=*/1, 0);
    auto restreamed = run(data.graph, 4, 1.1, 1, /*passes=*/3, 0);
    ASSERT_TRUE(one_pass.ok());
    ASSERT_TRUE(restreamed.ok());
    const PartitionStats before = ComputeStats(data.graph, one_pass.value());
    const PartitionStats after = ComputeStats(data.graph, restreamed.value());
    EXPECT_LE(after.cut_ratio, before.cut_ratio);
    EXPECT_LE(after.balance, 1.1 * 1.1);
  }
}

TEST(RebalancePartitionerTest, KindNamesRoundTrip) {
  EXPECT_STREQ(PartitionerKindName(PartitionerKind::kFennel), "fennel");
  EXPECT_STREQ(PartitionerKindName(PartitionerKind::kHdrf), "hdrf");
  ASSERT_TRUE(shard::ParsePartitionerKind("fennel").ok());
  EXPECT_EQ(shard::ParsePartitionerKind("fennel").value(),
            PartitionerKind::kFennel);
  ASSERT_TRUE(shard::ParsePartitionerKind("hdrf").ok());
  EXPECT_EQ(shard::ParsePartitionerKind("hdrf").value(),
            PartitionerKind::kHdrf);
}

// --- Migration journal ----------------------------------------------------

TEST(MigrationJournalTest, EncodeDecodeRoundTripsAllFields) {
  MigrationJournal journal;
  journal.id = 42;
  journal.from = 1;
  journal.to = 3;
  journal.s_a = 12345;
  journal.s_b = 678;
  journal.g0 = 9;
  journal.phase = MigrationPhase::kCommitted;
  journal.moving = {7, 11, 13, 17};

  std::string encoded;
  EncodeJournal(journal, &encoded);
  auto decoded = DecodeJournal(
      reinterpret_cast<const uint8_t*>(encoded.data()), encoded.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, journal.id);
  EXPECT_EQ(decoded.value().from, journal.from);
  EXPECT_EQ(decoded.value().to, journal.to);
  EXPECT_EQ(decoded.value().s_a, journal.s_a);
  EXPECT_EQ(decoded.value().s_b, journal.s_b);
  EXPECT_EQ(decoded.value().g0, journal.g0);
  EXPECT_EQ(decoded.value().phase, journal.phase);
  EXPECT_EQ(decoded.value().moving, journal.moving);
}

TEST(MigrationJournalTest, DecodeRejectsCorruption) {
  MigrationJournal journal;
  journal.id = 1;
  journal.moving = {1, 2, 3};
  std::string encoded;
  EncodeJournal(journal, &encoded);
  const uint8_t* data = reinterpret_cast<const uint8_t*>(encoded.data());

  // Truncations at every boundary fail cleanly.
  for (const size_t size : {size_t{0}, size_t{4}, size_t{9},
                            encoded.size() - 1}) {
    EXPECT_FALSE(DecodeJournal(data, size).ok()) << "size " << size;
  }
  // Bad magic.
  std::string bad_magic = encoded;
  bad_magic[0] ^= 0x5a;
  EXPECT_FALSE(DecodeJournal(reinterpret_cast<const uint8_t*>(
                                 bad_magic.data()),
                             bad_magic.size())
                   .ok());
  // Payload bit flip breaks the CRC.
  std::string bad_crc = encoded;
  bad_crc.back() ^= 0x5a;
  EXPECT_FALSE(DecodeJournal(reinterpret_cast<const uint8_t*>(bad_crc.data()),
                             bad_crc.size())
                   .ok());
}

TEST(MigrationJournalTest, WriteReadAndArtifactListing) {
  const std::string dir = TempDir("anc_rebalance_journal");
  std::filesystem::create_directories(dir);

  EXPECT_EQ(rebalance::ReadJournal(dir).status().code(),
            StatusCode::kNotFound);

  MigrationJournal journal;
  journal.id = 5;
  journal.from = 0;
  journal.to = 1;
  journal.s_a = 99;
  journal.moving = {2, 4};
  ASSERT_TRUE(rebalance::WriteJournal(dir, journal).ok());
  auto read = rebalance::ReadJournal(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().id, 5u);
  EXPECT_EQ(read.value().moving, journal.moving);

  // Sidecars show up in the artifact listing alongside the journal.
  const std::string sidecar = rebalance::SidecarPath(dir, 5, 0);
  { std::ofstream(sidecar) << "x"; }
  const std::vector<std::string> artifacts =
      rebalance::ListMigrationArtifacts(dir);
  ASSERT_GE(artifacts.size(), 2u);
  EXPECT_EQ(artifacts.front(), rebalance::JournalPath(dir));
  EXPECT_NE(std::find(artifacts.begin(), artifacts.end(), sidecar),
            artifacts.end());
  std::filesystem::remove_all(dir);
}

// --- Cut monitor and planner ----------------------------------------------

TEST(CutMonitorTest, AccumulatesSmallWindowsAndDebouncesDrift) {
  CutMonitorOptions options;
  options.min_window_accepted = 100;
  options.consecutive_windows = 2;
  options.drift_threshold = 0.15;
  CutMonitor monitor(options);

  // First sample only primes the baseline.
  CutSample sample;
  sample.accepted = 0;
  sample.halo_deliveries = 0;
  sample.shard_accepted = {0, 0};
  EXPECT_FALSE(monitor.Update(sample, 0.05));

  // A window below the floor accumulates instead of counting.
  sample.accepted = 50;
  sample.halo_deliveries = 30;
  sample.shard_accepted = {25, 25};
  EXPECT_FALSE(monitor.Update(sample, 0.05));
  EXPECT_EQ(monitor.windows(), 0u);
  EXPECT_FALSE(monitor.ShouldRebalance());

  // Folding in the rest makes one full drifted window (ratio 0.6 vs
  // static 0.05): streak 1, still debounced.
  sample.accepted = 200;
  sample.halo_deliveries = 120;
  sample.shard_accepted = {100, 100};
  EXPECT_TRUE(monitor.Update(sample, 0.05));
  EXPECT_EQ(monitor.windows(), 1u);
  EXPECT_NEAR(monitor.observed_cut_ratio(), 0.6, 1e-9);
  EXPECT_FALSE(monitor.ShouldRebalance());

  // Second drifted window trips it.
  sample.accepted = 400;
  sample.halo_deliveries = 240;
  sample.shard_accepted = {200, 200};
  EXPECT_TRUE(monitor.Update(sample, 0.05));
  EXPECT_TRUE(monitor.ShouldRebalance());

  // Healthy windows decay the EWMA back under the threshold and clear
  // the streak (one window is not enough — the EWMA has memory).
  for (int i = 0; i < 5; ++i) {
    sample.accepted += 200;
    sample.halo_deliveries += 2;
    sample.shard_accepted[0] += 100;
    sample.shard_accepted[1] += 100;
    EXPECT_TRUE(monitor.Update(sample, 0.05));
  }
  EXPECT_LT(monitor.observed_cut_ratio(), 0.2);
  EXPECT_FALSE(monitor.ShouldRebalance());
}

TEST(CutMonitorTest, IngestSkewAloneTrips) {
  CutMonitorOptions options;
  options.min_window_accepted = 100;
  options.consecutive_windows = 1;
  options.skew_threshold = 1.8;
  CutMonitor monitor(options);

  CutSample sample;
  sample.shard_accepted = {0, 0};
  EXPECT_FALSE(monitor.Update(sample, 0.5));
  // No halo drift (cut 0), but shard 0 takes the whole window: skew 2.0.
  sample.accepted = 200;
  sample.halo_deliveries = 0;
  sample.shard_accepted = {200, 0};
  EXPECT_TRUE(monitor.Update(sample, 0.5));
  EXPECT_GT(monitor.ingest_skew(), 1.8);
  EXPECT_TRUE(monitor.ShouldRebalance());
}

TEST(RebalancePlanTest, MovesMisplacedHotVertexWithinCapacity) {
  // Two triangles bridged by one edge; vertex 3 sits on shard 0 while its
  // hot triangle {3,4,5} lives on shard 1.
  GraphBuilder builder;
  builder.SetNumNodes(6);
  const std::pair<NodeId, NodeId> edges[] = {
      {0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {2, 3},
  };
  for (const auto& [u, v] : edges) ASSERT_TRUE(builder.AddEdge(u, v).ok());
  const Graph g = builder.Build();

  Partition partition;
  partition.num_shards = 2;
  partition.node_shard = {0, 0, 0, 0, 1, 1};
  std::vector<double> activity = {0, 0, 0, 10, 10, 10};

  rebalance::PlanOptions options;
  const RebalancePlan plan =
      PlanRebalance(g, partition, activity, options);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].node, 3u);
  EXPECT_EQ(plan.moves[0].from, 0u);
  EXPECT_EQ(plan.moves[0].to, 1u);
  EXPECT_GT(plan.moves[0].gain, 0.0);
  EXPECT_EQ(plan.before.cut_edges, 2u);     // (3,4) (3,5)
  EXPECT_EQ(plan.projected.cut_edges, 1u);  // (2,3) remains

  // A stream that matches the partition plans nothing.
  partition.node_shard = {0, 0, 0, 1, 1, 1};
  const RebalancePlan aligned =
      PlanRebalance(g, partition, activity, options);
  EXPECT_TRUE(aligned.moves.empty());

  // Capacity: vertex 3's whole neighborhood lives on shard 1, but shard 1
  // is already at capacity (3 = ceil(6/2) with no slack), so the planner
  // must hold the move back.
  partition.node_shard = {0, 0, 1, 0, 1, 1};
  options.balance_slack = 1.0;
  activity = {10, 10, 10, 10, 10, 10};
  const RebalancePlan capped =
      PlanRebalance(g, partition, activity, options);
  EXPECT_TRUE(capped.moves.empty());
}

TEST(ActivityTrackerTest, ObserveAndRotateTrackDecayedCounts) {
  GraphBuilder builder;
  builder.SetNumNodes(4);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  const Graph g = builder.Build();

  ActivityTracker tracker(g, /*alpha=*/1.0);  // no smoothing: exact counts
  tracker.Observe(0);
  tracker.Observe(0);
  tracker.Observe(1);
  tracker.Observe(99);  // out of range: ignored
  EXPECT_EQ(tracker.observed(), 3u);
  tracker.Rotate();
  ASSERT_EQ(tracker.activity().size(), 4u);
  EXPECT_DOUBLE_EQ(tracker.activity()[0], 2.0);
  EXPECT_DOUBLE_EQ(tracker.activity()[1], 2.0);
  EXPECT_DOUBLE_EQ(tracker.activity()[2], 1.0);
  EXPECT_DOUBLE_EQ(tracker.activity()[3], 1.0);
  // An empty window zeroes alpha=1 activity (full decay).
  tracker.Rotate();
  EXPECT_DOUBLE_EQ(tracker.activity()[0], 0.0);
  EXPECT_EQ(tracker.rotations(), 2u);
}

// --- Health surfacing -----------------------------------------------------

TEST(RebalanceHealthTest, ObservedCutDriftTripsClusterScorecard) {
  obs::ShardHealthMonitor monitor;
  obs::ClusterHealthSample sample;
  sample.num_shards = 2;
  sample.num_edges = 1000;
  sample.cut_edges = 50;
  sample.cut_ratio = 0.05;
  sample.balance = 1.0;
  sample.accepted = 4096;
  sample.halo_deliveries = 2048;  // observed 0.5 vs static 0.05
  sample.observed_cut_ratio = 0.5;
  sample.shards.resize(2);
  sample.shards[0].accepted = 2048;
  sample.shards[1].accepted = 2048;

  const obs::HealthReport report = monitor.Assess(sample);
  EXPECT_NE(report.cluster_state, obs::HealthState::kHealthy)
      << report.ToString();
  bool found = false;
  for (const std::string& reason : report.cluster_reasons) {
    if (reason.find("cut_drift") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.ToString();

  // Below the traffic floor the drift check stays quiet.
  sample.accepted = 100;
  EXPECT_EQ(monitor.Assess(sample).cluster_state, obs::HealthState::kHealthy);
}

// --- Router re-delivery after an assignment change (satellite) ------------

TEST(RebalanceRouterTest, HaloRedeliveryFollowsAssignmentChange) {
  GraphBuilder builder;
  builder.SetNumNodes(4);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());  // edge 0: intra shard 0
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());  // edge 1: cut
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());  // edge 2: intra shard 1
  const Graph g = builder.Build();

  Partition before;
  before.num_shards = 2;
  before.node_shard = {0, 0, 1, 1};
  const Router old_router(g, before);
  EXPECT_EQ(old_router.DeliveryOf(0), (std::pair<uint32_t, uint32_t>{
                                          0, Router::kNoShard}));
  EXPECT_EQ(old_router.DeliveryOf(1), (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_TRUE(old_router.IsCut(1));

  // Vertex 1 moves to shard 1: edge 1 stops being cut (no halo copy), and
  // edge 0 starts fanning out to shard 0 as the halo.
  Partition after = before;
  after.node_shard[1] = 1;
  const Router new_router(g, after);
  EXPECT_EQ(new_router.DeliveryOf(1), (std::pair<uint32_t, uint32_t>{
                                          1, Router::kNoShard}));
  EXPECT_FALSE(new_router.IsCut(1));
  EXPECT_EQ(new_router.EdgeOwner(0), 0u);  // first endpoint still owns
  EXPECT_EQ(new_router.DeliveryOf(0), (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_TRUE(new_router.IsCut(0));
  EXPECT_EQ(new_router.cut_edges(), 1u);
}

TEST(RebalanceRouterTest, LiveDeliveriesFollowMigratedOwnership) {
  Rng rng(59);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  const std::string dir = TempDir("anc_rebalance_redelivery");

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = data.truth.labels;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;
  auto created = ShardedServer::Create(g, TestConfig(), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedServer& server = *created.value();
  ASSERT_TRUE(server.Start().ok());

  // Find an edge inside community 1 and prove its deliveries move from
  // shard 1 to shard 3 across the migration.
  EdgeId inner = g.NumEdges();
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    if (data.truth.labels[u] == 1 && data.truth.labels[v] == 1) {
      inner = e;
      break;
    }
  }
  ASSERT_LT(inner, g.NumEdges());
  ASSERT_TRUE(server.Submit({inner, 1.0}).ok());
  ASSERT_TRUE(server.Flush(kAwait).ok());
  const uint64_t owner_before = server.shard(1).accepted();
  const uint64_t target_before = server.shard(3).accepted();
  EXPECT_GT(owner_before, 0u);

  Migrator migrator(&server);
  const uint64_t epoch_before = server.assignment_epoch();
  ASSERT_TRUE(migrator.Migrate(CommunityMembers(data, 1), 3).ok());
  EXPECT_GT(server.assignment_epoch(), epoch_before);
  EXPECT_EQ(server.router()->EdgeOwner(inner), 3u);

  ASSERT_TRUE(server.Submit({inner, 2.0}).ok());
  ASSERT_TRUE(server.Flush(kAwait).ok());
  EXPECT_EQ(server.shard(1).accepted(), owner_before);  // no new delivery
  EXPECT_GT(server.shard(3).accepted(), target_before);
  server.Stop();
  std::filesystem::remove_all(dir);
}

// --- Live migration: byte-identity ----------------------------------------

TEST(LiveMigrationTest, MergedAnswersStayByteIdenticalAcrossMigration) {
  Rng rng(61);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream =
      CommunityBiasedStream(g, data.truth.labels, 30, 0.05, 4.0, rng);
  const size_t half = stream.size() / 2;
  const ActivationStream first(stream.begin(), stream.begin() + half);
  const ActivationStream second(stream.begin() + half, stream.end());
  const std::string dir = TempDir("anc_rebalance_identity");

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = data.truth.labels;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;
  auto created = ShardedServer::Create(g, config, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedServer& server = *created.value();
  ASSERT_TRUE(server.Start().ok());

  // Before: the prefix answers match an oracle that applied the prefix.
  ASSERT_TRUE(server.SubmitStream(first).ok());
  ASSERT_TRUE(server.FlushDurable(kAwait).ok());
  AncIndex oracle(g, config);
  ASSERT_TRUE(oracle.ApplyStream(first).ok());
  ExpectMatchesOracle(server, oracle, "before migration");

  // During: keep ingest and queries running while community 2 moves from
  // shard 2 to shard 0 — ingest never stops.
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (const Activation& activation : second) {
      ASSERT_TRUE(server.Submit(activation).ok());
    }
  });
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto clusters = server.Clusters();
      ASSERT_TRUE(clusters.ok());
      std::this_thread::yield();
    }
  });
  Migrator migrator(&server);
  const Status migrated = migrator.Migrate(CommunityMembers(data, 2), 0);
  producer.join();
  done.store(true, std::memory_order_release);
  reader.join();
  ASSERT_TRUE(migrated.ok()) << migrated.ToString();
  EXPECT_EQ(migrator.migrations(), 1u);

  // After: ownership moved, and the merged answers still match an oracle
  // that applied the whole stream.
  EXPECT_EQ(server.router()->NodeOwner(CommunityMembers(data, 2)[0]), 0u);
  ASSERT_TRUE(server.Flush(kAwait).ok());
  ASSERT_TRUE(oracle.ApplyStream(second).ok());
  ExpectMatchesOracle(server, oracle, "after migration");

  // And the moved vertices answer identically through the query front.
  for (const NodeId v : CommunityMembers(data, 2)) {
    auto local = server.LocalCluster(v);
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(local.value(), oracle.LocalCluster(v, oracle.DefaultLevel()));
  }
  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(LiveMigrationTest, ValidatesArguments) {
  Rng rng(67);
  GroundTruthGraph data = DisjointCommunities(rng);
  const std::string dir = TempDir("anc_rebalance_validate");

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = data.truth.labels;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;
  auto created = ShardedServer::Create(data.graph, TestConfig(), options);
  ASSERT_TRUE(created.ok());
  ShardedServer& server = *created.value();

  Migrator migrator(&server);
  const std::vector<NodeId> community = CommunityMembers(data, 1);
  // Not running yet.
  EXPECT_EQ(migrator.Migrate(community, 3).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(server.Start().ok());
  // Empty set, bad target, no-op target, mixed owners.
  EXPECT_EQ(migrator.Migrate({}, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(migrator.Migrate(community, 9).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(migrator.Migrate(community, 1).code(),
            StatusCode::kInvalidArgument);
  std::vector<NodeId> mixed = community;
  mixed.push_back(CommunityMembers(data, 0)[0]);
  EXPECT_EQ(migrator.Migrate(mixed, 3).code(), StatusCode::kInvalidArgument);
  server.Stop();
  std::filesystem::remove_all(dir);

  // Non-durable servers refuse migration outright.
  ShardedOptions volatile_options;
  volatile_options.partition.num_shards = 4;
  volatile_options.partition.explicit_assignment = data.truth.labels;
  auto volatile_server =
      ShardedServer::Create(data.graph, TestConfig(), volatile_options);
  ASSERT_TRUE(volatile_server.ok());
  ASSERT_TRUE(volatile_server.value()->Start().ok());
  Migrator volatile_migrator(volatile_server.value().get());
  EXPECT_EQ(volatile_migrator.Migrate(community, 3).code(),
            StatusCode::kFailedPrecondition);
  volatile_server.value()->Stop();
}

// --- Crash seams ----------------------------------------------------------

/// Runs one migration into an armed crash seam, then proves RecoverAll
/// lands byte-identical to the unsharded oracle — rollback for seams
/// before the committed journal, roll-forward after it.
void RunCrashSeam(store::CrashPoint seam, bool expect_committed) {
  Rng rng(71);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream =
      CommunityBiasedStream(g, data.truth.labels, 25, 0.05, 4.0, rng);
  const std::string dir =
      TempDir(std::string("anc_rebalance_seam_") +
              store::CrashPointName(seam));

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = data.truth.labels;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;
  const std::vector<NodeId> moving = CommunityMembers(data, 1);
  {
    auto created = ShardedServer::Create(g, config, options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ShardedServer& server = *created.value();
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.SubmitStream(stream).ok());
    ASSERT_TRUE(server.FlushDurable(kAwait).ok());

    store::TestHooks::ArmCrash(seam, /*skip=*/0);
    Migrator migrator(&server);
    const Status status = migrator.Migrate(moving, 3);
    store::TestHooks::Disarm();
    ASSERT_FALSE(status.ok()) << "seam did not fire";
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(server.assignment_epoch() > 1, expect_committed);
    server.Stop();
  }

  // The frozen disk state must carry the journal (the seams all land
  // between the prepare journal and cleanup).
  EXPECT_TRUE(std::filesystem::exists(rebalance::JournalPath(dir)));

  auto recovered = ShardedServer::RecoverAll(dir, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ShardedServer& server = *recovered.value();
  EXPECT_EQ(server.router()->NodeOwner(moving[0]),
            expect_committed ? 3u : 1u);
  ASSERT_TRUE(server.Start().ok());

  // Start() retires the artifacts either way (rollback: target durable
  // state never changed; roll-forward: recovery spliced the sidecars and
  // checkpointed).
  EXPECT_TRUE(rebalance::ListMigrationArtifacts(dir).empty());

  AncIndex oracle(g, config);
  ASSERT_TRUE(oracle.ApplyStream(stream).ok());
  ExpectMatchesOracle(server, oracle,
                      std::string("recovered from ") +
                          store::CrashPointName(seam));

  // The recovered server still serves and still migrates consistently:
  // submit a little more traffic and re-check against the oracle.
  Rng more_rng(73);
  ActivationStream more =
      CommunityBiasedStream(g, data.truth.labels, 5, 0.05, 4.0, more_rng);
  // The generator restarts its clock at 1; shift past the first stream so
  // the oracle (which enforces non-decreasing timestamps) accepts it.
  for (Activation& a : more) a.time += 25.0;
  ASSERT_TRUE(server.SubmitStream(more).ok());
  ASSERT_TRUE(server.Flush(kAwait).ok());
  ASSERT_TRUE(oracle.ApplyStream(more).ok());
  ExpectMatchesOracle(server, oracle, "post-recovery traffic");
  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(MigrationCrashTest, MidImportCrashRollsBack) {
  RunCrashSeam(store::CrashPoint::kMidMigrationImport,
               /*expect_committed=*/false);
}

TEST(MigrationCrashTest, PreCommitCrashRollsBack) {
  RunCrashSeam(store::CrashPoint::kPreMigrationCommit,
               /*expect_committed=*/false);
}

TEST(MigrationCrashTest, PostCommitPreMetaCrashRollsForward) {
  RunCrashSeam(store::CrashPoint::kPostMigrationCommitPreMeta,
               /*expect_committed=*/true);
}

TEST(MigrationCrashTest, PostCommitTrafficOnMovedEdgesRecoversExact) {
  // Crash between the commit and the phase-5 cleanup, but keep serving
  // first: post-commit deliveries on the moved edges land in the target's
  // WAL *after* S_B yet *before* the splice point, so recovery defers and
  // re-applies them after the sidecars. By then the replay of later
  // non-deferred records has advanced the strict clock past their
  // timestamps — they must go through the anchored out-of-order path, or
  // their mass is silently lost.
  Rng rng(89);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream =
      CommunityBiasedStream(g, data.truth.labels, 25, 0.05, 4.0, rng);
  const std::string dir = TempDir("anc_rebalance_post_commit_traffic");

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = data.truth.labels;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;
  const std::vector<NodeId> moving = CommunityMembers(data, 1);

  // Post-commit traffic interleaving moved-community edges with the
  // target's own community: each moved-edge record is followed by a
  // later-timestamped community-3 record in shard 3's WAL.
  std::vector<EdgeId> moved_edges;
  std::vector<EdgeId> target_edges;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    if (data.truth.labels[u] == 1 && data.truth.labels[v] == 1) {
      moved_edges.push_back(e);
    }
    if (data.truth.labels[u] == 3 && data.truth.labels[v] == 3) {
      target_edges.push_back(e);
    }
  }
  ASSERT_FALSE(moved_edges.empty());
  ASSERT_FALSE(target_edges.empty());
  ActivationStream post;
  double time = 26.0;  // past the base stream's clock
  for (int i = 0; i < 40; ++i) {
    post.push_back({moved_edges[i % moved_edges.size()], time});
    time += 0.01;
    post.push_back({target_edges[i % target_edges.size()], time});
    time += 0.01;
  }

  {
    auto created = ShardedServer::Create(g, config, options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ShardedServer& server = *created.value();
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.SubmitStream(stream).ok());
    ASSERT_TRUE(server.FlushDurable(kAwait).ok());

    // Commit the migration but die before shards.meta / cleanup: the
    // committed journal and the sidecars stay behind.
    store::TestHooks::ArmCrash(
        store::CrashPoint::kPostMigrationCommitPreMeta, /*skip=*/0);
    Migrator migrator(&server);
    const Status status = migrator.Migrate(moving, 3);
    store::TestHooks::Disarm();
    ASSERT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
    ASSERT_GT(server.assignment_epoch(), 1u);

    // The swap is live: post-commit traffic on the moved edges routes to
    // the new owner while the journal still owns the move on disk.
    ASSERT_TRUE(server.SubmitStream(post).ok());
    ASSERT_TRUE(server.FlushDurable(kAwait).ok());
    server.Stop();
  }
  EXPECT_TRUE(std::filesystem::exists(rebalance::JournalPath(dir)));

  auto recovered = ShardedServer::RecoverAll(dir, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ShardedServer& server = *recovered.value();
  EXPECT_EQ(server.router()->NodeOwner(moving[0]), 3u);
  ASSERT_TRUE(server.Start().ok());

  AncIndex oracle(g, config);
  ASSERT_TRUE(oracle.ApplyStream(stream).ok());
  ASSERT_TRUE(oracle.ApplyStream(post).ok());
  ExpectMatchesOracle(server, oracle, "post-commit traffic recovery");
  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(LiveMigrationTest, RolledBackImportMarksTargetDirtyAndRefusesRetry) {
  // An abort cannot undo imports already applied to the target's live
  // index (they never touch its WAL): retrying the migration would splice
  // the same history again and double-count. The rollback must poison the
  // target for further imports — from any Migrator instance — while other
  // targets keep working.
  Rng rng(97);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream =
      CommunityBiasedStream(g, data.truth.labels, 25, 0.05, 4.0, rng);
  const std::string dir = TempDir("anc_rebalance_dirty_target");

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = data.truth.labels;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;
  auto created = ShardedServer::Create(g, config, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedServer& server = *created.value();
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  ASSERT_TRUE(server.FlushDurable(kAwait).ok());

  // Fail after the sidecar-0 import reached shard 3's live index.
  const std::vector<NodeId> moving = CommunityMembers(data, 1);
  store::TestHooks::ArmCrash(store::CrashPoint::kPreMigrationCommit,
                             /*skip=*/0);
  Migrator migrator(&server);
  const Status status = migrator.Migrate(moving, 3);
  store::TestHooks::Disarm();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(server.assignment_epoch(), 1u);  // rolled back
  EXPECT_TRUE(server.shard_import_dirty(3));
  EXPECT_FALSE(server.shard_import_dirty(0));

  // Retrying into the polluted target is refused — by the same Migrator
  // and by a freshly constructed one.
  EXPECT_EQ(migrator.Migrate(moving, 3).code(),
            StatusCode::kFailedPrecondition);
  Migrator other(&server);
  EXPECT_EQ(other.Migrate(moving, 3).code(),
            StatusCode::kFailedPrecondition);

  // A clean target still accepts the move, and the merged answers stay
  // exact: shard 3's polluted copies are never authoritative (the
  // vote-ownership merge ignores non-owner votes).
  ASSERT_TRUE(migrator.Migrate(moving, 2).ok());
  EXPECT_EQ(server.router()->NodeOwner(moving[0]), 2u);
  ASSERT_TRUE(server.Flush(kAwait).ok());
  AncIndex oracle(g, config);
  ASSERT_TRUE(oracle.ApplyStream(stream).ok());
  ExpectMatchesOracle(server, oracle, "after dirty-target rollback");
  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(LiveMigrationTest, ServerIssuedIdsKeepArchivesDistinctAcrossMigrators) {
  // Migration ids name the import archives in the target's shard
  // directory — the only copy of the moved edges' pre-import history. Two
  // Migrator instances on one server (the Rebalancer's internal one plus
  // a directly constructed one) must never reuse an id, even when a
  // failed attempt has consumed one without bumping the assignment epoch.
  Rng rng(101);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream =
      CommunityBiasedStream(g, data.truth.labels, 25, 0.05, 4.0, rng);
  const std::string dir = TempDir("anc_rebalance_distinct_ids");

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = data.truth.labels;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;
  auto created = ShardedServer::Create(g, config, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedServer& server = *created.value();
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  ASSERT_TRUE(server.FlushDurable(kAwait).ok());

  // One attempt dies before any import (and before the epoch could bump),
  // consuming a migration id with no archive to show for it.
  Migrator first(&server);
  store::TestHooks::ArmCrash(store::CrashPoint::kMidMigrationImport,
                             /*skip=*/0);
  ASSERT_FALSE(first.Migrate(CommunityMembers(data, 1), 0).ok());
  store::TestHooks::Disarm();
  EXPECT_FALSE(server.shard_import_dirty(0));  // died before any import

  // Two successful migrations into the same target, via different
  // Migrator instances: each must archive its own sidecar pair.
  ASSERT_TRUE(first.Migrate(CommunityMembers(data, 1), 0).ok());
  Migrator second(&server);
  ASSERT_TRUE(second.Migrate(CommunityMembers(data, 2), 0).ok());
  const std::string shard0_dir =
      (std::filesystem::path(dir) / "shard-0").string();
  EXPECT_EQ(rebalance::ListImportArchives(shard0_dir).size(), 4u);

  ASSERT_TRUE(server.Flush(kAwait).ok());
  AncIndex oracle(g, config);
  ASSERT_TRUE(oracle.ApplyStream(stream).ok());
  ExpectMatchesOracle(server, oracle, "after two-coordinator migrations");
  server.Stop();
  std::filesystem::remove_all(dir);
}

// --- Rebalancer loop ------------------------------------------------------

TEST(RebalancerTest, DriftTriggersMigrationsThatReduceTheCut) {
  Rng rng(79);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  const std::string dir = TempDir("anc_rebalance_loop");

  // Misplace community 0: alternate its members between shards 0 and 1 so
  // roughly half its edges are cut, then drive traffic through it.
  std::vector<uint32_t> assignment = data.truth.labels;
  const std::vector<NodeId> hot = CommunityMembers(data, 0);
  for (size_t i = 0; i < hot.size(); ++i) {
    assignment[hot[i]] = i % 2 == 0 ? 0 : 1;
  }

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = assignment;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;
  auto created = ShardedServer::Create(g, TestConfig(), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedServer& server = *created.value();
  ASSERT_TRUE(server.Start().ok());
  const double static_cut = server.partition_stats().cut_ratio;
  EXPECT_GT(static_cut, 0.0);

  RebalancerOptions rebalancer_options;
  rebalancer_options.monitor.min_window_accepted = 256;
  rebalancer_options.monitor.consecutive_windows = 2;
  rebalancer_options.plan.max_moves = 64;
  Rebalancer rebalancer(&server, rebalancer_options);

  // Only community 0's edges fire: the observed cut ratio is the cut
  // fraction *of the hot community* (~0.5), far above the static ratio.
  std::vector<EdgeId> hot_edges;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    if (data.truth.labels[u] == 0 && data.truth.labels[v] == 0) {
      hot_edges.push_back(e);
    }
  }
  ASSERT_FALSE(hot_edges.empty());

  rebalance::RebalanceOutcome outcome;
  double time = 1.0;
  for (int window = 0; window < 4 && !outcome.triggered; ++window) {
    for (int i = 0; i < 300; ++i) {
      const Activation activation{hot_edges[i % hot_edges.size()], time};
      time += 0.001;
      ASSERT_TRUE(server.Submit(activation).ok());
      rebalancer.Observe(activation);
    }
    ASSERT_TRUE(server.Flush(kAwait).ok());
    outcome = rebalancer.Step();
  }
  ASSERT_TRUE(outcome.triggered) << "drift never tripped the monitor";
  EXPECT_GT(rebalancer.monitor().observed_cut_ratio(), static_cut);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_GT(outcome.migrations, 0u);
  EXPECT_GT(outcome.migrated_vertices, 0u);
  EXPECT_GT(server.assignment_epoch(), 1u);

  // The executed moves consolidated the hot community: the live router's
  // static cut shrank.
  const PartitionStats after =
      ComputeStats(g, server.router()->partition());
  EXPECT_LT(after.cut_ratio, static_cut);

  if (obs::kMetricsEnabled) {
    const obs::StatsSnapshot stats = server.Stats();
    EXPECT_GT(stats.counter("anc.rebalance.windows"), 0u);
    EXPECT_GT(stats.counter("anc.rebalance.triggers"), 0u);
    EXPECT_GT(stats.counter("anc.rebalance.migrations"), 0u);
    EXPECT_GT(stats.counter("anc.rebalance.moved_vertices"), 0u);
    EXPECT_GT(stats.gauge("anc.rebalance.observed_cut_x1000"), 0);
  }
  server.Stop();
  std::filesystem::remove_all(dir);
}

// --- Migration stress (ASan/TSan tiers) -----------------------------------

TEST(MigrationStressTest, ConcurrentIngestQueriesAndMigrationsStayExact) {
  Rng rng(83);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream =
      CommunityBiasedStream(g, data.truth.labels, 40, 0.05, 4.0, rng);
  const std::string dir = TempDir("anc_rebalance_stress");

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = data.truth.labels;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;
  auto created = ShardedServer::Create(g, config, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedServer& server = *created.value();
  ASSERT_TRUE(server.Start().ok());

  // One producer replays the stream, one reader hammers the merged query
  // surfaces, and the coordinator consolidates three communities onto
  // shard 0 — three live migrations against full concurrency.
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (const Activation& activation : stream) {
      ASSERT_TRUE(server.Submit(activation).ok());
    }
  });
  std::thread reader([&] {
    uint64_t queries = 0;
    while (!done.load(std::memory_order_acquire)) {
      const ShardedView view = server.View();
      (void)view.Clusters(view.DefaultLevel());
      if (++queries % 4 == 0) std::this_thread::yield();
    }
  });

  Migrator migrator(&server);
  for (const uint32_t community : {1u, 2u, 3u}) {
    const Status status =
        migrator.Migrate(CommunityMembers(data, community), 0);
    ASSERT_TRUE(status.ok()) << "community " << community << ": "
                             << status.ToString();
  }
  producer.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(migrator.migrations(), 3u);

  // Everything ends up owned by shard 0, and the merged answers are still
  // byte-identical to the unsharded oracle.
  ASSERT_TRUE(server.Flush(kAwait).ok());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(server.router()->NodeOwner(v), 0u) << "node " << v;
  }
  AncIndex oracle(g, config);
  ASSERT_TRUE(oracle.ApplyStream(stream).ok());
  ExpectMatchesOracle(server, oracle, "after migration storm");
  server.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace anc
