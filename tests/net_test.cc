// Networked front-end tests (src/net/): RPC frame/body codecs under the
// PR 7 parser discipline (garbage, truncation and oversized lengths must
// yield Status, never a crash), the epoch-keyed query cache (byte-identity
// within an epoch, wholesale invalidation on publish), per-tenant quota
// rejection, loopback end-to-end byte-identity against the in-process
// serving stacks (AncServer and ShardedServer), and the WAL-shipping
// replication chain: follower reads never claim tickets past the leader's
// ship mark, the min_seq barrier refuses under an injected leader stall,
// and the replica-set client falls back to the leader.

#include <chrono>
#include <cstring>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/anc.h"
#include "datasets/synthetic.h"
#include "net/backend.h"
#include "net/cache.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/replica.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/server.h"
#include "shard/sharded_server.h"
#include "store/wal.h"
#include "util/rng.h"

namespace anc {
namespace {

using net::Backend;
using net::ByteReader;
using net::Client;
using net::ClustersBody;
using net::Follower;
using net::FollowerBackend;
using net::LogChunkBody;
using net::MembersBody;
using net::NetServer;
using net::NetServerOptions;
using net::Op;
using net::PullLogBody;
using net::QueryBody;
using net::QueryCache;
using net::QueryCacheOptions;
using net::ReplicaSetClient;
using net::ReplicationPuller;
using net::ServerBackend;
using net::ShardedBackend;
using net::SubmitAck;
using net::SubmitBody;
using net::WatermarkBody;
using net::ZoomBody;

constexpr std::chrono::milliseconds kAwait{5000};

AncConfig SmallConfig() {
  AncConfig config;
  config.pyramid.num_pyramids = 3;
  config.pyramid.seed = 7;
  config.mode = AncMode::kOnline;
  return config;
}

GroundTruthGraph SmallCommunityGraph(uint64_t seed = 11) {
  PlantedPartitionParams pp;
  pp.num_communities = 4;
  pp.min_size = 10;
  pp.max_size = 14;
  Rng rng(seed);
  return PlantedPartition(pp, rng);
}

// Activation times must advance monotonically across batches (the ingest
// queue rejects regressed timestamps), so later batches pass a time base.
std::vector<Activation> MakeActivations(const Graph& g, size_t count,
                                        uint64_t seed = 3, double t0 = 0.0) {
  Rng rng(seed);
  std::vector<Activation> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(Activation{
        static_cast<EdgeId>(rng.Next() % g.NumEdges()),
        t0 + static_cast<double>(i + 1)});
  }
  return out;
}

// A started leader stack: index + AncServer + ServerBackend + NetServer,
// torn down in reverse order.
struct LeaderStack {
  std::unique_ptr<AncIndex> index;
  std::unique_ptr<serve::AncServer> server;
  std::unique_ptr<ServerBackend> backend;
  std::unique_ptr<NetServer> net;

  static LeaderStack Start(const Graph& graph, NetServerOptions net_options = {},
                           ServerBackend::Options backend_options = {}) {
    LeaderStack s;
    auto created = AncIndex::Create(graph, SmallConfig());
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    s.index = std::move(created).value();
    s.server = std::make_unique<serve::AncServer>(s.index.get(),
                                                  serve::ServeOptions{});
    EXPECT_TRUE(s.server->Start().ok());
    s.backend =
        std::make_unique<ServerBackend>(s.server.get(), backend_options);
    s.net = std::make_unique<NetServer>(s.backend.get(), net_options);
    Status started = s.net->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return s;
  }

  LeaderStack() = default;
  LeaderStack(LeaderStack&&) = default;

  ~LeaderStack() {
    if (net) net->Stop();
    if (server) server->Stop();
  }
};

// --- Frame codec ----------------------------------------------------------

TEST(NetProtocolTest, FrameRoundTrip) {
  std::string wire;
  net::AppendFrame(&wire, "hello payload");
  std::string_view payload;
  size_t consumed = 0;
  Status s = net::DecodeFrame(reinterpret_cast<const uint8_t*>(wire.data()),
                              wire.size(), &payload, &consumed);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(payload, "hello payload");
  EXPECT_EQ(consumed, wire.size());
}

TEST(NetProtocolTest, TruncatedFrameIsOutOfRange) {
  std::string wire;
  net::AppendFrame(&wire, "a longer payload for truncation");
  std::string_view payload;
  size_t consumed = 0;
  // Every proper prefix must report OutOfRange (read more), never crash.
  for (size_t len = 0; len < wire.size(); ++len) {
    Status s = net::DecodeFrame(reinterpret_cast<const uint8_t*>(wire.data()),
                                len, &payload, &consumed);
    ASSERT_FALSE(s.ok()) << "prefix " << len;
    EXPECT_EQ(s.code(), StatusCode::kOutOfRange) << "prefix " << len;
  }
}

TEST(NetProtocolTest, BadMagicOversizeAndCrcAreInvalidArgument) {
  std::string wire;
  net::AppendFrame(&wire, "payload");
  std::string_view payload;
  size_t consumed = 0;

  std::string bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_EQ(net::DecodeFrame(reinterpret_cast<const uint8_t*>(bad_magic.data()),
                             bad_magic.size(), &payload, &consumed)
                .code(),
            StatusCode::kInvalidArgument);

  std::string oversize = wire;
  const uint32_t huge = net::kMaxFramePayloadBytes + 1;
  std::memcpy(&oversize[4], &huge, sizeof(huge));
  EXPECT_EQ(net::DecodeFrame(reinterpret_cast<const uint8_t*>(oversize.data()),
                             oversize.size(), &payload, &consumed)
                .code(),
            StatusCode::kInvalidArgument);

  std::string bad_crc = wire;
  bad_crc.back() ^= 0x5a;
  EXPECT_EQ(net::DecodeFrame(reinterpret_cast<const uint8_t*>(bad_crc.data()),
                             bad_crc.size(), &payload, &consumed)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(NetProtocolTest, GarbageNeverCrashes) {
  Rng rng(99);
  std::string_view payload;
  size_t consumed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk(rng.Next() % 64, '\0');
    for (char& c : junk) c = static_cast<char>(rng.Next());
    Status s = net::DecodeFrame(reinterpret_cast<const uint8_t*>(junk.data()),
                                junk.size(), &payload, &consumed);
    // Random bytes essentially never form a valid CRC frame; either error
    // code is acceptable, a crash is not.
    if (s.ok()) {
      ADD_FAILURE() << "random junk decoded as a frame";
    }
  }
}

TEST(NetProtocolTest, RequestHeaderRejectsUnknownOp) {
  std::string payload;
  net::PutU64(&payload, 1);    // request_id
  net::PutU64(&payload, 0);    // tenant_id
  net::PutU16(&payload, 999);  // unknown op
  net::PutU16(&payload, 0);    // flags
  ByteReader in(payload);
  net::RequestHeader header;
  EXPECT_EQ(net::DecodeRequestHeader(&in, &header).code(),
            StatusCode::kInvalidArgument);
}

TEST(NetProtocolTest, BodiesRoundTrip) {
  {
    SubmitBody body;
    body.activations = {{3, 1.5}, {7, 2.5}};
    std::string bytes;
    net::AppendSubmitBody(&bytes, body);
    ByteReader in(bytes);
    SubmitBody out;
    ASSERT_TRUE(net::DecodeSubmitBody(&in, &out).ok());
    ASSERT_EQ(out.activations.size(), 2u);
    EXPECT_EQ(out.activations[1].edge, 7u);
    EXPECT_DOUBLE_EQ(out.activations[1].time, 2.5);
  }
  {
    WatermarkBody body{42, 6.5, 40, 6.0, 9};
    std::string bytes;
    net::AppendWatermarkBody(&bytes, body);
    ByteReader in(bytes);
    WatermarkBody out;
    ASSERT_TRUE(net::DecodeWatermarkBody(&in, &out).ok());
    EXPECT_EQ(out.seq, 42u);
    EXPECT_EQ(out.durable_seq, 40u);
    EXPECT_EQ(out.epoch, 9u);
  }
  {
    ClustersBody body;
    body.epoch = 5;
    body.watermark_seq = 17;
    body.level = 2;
    body.num_clusters = 3;
    body.labels = {0, 1, 2, 1};
    std::string bytes;
    net::AppendClustersBody(&bytes, body);
    ByteReader in(bytes);
    ClustersBody out;
    ASSERT_TRUE(net::DecodeClustersBody(&in, &out).ok());
    EXPECT_EQ(out.labels, body.labels);
    EXPECT_EQ(out.epoch, 5u);
    EXPECT_EQ(out.watermark_seq, 17u);
    // The uniform [epoch][watermark_seq] prefix the server's barrier check
    // relies on (CachedCoversBarrier reads the u64 at offset 8).
    ASSERT_GE(bytes.size(), 16u);
    uint64_t prefix_epoch = 0, prefix_seq = 0;
    std::memcpy(&prefix_epoch, bytes.data(), 8);
    std::memcpy(&prefix_seq, bytes.data() + 8, 8);
    EXPECT_EQ(prefix_epoch, 5u);
    EXPECT_EQ(prefix_seq, 17u);
  }
  {
    MembersBody body;
    body.epoch = 4;
    body.watermark_seq = 10;
    body.level = 1;
    body.members = {2, 4, 8};
    std::string bytes;
    net::AppendMembersBody(&bytes, body);
    ByteReader in(bytes);
    MembersBody out;
    ASSERT_TRUE(net::DecodeMembersBody(&in, &out).ok());
    EXPECT_EQ(out.members, body.members);
  }
  {
    ZoomBody body;
    body.epoch = 3;
    body.watermark_seq = 6;
    body.default_level = 2;
    body.cluster_sizes = {48, 12, 4};
    std::string bytes;
    net::AppendZoomBody(&bytes, body);
    ByteReader in(bytes);
    ZoomBody out;
    ASSERT_TRUE(net::DecodeZoomBody(&in, &out).ok());
    EXPECT_EQ(out.cluster_sizes, body.cluster_sizes);
  }
  {
    LogChunkBody body;
    body.ship_seq = 12;
    body.frames = "opaque-frame-bytes";
    std::string bytes;
    net::AppendLogChunkBody(&bytes, body);
    ByteReader in(bytes);
    LogChunkBody out;
    ASSERT_TRUE(net::DecodeLogChunkBody(&in, &out).ok());
    EXPECT_EQ(out.ship_seq, 12u);
    EXPECT_EQ(out.frames, body.frames);
  }
}

TEST(NetProtocolTest, TruncatedBodyIsRejected) {
  ClustersBody body;
  body.num_clusters = 2;
  body.labels = {0, 1, 1};
  std::string bytes;
  net::AppendClustersBody(&bytes, body);
  // Chop the label array short: the count no longer matches the remaining
  // payload and the decoder must refuse before allocating.
  std::string chopped = bytes.substr(0, bytes.size() - 2);
  ByteReader in(chopped);
  ClustersBody out;
  EXPECT_FALSE(net::DecodeClustersBody(&in, &out).ok());
}

TEST(NetProtocolTest, CanonicalQueryArgsExcludesMinSeq) {
  QueryBody a;
  a.node = 5;
  a.level = 2;
  a.min_seq = 0;
  QueryBody b = a;
  b.min_seq = 999;  // the barrier gates admission, not the answer
  EXPECT_EQ(net::CanonicalQueryArgs(Op::kLocalCluster, a),
            net::CanonicalQueryArgs(Op::kLocalCluster, b));
  QueryBody c = a;
  c.node = 6;
  EXPECT_NE(net::CanonicalQueryArgs(Op::kLocalCluster, a),
            net::CanonicalQueryArgs(Op::kLocalCluster, c));
  EXPECT_NE(net::CanonicalQueryArgs(Op::kLocalCluster, a),
            net::CanonicalQueryArgs(Op::kZoom, a));
}

// --- Query cache ----------------------------------------------------------

TEST(QueryCacheTest, HitMissAndInvalidate) {
  QueryCacheOptions options;
  options.byte_budget = 1 << 20;
  options.num_shards = 2;
  QueryCache cache(options);

  std::string payload;
  EXPECT_FALSE(cache.Get(1, Op::kClusters, "args", &payload));
  cache.Put(1, Op::kClusters, "args", "response-bytes");
  ASSERT_TRUE(cache.Get(1, Op::kClusters, "args", &payload));
  EXPECT_EQ(payload, "response-bytes");

  // A different epoch is a different key.
  EXPECT_FALSE(cache.Get(2, Op::kClusters, "args", &payload));

  cache.Put(2, Op::kClusters, "args", "newer-bytes");
  cache.InvalidateBelowEpoch(2);
  EXPECT_FALSE(cache.Get(1, Op::kClusters, "args", &payload));
  ASSERT_TRUE(cache.Get(2, Op::kClusters, "args", &payload));
  EXPECT_EQ(payload, "newer-bytes");
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(QueryCacheTest, EvictsUnderByteBudget) {
  QueryCacheOptions options;
  options.byte_budget = 512;
  options.num_shards = 1;
  QueryCache cache(options);
  const std::string value(100, 'v');
  for (int i = 0; i < 32; ++i) {
    cache.Put(1, Op::kClusters, "key-" + std::to_string(i), value);
  }
  EXPECT_LE(cache.bytes(), 512u);
  EXPECT_GE(cache.entries(), 1u);
}

TEST(QueryCacheTest, ZeroBudgetDisables) {
  QueryCacheOptions options;
  options.byte_budget = 0;
  QueryCache cache(options);
  cache.Put(1, Op::kClusters, "args", "bytes");
  std::string payload;
  EXPECT_FALSE(cache.Get(1, Op::kClusters, "args", &payload));
  EXPECT_EQ(cache.entries(), 0u);
}

// --- Loopback end-to-end: leader over one AncServer -----------------------

TEST(NetServerTest, EndToEndMatchesInProcessView) {
  GroundTruthGraph gt = SmallCommunityGraph();
  LeaderStack stack = LeaderStack::Start(gt.graph);

  auto connected = Client::Connect("127.0.0.1", stack.net->port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client& client = **connected;

  Result<WatermarkBody> ping = client.Ping();
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();

  std::vector<Activation> batch = MakeActivations(gt.graph, 64);
  Result<SubmitAck> ack = client.SubmitBatch(batch);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->accepted, batch.size());
  EXPECT_GE(ack->last_seq, batch.size());

  Result<WatermarkBody> flushed = client.Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_GE(flushed->seq, ack->last_seq);

  // Remote answers must byte-equal the in-process published view.
  std::shared_ptr<const serve::ClusterView> view = stack.server->View();
  Result<ClustersBody> remote = client.Clusters(/*level=*/0);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  const Clustering local = view->Clusters(view->DefaultLevel());
  EXPECT_EQ(remote->labels, local.labels);
  EXPECT_EQ(remote->num_clusters, local.num_clusters);
  EXPECT_EQ(remote->level, view->DefaultLevel());
  EXPECT_EQ(remote->epoch, view->epoch());

  for (NodeId v = 0; v < gt.graph.NumNodes(); v += 7) {
    Result<MembersBody> members = client.LocalCluster(v);
    ASSERT_TRUE(members.ok()) << members.status().ToString();
    EXPECT_EQ(members->members, view->LocalCluster(v, view->DefaultLevel()))
        << "node " << v;
  }

  Result<ZoomBody> zoom = client.Zoom(0);
  ASSERT_TRUE(zoom.ok());
  ASSERT_EQ(zoom->cluster_sizes.size(), view->num_levels());
  for (uint32_t level = 1; level <= view->num_levels(); ++level) {
    EXPECT_EQ(zoom->cluster_sizes[level - 1],
              view->LocalCluster(0, level).size());
  }

  Result<std::string> health = client.HealthJson();
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->find("\"role\""), std::string::npos);

  Result<std::string> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("anc_net_requests"), std::string::npos);
}

TEST(NetServerTest, CacheHitIsByteIdenticalAndInvalidatedOnPublish) {
  GroundTruthGraph gt = SmallCommunityGraph();
  LeaderStack stack = LeaderStack::Start(gt.graph);

  auto connected = Client::Connect("127.0.0.1", stack.net->port());
  ASSERT_TRUE(connected.ok());
  Client& client = **connected;

  std::vector<Activation> batch = MakeActivations(gt.graph, 32);
  ASSERT_TRUE(client.SubmitBatch(batch).ok());
  ASSERT_TRUE(client.Flush().ok());

  Result<ClustersBody> first = client.Clusters();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(client.last_flags() & net::kFlagCacheHit, 0);

  Result<ClustersBody> second = client.Clusters();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(client.last_flags() & net::kFlagCacheHit, 0)
      << "identical query within the epoch must be served from cache";

  // Cached vs uncached must be byte-identical within an epoch.
  EXPECT_EQ(second->epoch, first->epoch);
  EXPECT_EQ(second->watermark_seq, first->watermark_seq);
  EXPECT_EQ(second->labels, first->labels);
  EXPECT_EQ(second->num_clusters, first->num_clusters);
  EXPECT_GE(stack.net->cache().hits(), 1u);

  // Publish a new snapshot: the next request observes a newer epoch and
  // the cache is invalidated wholesale.
  std::vector<Activation> more = MakeActivations(gt.graph, 32, /*seed=*/5, /*t0=*/1000.0);
  ASSERT_TRUE(client.SubmitBatch(more).ok());
  ASSERT_TRUE(client.Flush().ok());

  Result<ClustersBody> third = client.Clusters();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(client.last_flags() & net::kFlagCacheHit, 0)
      << "publish must invalidate the cache";
  EXPECT_GT(third->epoch, first->epoch);

  // And the fresh epoch caches again.
  Result<ClustersBody> fourth = client.Clusters();
  ASSERT_TRUE(fourth.ok());
  EXPECT_NE(client.last_flags() & net::kFlagCacheHit, 0);
  EXPECT_EQ(fourth->labels, third->labels);
}

TEST(NetServerTest, TenantQuotaRejectsWhenExhausted) {
  GroundTruthGraph gt = SmallCommunityGraph();
  NetServerOptions options;
  options.admission.tenant_quota_per_s = 0.001;  // effectively no refill
  options.admission.tenant_quota_burst = 2.0;
  LeaderStack stack = LeaderStack::Start(gt.graph, options);

  Client::Options tenant;
  tenant.tenant_id = 7;
  auto connected = Client::Connect("127.0.0.1", stack.net->port(), tenant);
  ASSERT_TRUE(connected.ok());
  Client& client = **connected;

  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Ping().ok());
  Result<WatermarkBody> third = client.Ping();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);

  // Another tenant has its own bucket.
  Client::Options other;
  other.tenant_id = 8;
  auto connected2 = Client::Connect("127.0.0.1", stack.net->port(), other);
  ASSERT_TRUE(connected2.ok());
  EXPECT_TRUE((*connected2)->Ping().ok());
}

TEST(NetServerTest, TenantQuotaMapIsBounded) {
  serve::AdmissionOptions options;
  options.tenant_quota_per_s = 0.001;  // effectively no refill
  options.tenant_quota_burst = 1.0;
  options.tenant_quota_max_tenants = 4;
  serve::AdmissionController admission(options);

  ASSERT_TRUE(admission.AdmitTenant(1).ok());
  EXPECT_EQ(admission.AdmitTenant(1).code(), StatusCode::kUnavailable);

  // Tenant ids are unauthenticated wire input: cycling ids must evict old
  // buckets instead of growing the map without bound.
  for (uint64_t id = 2; id <= 64; ++id) {
    ASSERT_TRUE(admission.AdmitTenant(id).ok()) << "tenant " << id;
  }
  // Tenant 1's exhausted bucket was evicted along the way, so it is
  // re-seen with a fresh burst — the documented cost of bounding the map.
  EXPECT_TRUE(admission.AdmitTenant(1).ok());
}

TEST(NetServerTest, ServerSurvivesGarbageConnection) {
  GroundTruthGraph gt = SmallCommunityGraph();
  LeaderStack stack = LeaderStack::Start(gt.graph);

  // A raw connection that sends junk gets dropped without hurting others.
  Result<int> fd = net::ConnectTcp("127.0.0.1", stack.net->port());
  ASSERT_TRUE(fd.ok());
  std::string junk = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(net::SendAll(*fd, junk.data(), junk.size()).ok());
  char buf[16];
  // The server drops the connection; the read returns EOF or error.
  (void)net::RecvAll(*fd, buf, sizeof(buf));
  net::CloseFd(*fd);

  auto connected = Client::Connect("127.0.0.1", stack.net->port());
  ASSERT_TRUE(connected.ok());
  EXPECT_TRUE((*connected)->Ping().ok());
}

// --- Loopback end-to-end: sharded leader ----------------------------------

TEST(NetServerTest, ShardedBackendMatchesShardedView) {
  GroundTruthGraph gt = SmallCommunityGraph();
  shard::ShardedOptions shard_options;
  shard_options.partition.num_shards = 2;
  auto created =
      shard::ShardedServer::Create(gt.graph, SmallConfig(), shard_options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  shard::ShardedServer& sharded = **created;
  ASSERT_TRUE(sharded.Start().ok());

  ShardedBackend backend(&sharded);
  NetServer net_server(&backend, NetServerOptions{});
  ASSERT_TRUE(net_server.Start().ok());

  auto connected = Client::Connect("127.0.0.1", net_server.port());
  ASSERT_TRUE(connected.ok());
  Client& client = **connected;

  std::vector<Activation> batch = MakeActivations(gt.graph, 48);
  Result<SubmitAck> ack = client.SubmitBatch(batch);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->accepted, batch.size());
  ASSERT_TRUE(client.Flush().ok());

  shard::ShardedView view = sharded.View();
  const Clustering local = view.Clusters();
  Result<ClustersBody> remote = client.Clusters();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->labels, local.labels);
  EXPECT_EQ(remote->num_clusters, local.num_clusters);

  for (NodeId v = 0; v < gt.graph.NumNodes(); v += 9) {
    Result<MembersBody> members_remote = client.LocalCluster(v);
    ASSERT_TRUE(members_remote.ok());
    EXPECT_EQ(members_remote->members,
              view.LocalCluster(v, view.DefaultLevel()))
        << "node " << v;
  }

  // Writes route through the sharded ingest: replication pull is refused.
  Result<LogChunkBody> chunk = client.PullLog(0);
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.status().code(), StatusCode::kFailedPrecondition);

  net_server.Stop();
  sharded.Stop();
}

// --- Replication ----------------------------------------------------------

TEST(NetReplicationTest, PullLogShipsDecodableWalFrames) {
  GroundTruthGraph gt = SmallCommunityGraph();
  LeaderStack stack = LeaderStack::Start(gt.graph);

  auto connected = Client::Connect("127.0.0.1", stack.net->port());
  ASSERT_TRUE(connected.ok());
  Client& client = **connected;

  std::vector<Activation> batch = MakeActivations(gt.graph, 24);
  Result<SubmitAck> ack = client.SubmitBatch(batch);
  ASSERT_TRUE(ack.ok());
  ASSERT_TRUE(client.Flush().ok());

  Result<LogChunkBody> chunk = client.PullLog(0);
  ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
  EXPECT_GE(chunk->ship_seq, ack->last_seq);

  // The stream is byte-identical store:: WAL frames, in ticket order.
  const uint8_t* data = reinterpret_cast<const uint8_t*>(chunk->frames.data());
  size_t size = chunk->frames.size();
  uint64_t next_seq = 1;
  size_t total = 0;
  while (size > 0) {
    size_t consumed = 0;
    Result<store::WalRecord> record = store::DecodeWalFrame(data, size,
                                                            &consumed);
    ASSERT_TRUE(record.ok()) << record.status().ToString();
    EXPECT_EQ(record->first_seq, next_seq);
    next_seq = record->last_seq() + 1;
    total += record->activations.size();
    data += consumed;
    size -= consumed;
  }
  EXPECT_EQ(total, batch.size());
}

TEST(NetReplicationTest, FollowerNeverAheadOfLeaderAndBarrierHolds) {
  GroundTruthGraph gt = SmallCommunityGraph();
  LeaderStack leader = LeaderStack::Start(gt.graph);

  auto follower_created = Follower::Create(gt.graph, SmallConfig());
  ASSERT_TRUE(follower_created.ok())
      << follower_created.status().ToString();
  Follower& follower = **follower_created;

  FollowerBackend follower_backend(&follower);
  NetServer follower_net(&follower_backend, NetServerOptions{});
  ASSERT_TRUE(follower_net.Start().ok());

  auto puller_conn = Client::Connect("127.0.0.1", leader.net->port());
  ASSERT_TRUE(puller_conn.ok());
  ReplicationPuller puller(&follower, std::move(*puller_conn));
  puller.Start();

  auto client_created = ReplicaSetClient::Connect(
      "127.0.0.1", leader.net->port(),
      {{"127.0.0.1", follower_net.port()}});
  ASSERT_TRUE(client_created.ok()) << client_created.status().ToString();
  ReplicaSetClient& client = **client_created;

  std::vector<Activation> batch = MakeActivations(gt.graph, 40);
  Result<SubmitAck> ack = client.SubmitBatch(batch);
  ASSERT_TRUE(ack.ok());
  ASSERT_TRUE(client.Flush().ok());

  // Read-your-writes through the replica set: the barrier is the last
  // acked ticket, so the answer covers it whether a follower or the
  // leader serves it.
  Result<ClustersBody> remote = client.Clusters();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_GE(remote->watermark_seq, ack->last_seq);

  // Let replication catch up fully, then check the staleness invariant:
  // the follower's applied mark never exceeds the leader's ship mark.
  ASSERT_TRUE(follower.AwaitApplied(ack->last_seq, kAwait).ok());
  Result<LogChunkBody> probe =
      client.leader().PullLog(follower.applied_leader_seq());
  ASSERT_TRUE(probe.ok());
  EXPECT_LE(follower.applied_leader_seq(), probe->ship_seq);

  // Follower reads answer byte-identically to the leader at the same
  // ticket horizon (replication is deterministic replay).
  auto direct = Client::Connect("127.0.0.1", follower_net.port());
  ASSERT_TRUE(direct.ok());
  Result<ClustersBody> from_follower = (*direct)->Clusters();
  ASSERT_TRUE(from_follower.ok()) << from_follower.status().ToString();
  EXPECT_NE((*direct)->last_flags() & net::kFlagFollower, 0);
  std::shared_ptr<const serve::ClusterView> leader_view =
      leader.server->View();
  EXPECT_EQ(from_follower->labels,
            leader_view->Clusters(leader_view->DefaultLevel()).labels);

  // Injected leader stall: pause the puller, write on the leader; a
  // barrier read on the follower must refuse (never serve staler than
  // min_seq) and the replica-set client must fall back to the leader.
  puller.Pause(true);
  std::vector<Activation> more = MakeActivations(gt.graph, 16, /*seed=*/21, /*t0=*/1000.0);
  Result<SubmitAck> ack2 = client.SubmitBatch(more);
  ASSERT_TRUE(ack2.ok());
  ASSERT_TRUE(client.Flush().ok());

  EXPECT_LT(follower.applied_leader_seq(), ack2->last_seq)
      << "paused puller must not have applied the stalled writes";
  Result<ClustersBody> stalled =
      (*direct)->Clusters(/*level=*/0, /*min_seq=*/ack2->last_seq);
  ASSERT_FALSE(stalled.ok());
  EXPECT_EQ(stalled.status().code(), StatusCode::kUnavailable);

  const uint64_t fallbacks_before = client.leader_fallbacks();
  Result<ClustersBody> fallback = client.Clusters();
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_GE(fallback->watermark_seq, ack2->last_seq);
  EXPECT_GT(client.leader_fallbacks(), fallbacks_before);

  // Resume: the follower catches up and serves barrier reads again.
  puller.Pause(false);
  ASSERT_TRUE(follower.AwaitApplied(ack2->last_seq, kAwait).ok());
  Result<ClustersBody> caught_up =
      (*direct)->Clusters(/*level=*/0, /*min_seq=*/ack2->last_seq);
  ASSERT_TRUE(caught_up.ok()) << caught_up.status().ToString();
  EXPECT_GE(caught_up->watermark_seq, ack2->last_seq);

  puller.Stop();
  follower_net.Stop();
}

TEST(NetReplicationTest, MidChunkFailurePublishesPrefixAndRetryIsIdempotent) {
  GroundTruthGraph gt = SmallCommunityGraph();
  std::vector<Activation> first = MakeActivations(gt.graph, 8);
  std::vector<Activation> second =
      MakeActivations(gt.graph, 8, /*seed=*/9, /*t0=*/100.0);

  // A chunk whose second frame is corrupt: the decode fails only after the
  // first record has already been ingested (the mid-chunk failure).
  LogChunkBody torn;
  store::AppendWalFrame(&torn.frames, first.data(), first.size(),
                        /*first_seq=*/1);
  const size_t prefix_bytes = torn.frames.size();
  store::AppendWalFrame(&torn.frames, second.data(), second.size(),
                        /*first_seq=*/9);
  torn.frames[prefix_bytes + store::kWalFrameHeaderBytes] ^= 0x40;  // CRC

  auto follower_created = Follower::Create(gt.graph, SmallConfig());
  ASSERT_TRUE(follower_created.ok());
  Follower& follower = **follower_created;
  Status failed = follower.ApplyChunk(torn);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(follower.applied_leader_seq(), 8u)
      << "the fully-applied prefix must be published before the error "
         "surfaces, or the puller's retry re-applies it (divergence)";

  // Retry with duplicate delivery of the applied record plus the clean
  // tail — exactly what a re-pull from the published mark can ship.
  LogChunkBody retry;
  store::AppendWalFrame(&retry.frames, first.data(), first.size(),
                        /*first_seq=*/1);
  store::AppendWalFrame(&retry.frames, second.data(), second.size(),
                        /*first_seq=*/9);
  Status retried = follower.ApplyChunk(retry);
  ASSERT_TRUE(retried.ok()) << retried.ToString();
  EXPECT_EQ(follower.applied_leader_seq(), 16u);

  // State must match a replica that applied the stream cleanly in one
  // chunk: a double-applied record would silently diverge the labels.
  auto clean_created = Follower::Create(gt.graph, SmallConfig());
  ASSERT_TRUE(clean_created.ok());
  Follower& clean = **clean_created;
  LogChunkBody whole;
  store::AppendWalFrame(&whole.frames, first.data(), first.size(),
                        /*first_seq=*/1);
  store::AppendWalFrame(&whole.frames, second.data(), second.size(),
                        /*first_seq=*/9);
  ASSERT_TRUE(clean.ApplyChunk(whole).ok());
  std::shared_ptr<const serve::ClusterView> retried_view =
      follower.server().View();
  std::shared_ptr<const serve::ClusterView> clean_view = clean.server().View();
  EXPECT_EQ(retried_view->Clusters(retried_view->DefaultLevel()).labels,
            clean_view->Clusters(clean_view->DefaultLevel()).labels);
}

TEST(NetReplicationTest, FollowerRefusesWrites) {
  GroundTruthGraph gt = SmallCommunityGraph();
  auto follower_created = Follower::Create(gt.graph, SmallConfig());
  ASSERT_TRUE(follower_created.ok());
  Follower& follower = **follower_created;

  FollowerBackend backend(&follower);
  NetServer net_server(&backend, NetServerOptions{});
  ASSERT_TRUE(net_server.Start().ok());

  auto connected = Client::Connect("127.0.0.1", net_server.port());
  ASSERT_TRUE(connected.ok());
  Result<SubmitAck> ack = (*connected)->Submit(Activation{0, 1.0});
  ASSERT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().code(), StatusCode::kFailedPrecondition);
  net_server.Stop();
}

TEST(NetProtocolTest, PullLogBodyCarriesFollowerIdAndDecodesLegacy) {
  PullLogBody body;
  body.after_seq = 5;
  body.max_records = 9;
  body.follower_id = 77;
  std::string bytes;
  net::AppendPullLogBody(&bytes, body);

  ByteReader reader(bytes);
  PullLogBody out;
  ASSERT_TRUE(net::DecodePullLogBody(&reader, &out).ok());
  EXPECT_EQ(out.after_seq, 5u);
  EXPECT_EQ(out.max_records, 9u);
  EXPECT_EQ(out.follower_id, 77u);

  // A pre-follower_id body (just after_seq + max_records) must still
  // decode, as an anonymous pull.
  std::string legacy;
  net::PutU64(&legacy, 5);
  net::PutU32(&legacy, 9);
  ByteReader legacy_reader(legacy);
  PullLogBody legacy_out;
  ASSERT_TRUE(net::DecodePullLogBody(&legacy_reader, &legacy_out).ok());
  EXPECT_EQ(legacy_out.after_seq, 5u);
  EXPECT_EQ(legacy_out.follower_id, 0u);
}

TEST(NetReplicationTest, SlowestFollowerAckShrinksReplicationLog) {
  GroundTruthGraph gt = SmallCommunityGraph();
  auto created = AncIndex::Create(gt.graph, SmallConfig());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<AncIndex> index = std::move(created).value();
  serve::AncServer server(index.get(), serve::ServeOptions{});
  ASSERT_TRUE(server.Start().ok());

  obs::MetricsRegistry registry;
  ServerBackend backend(&server, ServerBackend::Options{}, &registry);

  std::vector<Activation> batch = MakeActivations(gt.graph, 24);
  Result<SubmitAck> ack = backend.Submit(batch.data(), batch.size());
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_EQ(ack->accepted, batch.size());
  ASSERT_TRUE(backend.Flush(kAwait).ok());
  const uint64_t last = ack->last_seq;

  const int64_t full = registry.Snapshot().gauge("anc.net.repl_log_bytes");
  ASSERT_GT(full, 0);

  // Two followers register. Neither ack covers the log yet, so nothing
  // may be trimmed — the slowest follower rules.
  PullLogBody pull;
  pull.max_records = 256;
  pull.follower_id = 1;
  pull.after_seq = 0;
  ASSERT_TRUE(backend.PullLog(pull).ok());
  pull.follower_id = 2;
  pull.after_seq = last;  // the fast follower has everything
  ASSERT_TRUE(backend.PullLog(pull).ok());
  EXPECT_EQ(registry.Snapshot().gauge("anc.net.repl_log_bytes"), full);

  // The slowest follower catches up: every entry is acked by all live
  // followers and the log shrinks to zero.
  pull.follower_id = 1;
  pull.after_seq = last;
  ASSERT_TRUE(backend.PullLog(pull).ok());
  EXPECT_EQ(registry.Snapshot().gauge("anc.net.repl_log_bytes"), 0);

  // The trimmed history is gone for good: a brand-new anonymous puller
  // starting from 0 must re-bootstrap.
  PullLogBody bootstrap;
  Result<LogChunkBody> rebooted = backend.PullLog(bootstrap);
  ASSERT_FALSE(rebooted.ok());
  EXPECT_EQ(rebooted.status().code(), StatusCode::kFailedPrecondition);

  server.Stop();
}

}  // namespace
}  // namespace anc
