#include <cmath>

#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "metrics/kmeans.h"
#include "metrics/quality.h"
#include "metrics/spectral.h"
#include "metrics/structural.h"
#include "util/rng.h"

namespace anc {
namespace {

Clustering Labels(std::vector<uint32_t> l) {
  return Clustering::FromLabels(std::move(l));
}

// ---------------------------------------------------------------- quality --

TEST(QualityTest, IdenticalClusteringsScorePerfect) {
  Clustering c = Labels({0, 0, 1, 1, 2, 2});
  EXPECT_NEAR(Nmi(c, c), 1.0, 1e-12);
  EXPECT_NEAR(Purity(c, c), 1.0, 1e-12);
  EXPECT_NEAR(F1Score(c, c), 1.0, 1e-12);
}

TEST(QualityTest, PermutedLabelsStillPerfect) {
  Clustering a = Labels({0, 0, 1, 1, 2, 2});
  Clustering b = Labels({2, 2, 0, 0, 1, 1});
  EXPECT_NEAR(Nmi(a, b), 1.0, 1e-12);
  EXPECT_NEAR(Purity(a, b), 1.0, 1e-12);
  EXPECT_NEAR(F1Score(a, b), 1.0, 1e-12);
}

TEST(QualityTest, OrthogonalClusteringsScoreLow) {
  // a splits {0..3} vs {4..7}; b takes alternating elements.
  Clustering a = Labels({0, 0, 0, 0, 1, 1, 1, 1});
  Clustering b = Labels({0, 1, 0, 1, 0, 1, 0, 1});
  EXPECT_NEAR(Nmi(a, b), 0.0, 1e-9);
  EXPECT_NEAR(Purity(a, b), 0.5, 1e-12);
}

TEST(QualityTest, NoiseNodesExcluded) {
  Clustering a = Labels({0, 0, 1, 1, kNoise, kNoise});
  Clustering b = Labels({0, 0, 1, 1, 0, 1});
  EXPECT_NEAR(Nmi(a, b), 1.0, 1e-12);
  EXPECT_NEAR(Purity(a, b), 1.0, 1e-12);
}

TEST(QualityTest, SingleClusterEdgeCases) {
  Clustering one = Labels({0, 0, 0, 0});
  Clustering split = Labels({0, 0, 1, 1});
  EXPECT_NEAR(Nmi(one, one), 1.0, 1e-12);
  EXPECT_NEAR(Nmi(one, split), 0.0, 1e-12);
  EXPECT_NEAR(Purity(one, split), 0.5, 1e-12);
}

TEST(QualityTest, PartialOverlapBetweenZeroAndOne) {
  Clustering a = Labels({0, 0, 0, 1, 1, 1});
  Clustering b = Labels({0, 0, 1, 1, 1, 1});
  const double nmi = Nmi(a, b);
  EXPECT_GT(nmi, 0.0);
  EXPECT_LT(nmi, 1.0);
  const double f1 = F1Score(a, b);
  EXPECT_GT(f1, 0.5);
  EXPECT_LT(f1, 1.0);
}

// ------------------------------------------------------------- structural --

Graph TwoTriangles() {
  GraphBuilder b;
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(0, 2).ok());
  EXPECT_TRUE(b.AddEdge(3, 4).ok());
  EXPECT_TRUE(b.AddEdge(4, 5).ok());
  EXPECT_TRUE(b.AddEdge(3, 5).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());  // bridge
  return b.Build();
}

TEST(StructuralTest, ModularityOfPlantedSplit) {
  Graph g = TwoTriangles();
  Clustering good = Labels({0, 0, 0, 1, 1, 1});
  Clustering bad = Labels({0, 1, 0, 1, 0, 1});
  const double q_good = Modularity(g, good);
  const double q_bad = Modularity(g, bad);
  EXPECT_GT(q_good, 0.3);
  EXPECT_GT(q_good, q_bad);
  // Hand computation: m = 7, in_0 = in_1 = 3, vol_0 = vol_1 = 7.
  // Q = 2 * (3/7 - (7/14)^2) = 6/7 - 0.5.
  EXPECT_NEAR(q_good, 6.0 / 7.0 - 0.5, 1e-12);
}

TEST(StructuralTest, ModularityAllInOneClusterIsZero) {
  Graph g = TwoTriangles();
  Clustering one = Labels({0, 0, 0, 0, 0, 0});
  EXPECT_NEAR(Modularity(g, one), 0.0, 1e-12);
}

TEST(StructuralTest, ConductanceOfGoodSplitIsLow) {
  Graph g = TwoTriangles();
  Clustering good = Labels({0, 0, 0, 1, 1, 1});
  // Each side: cut 1, volume 7 -> conductance 1/7.
  EXPECT_NEAR(MeanConductance(g, good), 1.0 / 7.0, 1e-12);
  Clustering bad = Labels({0, 1, 0, 1, 0, 1});
  EXPECT_GT(MeanConductance(g, bad), MeanConductance(g, good));
}

TEST(StructuralTest, WeightedModularityUsesWeights) {
  Graph g = TwoTriangles();
  Clustering split = Labels({0, 0, 0, 1, 1, 1});
  // Weight the bridge heavily: the split's modularity must drop.
  std::vector<double> w(g.NumEdges(), 1.0);
  w[*g.FindEdge(2, 3)] = 20.0;
  EXPECT_LT(Modularity(g, split, w), Modularity(g, split));
}

TEST(StructuralTest, NoiseBecomesSingletons) {
  Graph g = TwoTriangles();
  Clustering with_noise = Labels({0, 0, 0, kNoise, kNoise, kNoise});
  // Must not crash and must count bridge + right-triangle edges as cut.
  const double q = Modularity(g, with_noise);
  EXPECT_LT(q, 0.3);  // singletons hurt modularity
}

// ----------------------------------------------------------------- kmeans --

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(1);
  std::vector<double> points;
  const uint32_t per_blob = 50;
  for (uint32_t i = 0; i < per_blob; ++i) {
    points.push_back(0.0 + 0.1 * rng.NextDouble());
    points.push_back(0.0 + 0.1 * rng.NextDouble());
  }
  for (uint32_t i = 0; i < per_blob; ++i) {
    points.push_back(5.0 + 0.1 * rng.NextDouble());
    points.push_back(5.0 + 0.1 * rng.NextDouble());
  }
  std::vector<uint32_t> labels = KMeans(points, 2 * per_blob, 2, 2, 50, rng);
  for (uint32_t i = 1; i < per_blob; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (uint32_t i = per_blob + 1; i < 2 * per_blob; ++i) {
    EXPECT_EQ(labels[i], labels[per_blob]);
  }
  EXPECT_NE(labels[0], labels[per_blob]);
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng rng(2);
  std::vector<double> points = {0.0, 1.0, 2.0};
  std::vector<uint32_t> labels = KMeans(points, 3, 1, 10, 10, rng);
  for (uint32_t l : labels) EXPECT_LT(l, 3u);
}

// --------------------------------------------------------------- spectral --

TEST(SpectralTest, RecoversPlantedCommunities) {
  Rng rng(3);
  PlantedPartitionParams params;
  params.num_communities = 4;
  params.min_size = 25;
  params.max_size = 25;
  params.p_in = 0.5;
  params.mixing = 0.10;
  GroundTruthGraph data = PlantedPartition(params, rng);
  SpectralParams sp;
  sp.num_clusters = 4;
  Clustering c = SpectralClustering(data.graph, {}, sp);
  EXPECT_GT(Nmi(c, data.truth), 0.8);
}

TEST(SpectralTest, WeightsSteerTheCut) {
  // Ring of 8 nodes; two opposite "heavy" arcs make the natural 2-cut.
  GraphBuilder b;
  for (NodeId v = 0; v < 8; ++v) ASSERT_TRUE(b.AddEdge(v, (v + 1) % 8).ok());
  Graph g = b.Build();
  std::vector<double> w(g.NumEdges(), 10.0);
  // Cut the ring at edges (3,4) and (7,0) by making them weightless-ish.
  w[*g.FindEdge(3, 4)] = 0.01;
  w[*g.FindEdge(7, 0)] = 0.01;
  SpectralParams sp;
  sp.num_clusters = 2;
  Clustering c = SpectralClustering(g, w, sp);
  Clustering expected = Labels({0, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_NEAR(Nmi(c, expected), 1.0, 1e-6);
}

TEST(SpectralTest, DeterministicForSeed) {
  Rng rng(4);
  Graph g = BarabasiAlbert(60, 2, rng);
  SpectralParams sp;
  sp.num_clusters = 5;
  Clustering a = SpectralClustering(g, {}, sp);
  Clustering b = SpectralClustering(g, {}, sp);
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace anc
