// Tests of the anc::check invariant-checker subsystem: each validator must
// stay silent on healthy state, report deliberately planted corruption
// (via check::TestHooks), and the differential oracle must certify that
// incremental maintenance matches a from-scratch rebuild on randomized
// activation streams (docs/correctness.md).

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "check/invariants.h"
#include "check/oracle.h"
#include "check/test_hooks.h"
#include "core/anc.h"
#include "datasets/synthetic.h"
#include "pyramid/pyramid_index.h"
#include "similarity/similarity_engine.h"
#include "util/rng.h"

namespace anc {
namespace {

using check::CheckReport;
using check::TestHooks;

bool Has(const CheckReport& report, const std::string& invariant) {
  return std::any_of(report.violations().begin(), report.violations().end(),
                     [&](const check::Violation& v) {
                       return v.invariant == invariant;
                     });
}

GroundTruthGraph MakeCommunityGraph(uint64_t seed) {
  PlantedPartitionParams params;
  params.num_communities = 4;
  params.min_size = 10;
  params.max_size = 14;
  params.p_in = 0.4;
  params.mixing = 0.15;
  Rng rng(seed);
  return PlantedPartition(params, rng);
}

AncConfig MakeConfig() {
  AncConfig config;
  config.similarity.lambda = 0.1;
  config.similarity.epsilon = 0.3;
  config.similarity.mu = 3;
  config.rep = 2;
  config.pyramid.num_pyramids = 3;
  config.pyramid.seed = 11;
  config.mode = AncMode::kOnline;
  return config;
}

/// A consistent (engine, index) pair over a community graph, with some
/// stream history applied so the state is non-trivial.
struct Fixture {
  GroundTruthGraph data;
  SimilarityEngine engine;
  std::unique_ptr<PyramidIndex> index;

  explicit Fixture(uint64_t seed = 7)
      : data(MakeCommunityGraph(seed)),
        engine(data.graph, MakeConfig().similarity) {
    engine.InitializeStatic(2);
    std::vector<double> weights(data.graph.NumEdges());
    for (EdgeId e = 0; e < weights.size(); ++e) weights[e] = engine.Weight(e);
    index = std::make_unique<PyramidIndex>(data.graph, weights,
                                           MakeConfig().pyramid);
    Rng rng(seed + 1);
    ActivationStream stream = UniformStream(data.graph, 10, 0.05, rng);
    for (const Activation& a : stream) {
      double w = 0.0;
      const Status status = engine.ApplyActivation(a.edge, a.time, &w);
      ANC_CHECK(status.ok(), "fixture stream apply failed");
      index->UpdateEdgeWeight(a.edge, w);
    }
  }
};

TEST(CheckReportTest, ToStringListsViolations) {
  CheckReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.ToString(), "ok");
  report.Add("some.invariant", "detail text");
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("some.invariant"), std::string::npos);
  EXPECT_NE(report.ToString().find("detail text"), std::string::npos);
}

TEST(CheckReportTest, CapsViolationsPerInvariant) {
  CheckReport report;
  report.set_max_per_invariant(3);
  for (int i = 0; i < 10; ++i) report.Add("capped", "x");
  report.Add("other", "y");
  EXPECT_EQ(report.violations().size(), 4u);  // 3 capped + 1 other
}

TEST(InvariantCheckerTest, HealthyStateIsSilent) {
  Fixture f;
  CheckReport report;
  check::CheckAll(f.engine, *f.index, /*deep=*/true, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(InvariantCheckerTest, NegativeAnchoredActivenessIsReported) {
  Fixture f;
  TestHooks::SetAnchoredActiveness(f.engine, 0, -1.0);
  CheckReport report;
  check::CheckActiveness(f.engine, &report);
  EXPECT_TRUE(Has(report, "activeness.non_negative")) << report.ToString();
}

TEST(InvariantCheckerTest, NanAnchoredActivenessIsReported) {
  Fixture f;
  TestHooks::SetAnchoredActiveness(f.engine, 1,
                                   std::numeric_limits<double>::quiet_NaN());
  CheckReport report;
  check::CheckActiveness(f.engine, &report);
  EXPECT_TRUE(Has(report, "activeness.non_negative")) << report.ToString();
}

TEST(InvariantCheckerTest, NodeActivityCacheDriftIsReported) {
  Fixture f;
  TestHooks::SetNodeActivity(f.engine, 3,
                             f.engine.RecomputeNodeActivity(3) + 5.0);
  CheckReport report;
  check::CheckActiveness(f.engine, &report);
  EXPECT_TRUE(Has(report, "activeness.node_activity_cache"))
      << report.ToString();
}

TEST(InvariantCheckerTest, SigmaNumeratorCacheDriftIsReported) {
  Fixture f;
  // Pick an edge with common neighbors so the numerator is meaningful.
  TestHooks::SetSigmaNumerator(f.engine, 0,
                               f.engine.RecomputeSigmaNumerator(0) + 7.0);
  CheckReport report;
  check::CheckActiveness(f.engine, &report);
  EXPECT_TRUE(Has(report, "activeness.sigma_numerator_cache"))
      << report.ToString();
  // The same corruption breaks PosM sigma agreement (Lemma 4).
  CheckReport sim_report;
  check::CheckSimilarityStore(f.engine, &sim_report);
  EXPECT_TRUE(Has(sim_report, "similarity.sigma_agreement"))
      << sim_report.ToString();
}

TEST(InvariantCheckerTest, SimilarityOutsideClampIsReported) {
  Fixture f;
  TestHooks::SetSimilarity(f.engine, 2, 0.0);  // below min: 1/S would be inf
  CheckReport report;
  check::CheckSimilarityStore(f.engine, &report);
  EXPECT_TRUE(Has(report, "similarity.clamp")) << report.ToString();

  TestHooks::SetSimilarity(f.engine, 2, 1e20);  // above max ceiling
  CheckReport report_high;
  check::CheckSimilarityStore(f.engine, &report_high);
  EXPECT_TRUE(Has(report_high, "similarity.clamp")) << report_high.ToString();
}

TEST(InvariantCheckerTest, VoteCountCorruptionIsReported) {
  Fixture f;
  const uint32_t level = f.index->DefaultLevel();
  const uint16_t votes = static_cast<uint16_t>(f.index->VotesOf(0, level));
  TestHooks::SetVoteCount(*f.index, level, 0,
                          static_cast<uint16_t>(votes + 1));
  CheckReport report;
  check::CheckPyramidStructure(*f.index, &report);
  EXPECT_TRUE(Has(report, "pyramid.vote_count")) << report.ToString();
}

TEST(InvariantCheckerTest, CellCorruptionIsReported) {
  Fixture f;
  // Reassign node 0's Voronoi cell at the finest level of pyramid 0 to a
  // node that is not a seed of that partition.
  const uint32_t level = f.index->num_levels();
  const auto& part = f.index->partition(0, level);
  NodeId non_seed = kInvalidNode;
  for (NodeId v = 0; v < f.data.graph.NumNodes(); ++v) {
    if (part.SeedOf(v) != v) {
      non_seed = v;
      break;
    }
  }
  ASSERT_NE(non_seed, kInvalidNode);
  TestHooks::SetSeedOf(*f.index, 0, level, 0, non_seed);
  CheckReport report;
  check::CheckPyramidStructure(*f.index, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(Has(report, "pyramid.cell_seed") ||
              Has(report, "pyramid.spt_cell") ||
              Has(report, "pyramid.seed_self") ||
              Has(report, "pyramid.vote_count"))
      << report.ToString();
}

TEST(InvariantCheckerTest, DistanceCorruptionIsReported) {
  Fixture f;
  // A non-seed reachable node: its SPT distance gap check must fire.
  const uint32_t level = f.index->num_levels();
  const auto& part = f.index->partition(0, level);
  NodeId victim = kInvalidNode;
  for (NodeId v = 0; v < f.data.graph.NumNodes(); ++v) {
    if (part.SeedOf(v) != kInvalidNode && part.SeedOf(v) != v) {
      victim = v;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  TestHooks::SetDist(*f.index, 0, level, victim, part.Dist(victim) + 123.0);
  CheckReport report;
  check::CheckPyramidStructure(*f.index, &report);
  EXPECT_TRUE(Has(report, "pyramid.spt_dist")) << report.ToString();
  // The deep rebuild comparison independently catches the same damage.
  CheckReport deep;
  check::CheckPartitionsAgainstRebuild(*f.index, &deep);
  EXPECT_TRUE(Has(deep, "pyramid.rebuild_distance")) << deep.ToString();
}

TEST(InvariantCheckerTest, WeightDesyncIsReported) {
  Fixture f;
  TestHooks::SetIndexWeight(*f.index, 0, f.engine.Weight(0) * 3.0);
  CheckReport report;
  check::CheckAll(f.engine, *f.index, /*deep=*/false, &report);
  EXPECT_TRUE(Has(report, "weights.agree")) << report.ToString();
}

TEST(AncIndexInvariantsTest, ValidateInvariantsOnLiveIndex) {
  GroundTruthGraph data = MakeCommunityGraph(21);
  AncConfig config = MakeConfig();
  auto created = AncIndex::Create(data.graph, config);
  ASSERT_TRUE(created.ok());
  AncIndex& anc = **created;
  EXPECT_TRUE(anc.ValidateInvariants(/*deep=*/true).ok());

  Rng rng(22);
  ActivationStream stream = UniformStream(data.graph, 20, 0.05, rng);
  ASSERT_TRUE(anc.ApplyStream(stream).ok());
  const Status status = anc.ValidateInvariants(/*deep=*/true);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// --- Differential oracle: incremental vs from-scratch rebuild ------------

TEST(DifferentialOracleTest, UniformStreamMatchesRebuild) {
  GroundTruthGraph data = MakeCommunityGraph(31);
  Rng rng(32);
  ActivationStream stream = UniformStream(data.graph, 30, 0.05, rng);
  ASSERT_FALSE(stream.empty());

  check::OracleOptions options;
  options.checkpoint_interval = 100;
  options.deep_partition_check = true;
  check::OracleResult result =
      check::RunDifferentialOracle(data.graph, MakeConfig(), stream, options);
  EXPECT_TRUE(result.ok()) << result.report.ToString();
  EXPECT_EQ(result.activations, stream.size());
  EXPECT_GE(result.checkpoints, 2u);
}

TEST(DifferentialOracleTest, CommunityBiasedStreamMatchesRebuildUnderAncor) {
  GroundTruthGraph data = MakeCommunityGraph(41);
  Rng rng(42);
  ActivationStream stream = CommunityBiasedStream(
      data.graph, data.truth.labels, 30, 0.05, 4.0, rng);
  ASSERT_FALSE(stream.empty());

  AncConfig config = MakeConfig();
  config.mode = AncMode::kOnlineReinforce;
  config.reinforce_interval = 7;
  check::OracleOptions options;
  options.checkpoint_interval = 120;
  check::OracleResult result =
      check::RunDifferentialOracle(data.graph, config, stream, options);
  EXPECT_TRUE(result.ok()) << result.report.ToString();
  EXPECT_EQ(result.activations, stream.size());
  EXPECT_GE(result.checkpoints, 2u);
}

TEST(DifferentialOracleTest, BurstyStreamWithRescalesMatchesRebuild) {
  GroundTruthGraph data = MakeCommunityGraph(51);
  Rng rng(52);
  // Minute-indexed diurnal stream over one "day". Forcing a batched
  // rescale every 40 activations makes the replay cross several ScaleAll
  // repairs (Lemma 1 + Lemma 10) while the moderate decay keeps weights
  // off the similarity clamp — clamp saturation would flood the graph with
  // equal weights and tie-broken partitions the exact oracle can't compare.
  ActivationStream stream =
      DiurnalStream(data.graph, 60, 5.0, 0.1, 20.0, rng);
  ASSERT_FALSE(stream.empty());

  AncConfig config = MakeConfig();
  config.similarity.rescale_interval = 40;
  check::OracleOptions options;
  options.checkpoint_interval = 150;
  options.deep_partition_check = true;
  check::OracleResult result =
      check::RunDifferentialOracle(data.graph, config, stream, options);
  EXPECT_TRUE(result.ok()) << result.report.ToString();
  EXPECT_EQ(result.activations, stream.size());
  EXPECT_GE(result.checkpoints, 1u);
}

TEST(DifferentialOracleTest, OfflineModeActivenessStillValidated) {
  GroundTruthGraph data = MakeCommunityGraph(61);
  Rng rng(62);
  ActivationStream stream = UniformStream(data.graph, 15, 0.05, rng);

  AncConfig config = MakeConfig();
  config.mode = AncMode::kOffline;
  check::OracleResult result =
      check::RunDifferentialOracle(data.graph, config, stream);
  EXPECT_TRUE(result.ok()) << result.report.ToString();
}

TEST(DifferentialOracleTest, ReportsApplyFailure) {
  GroundTruthGraph data = MakeCommunityGraph(71);
  ActivationStream stream = {{data.graph.NumEdges() + 5, 1.0}};  // bad edge
  check::OracleResult result =
      check::RunDifferentialOracle(data.graph, MakeConfig(), stream);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(Has(result.report, "oracle.apply"))
      << result.report.ToString();
}

}  // namespace
}  // namespace anc
