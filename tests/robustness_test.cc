// Failure-injection and stress tests: hostile inputs, degenerate graphs,
// concurrent updates, and abort-guarded invariants (death tests).

#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "core/anc.h"
#include "datasets/synthetic.h"
#include "pyramid/pyramid_index.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace anc {
namespace {

TEST(RobustnessTest, SingleNodeGraphSurvivesEverything) {
  GraphBuilder b;
  b.SetNumNodes(1);
  Graph g = b.Build();
  AncConfig config;
  config.rep = 3;
  AncIndex anc(g, config);
  EXPECT_EQ(anc.num_levels(), 1u);
  Clustering c = anc.Clusters();
  EXPECT_EQ(c.NumAssigned(), 1u);
  EXPECT_EQ(anc.LocalCluster(0, 1), std::vector<NodeId>{0});
  EXPECT_EQ(anc.SmallestCluster(0, 1).size(), 1u);
}

TEST(RobustnessTest, DisconnectedGraphEndToEnd) {
  // Three islands; clustering/queries must respect component boundaries.
  GraphBuilder b;
  for (NodeId base : {0u, 10u, 20u}) {
    for (NodeId u = base; u < base + 5; ++u) {
      for (NodeId v = u + 1; v < base + 5; ++v) {
        ASSERT_TRUE(b.AddEdge(u, v).ok());
      }
    }
  }
  Graph g = b.Build();
  AncConfig config;
  config.rep = 2;
  config.similarity.mu = 2;
  AncIndex anc(g, config);
  ASSERT_TRUE(anc.Apply({0, 1.0}).ok());
  for (uint32_t l = 1; l <= anc.num_levels(); ++l) {
    Clustering c = anc.Clusters(l, /*power=*/false);
    // Nodes of different islands never share an (even) cluster.
    EXPECT_NE(c.labels[0], c.labels[10]);
    EXPECT_NE(c.labels[10], c.labels[20]);
  }
  // Cross-island distance queries are cleanly unreachable.
  EXPECT_TRUE(std::isinf(anc.index().ApproxDistance(0, 20)));
}

TEST(RobustnessTest, CompleteGraphReinforcementStaysFinite) {
  // A clique maximizes triadic consolidation: many reinforcement rounds
  // must stay within the clamp and produce finite weights.
  GraphBuilder b;
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) ASSERT_TRUE(b.AddEdge(u, v).ok());
  }
  Graph g = b.Build();
  SimilarityParams params;
  SimilarityEngine engine(g, params);
  engine.InitializeStatic(25);  // far beyond the default 7
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_TRUE(std::isfinite(engine.Similarity(e)));
    EXPECT_TRUE(std::isfinite(engine.Weight(e)));
    EXPECT_GT(engine.Weight(e), 0.0);
  }
}

TEST(RobustnessTest, HubGraphUpdatesStayBounded) {
  // A star inside a ring stresses the subtree surgery around a hub.
  GraphBuilder b;
  const uint32_t n = 200;
  for (NodeId v = 1; v < n; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  for (NodeId v = 1; v + 1 < n; ++v) ASSERT_TRUE(b.AddEdge(v, v + 1).ok());
  Graph g = b.Build();
  std::vector<double> w(g.NumEdges(), 1.0);
  PyramidParams params;
  params.num_pyramids = 3;
  PyramidIndex idx(g, w, params);
  Rng rng(3);
  for (int step = 0; step < 200; ++step) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(g.NumEdges()));
    w[e] = 0.1 + 5.0 * rng.NextDouble();
    idx.UpdateEdgeWeight(e, w[e]);
  }
  for (uint32_t p = 0; p < 3; ++p) {
    for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
      ASSERT_TRUE(idx.partition(p, l).ConsistentWith(g, w));
    }
  }
}

TEST(RobustnessTest, ExtremeWeightRatiosStayConsistent) {
  // Twelve orders of magnitude between the lightest and heaviest edge.
  Rng rng(5);
  Graph g = BarabasiAlbert(100, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    w[e] = std::pow(10.0, -6.0 + 12.0 * rng.NextDouble());
  }
  PyramidParams params;
  params.num_pyramids = 2;
  PyramidIndex idx(g, w, params);
  for (int step = 0; step < 50; ++step) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(g.NumEdges()));
    w[e] = std::pow(10.0, -6.0 + 12.0 * rng.NextDouble());
    idx.UpdateEdgeWeight(e, w[e]);
  }
  for (uint32_t p = 0; p < 2; ++p) {
    for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
      ASSERT_TRUE(idx.partition(p, l).ConsistentWith(g, w));
    }
  }
}

TEST(RobustnessDeathTest, InvalidWeightAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(7);
  Graph g = BarabasiAlbert(30, 2, rng);
  PyramidParams params;
  PyramidIndex idx(g, std::vector<double>(g.NumEdges(), 1.0), params);
  EXPECT_DEATH(idx.UpdateEdgeWeight(0, -1.0), "positive");
  EXPECT_DEATH(idx.UpdateEdgeWeight(0, std::nan("")), "positive");
  EXPECT_DEATH(idx.UpdateEdgeWeight(g.NumEdges(), 1.0), "out of range");
}

TEST(RobustnessDeathTest, InvalidConfigAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(9);
  Graph g = BarabasiAlbert(20, 2, rng);
  AncConfig config;
  config.pyramid.theta = 5.0;
  EXPECT_DEATH(AncIndex(g, config), "invalid AncConfig");
}

TEST(RobustnessTest, ConcurrentReadersDuringSequentialUpdates) {
  // Queries from the owning thread interleaved with parallel-pool updates
  // must never observe torn state (updates synchronize via ParallelFor's
  // completion barrier). This drives the threaded configuration end to
  // end rather than asserting on data races directly.
  Rng rng(11);
  Graph g = BarabasiAlbert(300, 3, rng);
  AncConfig config;
  config.rep = 2;
  config.pyramid.num_threads = 4;
  AncIndex anc(g, config);
  double t = 0.0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 10; ++i) {
      t += 0.01;
      ASSERT_TRUE(
          anc.Apply({static_cast<EdgeId>(rng.Uniform(g.NumEdges())), t}).ok());
    }
    Clustering c = anc.Clusters();
    ASSERT_EQ(c.NumAssigned(), g.NumNodes());
    std::vector<NodeId> local = anc.LocalCluster(
        static_cast<NodeId>(rng.Uniform(g.NumNodes())), anc.DefaultLevel());
    ASSERT_FALSE(local.empty());
  }
}

}  // namespace
}  // namespace anc
