#include <cmath>

#include <gtest/gtest.h>

#include "activation/activeness.h"
#include "activation/stream_generators.h"
#include "datasets/synthetic.h"
#include "util/rng.h"

namespace anc {
namespace {

TEST(ActivenessTest, PaperExample1) {
  // Example 1 of the paper: lambda = 0.1, activations at t=0 and t=2.
  ActivenessStore store(1, 0.1, 0.0);
  ASSERT_TRUE(store.Activate(0, 0.0).ok());
  EXPECT_NEAR(store.ActivenessAt(0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(store.ActivenessAt(0, 1.0), std::exp(-0.1), 1e-12);
  ASSERT_TRUE(store.Activate(0, 2.0).ok());
  EXPECT_NEAR(store.ActivenessAt(0, 2.0), 1.0 + std::exp(-0.2), 1e-12);
}

TEST(ActivenessTest, PaperExample2AnchoredBookkeeping) {
  // Example 2: anchored activeness under the global decay factor.
  ActivenessStore store(1, 0.1, 0.0);
  ASSERT_TRUE(store.Activate(0, 0.0).ok());
  EXPECT_NEAR(store.Anchored(0), 1.0, 1e-12);
  EXPECT_NEAR(store.GlobalFactor(1.0), 0.905, 1e-3);
  ASSERT_TRUE(store.Activate(0, 2.0).ok());
  // a*(e) = 1 + 1/g(2,0) = 1 + e^{0.2} = 2.221...
  EXPECT_NEAR(store.Anchored(0), 1.0 + std::exp(0.2), 1e-12);
  EXPECT_NEAR(store.ActivenessAt(0, 2.0), 1.0 + std::exp(-0.2), 1e-12);
  // Re-anchor at t = 2: anchored value becomes the true activeness.
  store.Rescale(2.0);
  EXPECT_NEAR(store.Anchored(0), 1.0 + std::exp(-0.2), 1e-12);
}

TEST(ActivenessTest, MatchesNaiveOnRandomStream) {
  // Property: anchored maintenance == direct Eq. (1) evaluation, for every
  // edge, after an arbitrary stream.
  const uint32_t num_edges = 20;
  const double lambda = 0.25;
  ActivenessStore store(num_edges, lambda, 0.0);
  NaiveActiveness naive(num_edges, lambda);
  Rng rng(99);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.NextDouble();
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(num_edges));
    ASSERT_TRUE(store.Activate(e, t).ok());
    naive.Activate(e, t);
  }
  const double query_time = t + 3.0;
  for (EdgeId e = 0; e < num_edges; ++e) {
    EXPECT_NEAR(store.ActivenessAt(e, query_time),
                naive.ActivenessAt(e, query_time), 1e-9)
        << "edge " << e;
  }
}

TEST(ActivenessTest, RescaleIsObservationallyInvisible) {
  ActivenessStore a(5, 0.5, 1.0);
  ActivenessStore b(5, 0.5, 1.0);
  ASSERT_TRUE(a.Activate(2, 1.0).ok());
  ASSERT_TRUE(b.Activate(2, 1.0).ok());
  b.Rescale(4.0);  // only b re-anchors
  ASSERT_TRUE(a.Activate(3, 5.0).ok());
  ASSERT_TRUE(b.Activate(3, 5.0).ok());
  for (EdgeId e = 0; e < 5; ++e) {
    EXPECT_NEAR(a.ActivenessAt(e, 6.0), b.ActivenessAt(e, 6.0), 1e-12);
  }
}

TEST(ActivenessTest, AnchoredApplyIsExactAndLeavesTheClockAlone) {
  // The migration-import path (docs/sharding.md): ActivateAnchored must
  // add exactly the mass an in-order replay would have, for timestamps on
  // either side of the clock, WITHOUT advancing the clock — an import
  // running ahead of the owner's stream must not make the owner's queued
  // in-order records look time-reversed.
  const double lambda = 0.15;
  ActivenessStore store(3, lambda, 0.0);
  ASSERT_TRUE(store.Activate(0, 1.0).ok());
  ASSERT_TRUE(store.Activate(1, 2.0).ok());
  // Import behind the clock (t=0.5) and ahead of it (t=10).
  ASSERT_TRUE(store.ActivateAnchored(2, 0.5).ok());
  ASSERT_TRUE(store.ActivateAnchored(2, 10.0).ok());
  EXPECT_DOUBLE_EQ(store.last_time(), 2.0);
  // The strict stream continues from its own position, unaffected.
  ASSERT_TRUE(store.Activate(0, 3.0).ok());
  EXPECT_DOUBLE_EQ(store.last_time(), 3.0);
  // Mass matches an in-order oracle of the merged stream.
  ActivenessStore oracle(3, lambda, 0.0);
  ASSERT_TRUE(oracle.Activate(2, 0.5).ok());
  ASSERT_TRUE(oracle.Activate(0, 1.0).ok());
  ASSERT_TRUE(oracle.Activate(1, 2.0).ok());
  ASSERT_TRUE(oracle.Activate(0, 3.0).ok());
  ASSERT_TRUE(oracle.Activate(2, 10.0).ok());
  for (EdgeId e = 0; e < 3; ++e) {
    EXPECT_NEAR(store.ActivenessAt(e, 12.0), oracle.ActivenessAt(e, 12.0),
                1e-12)
        << "edge " << e;
  }
}

TEST(ActivenessTest, AutomaticRescaleGuardsExponent) {
  ActivenessStore store(2, 1.0, 1.0);  // aggressive lambda
  // t = 100 with anchor 0 would need e^{100}; the store must re-anchor.
  ASSERT_TRUE(store.Activate(0, 100.0).ok());
  EXPECT_GE(store.rescale_count(), 1u);
  EXPECT_NEAR(store.ActivenessAt(0, 100.0),
              1.0 * std::exp(-100.0) + 1.0, 1e-9);
}

TEST(ActivenessTest, AnchoredApplyRejectsFarFutureTimestamps) {
  // The anchor can never pass the strict clock (anchor_time <= last_time
  // is a serialized invariant), so an anchored apply running more than
  // kMaxExponent / lambda ahead of last_time() has no representable
  // increment: it must be rejected rather than poison the anchored values
  // with +inf.
  ActivenessStore store(2, 1.0, 1.0);  // aggressive lambda
  ASSERT_TRUE(store.Activate(0, 1.0).ok());
  // Within the exponent budget: exact, as usual.
  ASSERT_TRUE(store.ActivateAnchored(1, 50.0).ok());
  EXPECT_TRUE(std::isfinite(store.Anchored(1)));
  // Beyond it: rejected, and the store stays finite and usable.
  EXPECT_EQ(store.ActivateAnchored(1, 1000.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(std::isfinite(store.Anchored(1)));
  ASSERT_TRUE(store.Activate(0, 2.0).ok());
  EXPECT_TRUE(std::isfinite(store.ActivenessAt(0, 2.0)));
}

TEST(ActivenessTest, IntervalRescale) {
  ActivenessStore store(1, 0.1, 0.0);
  store.set_rescale_interval(10);
  for (int i = 1; i <= 35; ++i) {
    ASSERT_TRUE(store.Activate(0, static_cast<double>(i)).ok());
  }
  EXPECT_EQ(store.rescale_count(), 3u);
}

TEST(ActivenessTest, RescaleHookFires) {
  ActivenessStore store(1, 0.1, 0.0);
  double seen_factor = -1.0;
  store.SetRescaleHook([&seen_factor](double f) { seen_factor = f; });
  ASSERT_TRUE(store.Activate(0, 1.0).ok());
  store.Rescale(3.0);
  // Anchor was 0, so the folded factor is g(3, 0) = e^{-0.1 * 3}.
  EXPECT_NEAR(seen_factor, std::exp(-0.1 * 3.0), 1e-12);
}

TEST(ActivenessTest, RejectsOutOfRangeEdge) {
  ActivenessStore store(3, 0.1);
  EXPECT_EQ(store.Activate(3, 1.0).code(), StatusCode::kOutOfRange);
}

TEST(ActivenessTest, RejectsDecreasingTimestamps) {
  ActivenessStore store(3, 0.1);
  ASSERT_TRUE(store.Activate(0, 5.0).ok());
  EXPECT_EQ(store.Activate(1, 4.0).code(), StatusCode::kInvalidArgument);
}

TEST(ActivenessTest, ZeroLambdaNeverDecays) {
  ActivenessStore store(1, 0.0, 0.0);
  ASSERT_TRUE(store.Activate(0, 1.0).ok());
  ASSERT_TRUE(store.Activate(0, 100.0).ok());
  EXPECT_NEAR(store.ActivenessAt(0, 1000.0), 2.0, 1e-12);
}

// ------------------------------------------------------ stream generators --

TEST(StreamGeneratorsTest, UniformStreamShape) {
  Rng rng(1);
  Graph g = ErdosRenyi(50, 200, rng);
  ActivationStream stream = UniformStream(g, 10, 0.05, rng);
  const uint32_t per_step = static_cast<uint32_t>(0.05 * g.NumEdges());
  EXPECT_EQ(stream.size(), static_cast<size_t>(per_step) * 10);
  double last = 0.0;
  for (const Activation& a : stream) {
    EXPECT_LT(a.edge, g.NumEdges());
    EXPECT_GE(a.time, last);
    last = a.time;
  }
}

TEST(StreamGeneratorsTest, CommunityBiasedPrefersIntraEdges) {
  Rng rng(2);
  PlantedPartitionParams params;
  params.num_communities = 4;
  params.min_size = 20;
  params.max_size = 20;
  params.p_in = 0.4;
  params.mixing = 0.25;
  GroundTruthGraph data = PlantedPartition(params, rng);
  ActivationStream stream = CommunityBiasedStream(
      data.graph, data.truth.labels, 20, 0.1, 8.0, rng);
  uint32_t intra = 0;
  for (const Activation& a : stream) {
    const auto& [u, v] = data.graph.Endpoints(a.edge);
    intra += (data.truth.labels[u] == data.truth.labels[v]) ? 1 : 0;
  }
  // Count intra edges in the graph to know the unbiased expectation.
  uint32_t intra_edges = 0;
  for (EdgeId e = 0; e < data.graph.NumEdges(); ++e) {
    const auto& [u, v] = data.graph.Endpoints(e);
    intra_edges += (data.truth.labels[u] == data.truth.labels[v]) ? 1 : 0;
  }
  const double unbiased =
      static_cast<double>(intra_edges) / data.graph.NumEdges();
  const double observed = static_cast<double>(intra) / stream.size();
  EXPECT_GT(observed, unbiased + 0.05);
}

TEST(StreamGeneratorsTest, DiurnalStreamHasQuietAndBusyPhases) {
  Rng rng(3);
  Graph g = ErdosRenyi(100, 400, rng);
  ActivationStream stream = DiurnalStream(g, 1440, 20.0, 0.01, 3.0, rng);
  ASSERT_FALSE(stream.empty());
  std::vector<uint32_t> per_minute(1440, 0);
  for (const Activation& a : stream) {
    ++per_minute[static_cast<uint32_t>(a.time)];
  }
  // Midday (minute ~720) must be busier than the edges of the window.
  double early = 0;
  double mid = 0;
  for (int i = 0; i < 60; ++i) early += per_minute[i];
  for (int i = 690; i < 750; ++i) mid += per_minute[i];
  EXPECT_GT(mid, early * 1.5);
}

TEST(StreamGeneratorsTest, SplitIntoBatches) {
  ActivationStream stream;
  for (int i = 0; i < 10; ++i) {
    stream.push_back({0, static_cast<double>(i)});
  }
  std::vector<ActivationStream> batches = SplitIntoBatches(stream, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 4u);
  EXPECT_EQ(batches[2].size(), 2u);
}

TEST(StreamGeneratorsTest, SplitByTimestamp) {
  ActivationStream stream = {{0, 0.5}, {0, 1.2}, {0, 1.8}, {0, 7.0}};
  std::vector<ActivationStream> batches = SplitByTimestamp(stream, 3);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 1u);
  EXPECT_EQ(batches[1].size(), 2u);
  EXPECT_EQ(batches[2].size(), 1u);  // overflow clamps to last batch
}

}  // namespace
}  // namespace anc
