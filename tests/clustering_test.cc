#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "pyramid/clustering.h"
#include "pyramid/pyramid_index.h"
#include "util/rng.h"

namespace anc {
namespace {

/// Two 5-cliques joined by a single bridge, with strongly separated weights:
/// intra edges cheap (high similarity), bridge expensive.
struct CliquePair {
  Graph graph;
  EdgeId bridge;
  std::vector<double> weights;
};

CliquePair MakeCliquePair() {
  GraphBuilder b;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) EXPECT_TRUE(b.AddEdge(u, v).ok());
  }
  for (NodeId u = 5; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) EXPECT_TRUE(b.AddEdge(u, v).ok());
  }
  EXPECT_TRUE(b.AddEdge(4, 5).ok());
  CliquePair out;
  out.graph = b.Build();
  out.bridge = *out.graph.FindEdge(4, 5);
  out.weights.assign(out.graph.NumEdges(), 0.2);
  out.weights[out.bridge] = 50.0;
  return out;
}

PyramidParams Params(uint32_t k = 4) {
  PyramidParams p;
  p.num_pyramids = k;
  p.seed = 7;
  return p;
}

TEST(ClusteringTest, EvenClusteringSeparatesCliquesAtFineLevel) {
  CliquePair data = MakeCliquePair();
  PyramidIndex idx(data.graph, data.weights, Params());
  const uint32_t level = idx.num_levels();  // finest: 8 seeds for 10 nodes
  Clustering c = EvenClustering(idx, level);
  // The two clique interiors must not merge across the expensive bridge.
  EXPECT_NE(c.labels[0], c.labels[9]);
}

TEST(ClusteringTest, Level1IsOneClusterPerComponent) {
  CliquePair data = MakeCliquePair();
  PyramidIndex idx(data.graph, data.weights, Params());
  Clustering c = EvenClustering(idx, 1);
  EXPECT_EQ(c.num_clusters, 1u);  // connected graph
  for (uint32_t l : c.labels) EXPECT_EQ(l, 0u);
}

TEST(ClusteringTest, PowerClusteringCoversAllNodes) {
  CliquePair data = MakeCliquePair();
  PyramidIndex idx(data.graph, data.weights, Params());
  for (uint32_t level = 1; level <= idx.num_levels(); ++level) {
    Clustering c = PowerClustering(idx, level);
    EXPECT_EQ(c.NumAssigned(), data.graph.NumNodes());
  }
}

TEST(ClusteringTest, PowerRefinesEven) {
  // Every power cluster is contained in an even cluster (power only walks
  // downhill over the same passing edges).
  Rng rng(3);
  Graph g = BarabasiAlbert(200, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.2 + rng.NextDouble();
  PyramidIndex idx(g, w, Params());
  for (uint32_t level : {2u, idx.DefaultLevel(), idx.num_levels()}) {
    Clustering even = EvenClustering(idx, level);
    Clustering power = PowerClustering(idx, level);
    // Map each power cluster to the even cluster of its first member.
    std::vector<uint32_t> owner(power.num_clusters, kNoise);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const uint32_t pc = power.labels[v];
      if (owner[pc] == kNoise) {
        owner[pc] = even.labels[v];
      } else {
        EXPECT_EQ(owner[pc], even.labels[v])
            << "power cluster spans even clusters at level " << level;
      }
    }
    EXPECT_GE(power.num_clusters, even.num_clusters);
  }
}

TEST(ClusteringTest, ZoomMonotonicity) {
  // Finer levels never produce fewer clusters on average; specifically the
  // finest level has at least as many clusters as level 1.
  Rng rng(5);
  Graph g = BarabasiAlbert(300, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.2 + rng.NextDouble();
  PyramidIndex idx(g, w, Params());
  Clustering coarse = EvenClustering(idx, 1);
  Clustering fine = EvenClustering(idx, idx.num_levels());
  EXPECT_GT(fine.num_clusters, coarse.num_clusters);
}

TEST(ClusteringTest, LocalClusterMatchesEvenComponent) {
  Rng rng(7);
  Graph g = BarabasiAlbert(150, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.2 + rng.NextDouble();
  PyramidIndex idx(g, w, Params());
  const uint32_t level = idx.DefaultLevel();
  Clustering even = EvenClustering(idx, level);
  for (NodeId q : {NodeId{0}, NodeId{17}, NodeId{93}}) {
    std::vector<NodeId> local = LocalCluster(idx, q, level);
    std::set<NodeId> expected;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (even.labels[v] == even.labels[q]) expected.insert(v);
    }
    EXPECT_EQ(std::set<NodeId>(local.begin(), local.end()), expected)
        << "query " << q;
  }
}

TEST(ClusteringTest, LocalClusterAlwaysContainsQuery) {
  CliquePair data = MakeCliquePair();
  PyramidIndex idx(data.graph, data.weights, Params());
  for (uint32_t level = 1; level <= idx.num_levels(); ++level) {
    for (NodeId q = 0; q < data.graph.NumNodes(); ++q) {
      std::vector<NodeId> members = LocalCluster(idx, q, level);
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), q));
    }
  }
}

TEST(ClusteringTest, SmallestClusterLevelZoomsOutUntilSized) {
  CliquePair data = MakeCliquePair();
  PyramidIndex idx(data.graph, data.weights, Params());
  std::vector<NodeId> members;
  const uint32_t level = SmallestClusterLevel(idx, 0, 3, &members);
  EXPECT_GE(members.size(), 3u);
  EXPECT_LE(level, idx.num_levels());
  EXPECT_TRUE(std::binary_search(members.begin(), members.end(), 0u));
}

TEST(ClusteringTest, ZoomCursorNavigation) {
  CliquePair data = MakeCliquePair();
  PyramidIndex idx(data.graph, data.weights, Params());
  ZoomCursor cursor(idx);
  EXPECT_EQ(cursor.level(), idx.DefaultLevel());
  const uint32_t start = cursor.level();
  EXPECT_TRUE(cursor.ZoomIn() || start == idx.num_levels());
  while (cursor.ZoomOut()) {
  }
  EXPECT_EQ(cursor.level(), 1u);
  EXPECT_FALSE(cursor.ZoomOut());
  while (cursor.ZoomIn()) {
  }
  EXPECT_EQ(cursor.level(), idx.num_levels());
  EXPECT_FALSE(cursor.ZoomIn());
  Clustering c = cursor.Clusters();
  EXPECT_EQ(c.NumAssigned(), data.graph.NumNodes());
  std::vector<NodeId> local = cursor.Local(0);
  EXPECT_FALSE(local.empty());
}

TEST(ClusteringTest, PowerClusteringAvoidsChainMerge) {
  // The paper's motivation for power clustering: even clustering merges
  // everything along a chain of passing edges, power clustering stops at
  // the degree ridge. Build a barbell: two cliques plus a 2-node path
  // bridge whose edges (atypically) pass the vote.
  GraphBuilder b;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) ASSERT_TRUE(b.AddEdge(u, v).ok());
  }
  for (NodeId u = 7; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) ASSERT_TRUE(b.AddEdge(u, v).ok());
  }
  ASSERT_TRUE(b.AddEdge(4, 5).ok());
  ASSERT_TRUE(b.AddEdge(5, 6).ok());
  ASSERT_TRUE(b.AddEdge(6, 7).ok());
  Graph g = b.Build();
  // Uniform weights: at level 1 all edges pass everywhere.
  PyramidIndex idx(g, std::vector<double>(g.NumEdges(), 1.0), Params());
  Clustering even = EvenClustering(idx, 1);
  EXPECT_EQ(even.num_clusters, 1u);  // chain merge
  Clustering power = PowerClustering(idx, 1);
  // Power clustering can still produce one cluster here only if a single
  // downhill sweep covers everything; with two degree peaks (the cliques)
  // it must produce at least two clusters.
  EXPECT_GE(power.num_clusters, 2u);
}

}  // namespace
}  // namespace anc
