// Parameterized property sweeps over the Table II parameter grid: node
// roles across (epsilon, mu), voting across (theta, k), clustering
// coverage across granularity levels, and metric sanity (ARI).

#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "metrics/quality.h"
#include "pyramid/clustering.h"
#include "pyramid/pyramid_index.h"
#include "similarity/similarity_engine.h"
#include "util/rng.h"

namespace anc {
namespace {

// ------------------------------------------------ roles over (eps, mu) ---

class RoleSweep
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

TEST_P(RoleSweep, RolesPartitionVertexSetConsistently) {
  const auto [epsilon, mu] = GetParam();
  Rng rng(3);
  PlantedPartitionParams pp;
  pp.num_communities = 6;
  pp.min_size = 12;
  pp.max_size = 20;
  GroundTruthGraph data = PlantedPartition(pp, rng);

  SimilarityParams params;
  params.epsilon = epsilon;
  params.mu = mu;
  SimilarityEngine engine(data.graph, params);
  engine.InitializeStatic(2);

  for (NodeId v = 0; v < data.graph.NumNodes(); ++v) {
    const NodeRole role = engine.Role(v);
    const uint32_t degree = data.graph.Degree(v);
    const uint32_t active = engine.ActiveNeighborCount(v);
    // Definitional consistency (Section IV-B).
    if (degree < mu) {
      EXPECT_EQ(role, NodeRole::kPeriphery) << "node " << v;
    } else if (active >= mu) {
      EXPECT_EQ(role, NodeRole::kCore) << "node " << v;
    } else {
      EXPECT_EQ(role, NodeRole::kPCore) << "node " << v;
    }
    // Active neighbors are a subset of neighbors.
    EXPECT_LE(active, degree);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsMuGrid, RoleSweep,
    ::testing::Combine(::testing::Values(0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
                       ::testing::Values(2u, 3u, 5u, 8u)));

TEST(RoleMonotonicityTest, HigherEpsilonNeverAddsCores) {
  Rng rng(5);
  PlantedPartitionParams pp;
  GroundTruthGraph data = PlantedPartition(pp, rng);
  uint32_t prev_cores = UINT32_MAX;
  for (double epsilon : {0.1, 0.2, 0.3, 0.45, 0.6, 0.8}) {
    SimilarityParams params;
    params.epsilon = epsilon;
    params.mu = 3;
    SimilarityEngine engine(data.graph, params);
    uint32_t cores = 0;
    for (NodeId v = 0; v < data.graph.NumNodes(); ++v) {
      cores += engine.Role(v) == NodeRole::kCore ? 1 : 0;
    }
    EXPECT_LE(cores, prev_cores) << "epsilon " << epsilon;
    prev_cores = cores;
  }
}

// --------------------------------------------- voting over (theta, k) ---

class VoteSweep
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

TEST_P(VoteSweep, ThresholdAndCountsWellFormed) {
  const auto [theta, k] = GetParam();
  Rng rng(7);
  Graph g = BarabasiAlbert(100, 3, rng);
  PyramidParams params;
  params.theta = theta;
  params.num_pyramids = k;
  params.seed = 9;
  PyramidIndex idx(g, std::vector<double>(g.NumEdges(), 1.0), params);

  EXPECT_EQ(idx.vote_threshold(),
            std::max<uint32_t>(
                1, static_cast<uint32_t>(std::ceil(theta * k - 1e-12))));
  for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      EXPECT_LE(idx.VotesOf(e, l), k);
      EXPECT_EQ(idx.EdgePassesVote(e, l),
                idx.VotesOf(e, l) >= idx.vote_threshold());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThetaKGrid, VoteSweep,
    ::testing::Combine(::testing::Values(0.3, 0.5, 0.7, 0.9, 1.0),
                       ::testing::Values(1u, 2u, 4u, 8u)));

TEST(VoteMonotonicityTest, HigherThetaPassesFewerEdges) {
  Rng rng(11);
  Graph g = BarabasiAlbert(150, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  uint32_t prev_passing = UINT32_MAX;
  for (double theta : {0.25, 0.5, 0.75, 1.0}) {
    PyramidParams params;
    params.theta = theta;
    params.num_pyramids = 8;
    params.seed = 13;
    PyramidIndex idx(g, w, params);
    const uint32_t level = idx.DefaultLevel();
    uint32_t passing = 0;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      passing += idx.EdgePassesVote(e, level) ? 1 : 0;
    }
    EXPECT_LE(passing, prev_passing) << "theta " << theta;
    prev_passing = passing;
  }
}

// ------------------------------------------- clustering across levels ---

class LevelSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LevelSweep, ClusteringInvariantsHoldAtEveryLevel) {
  Rng rng(17);
  Graph g = BarabasiAlbert(200, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  PyramidParams params;
  params.num_pyramids = 4;
  params.seed = 19;
  PyramidIndex idx(g, w, params);
  const uint32_t level = std::min(GetParam(), idx.num_levels());

  Clustering even = EvenClustering(idx, level);
  Clustering power = PowerClustering(idx, level);

  // Full coverage in both variants.
  EXPECT_EQ(even.NumAssigned(), g.NumNodes());
  EXPECT_EQ(power.NumAssigned(), g.NumNodes());
  // Even clusters are unions of passing-edge components: no passing edge
  // crosses even clusters.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!idx.EdgePassesVote(e, level)) continue;
    const auto& [u, v] = g.Endpoints(e);
    EXPECT_EQ(even.labels[u], even.labels[v]);
  }
  // Power refines even.
  EXPECT_GE(power.num_clusters, even.num_clusters);
  // Cluster ids dense.
  std::vector<uint32_t> sizes = power.ClusterSizes();
  for (uint32_t s : sizes) EXPECT_GT(s, 0u);
}

INSTANTIATE_TEST_SUITE_P(Levels, LevelSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 99u));

// --------------------------------------------------------------- ARI ----

TEST(AriTest, PerfectAndOrthogonal) {
  Clustering a = Clustering::FromLabels({0, 0, 1, 1, 2, 2});
  Clustering b = Clustering::FromLabels({2, 2, 0, 0, 1, 1});
  EXPECT_NEAR(AdjustedRandIndex(a, a), 1.0, 1e-12);
  EXPECT_NEAR(AdjustedRandIndex(a, b), 1.0, 1e-12);

  Clustering x = Clustering::FromLabels({0, 0, 0, 0, 1, 1, 1, 1});
  Clustering y = Clustering::FromLabels({0, 1, 0, 1, 0, 1, 0, 1});
  // Hand computation: joint cells all 2 -> sum_joint = 4; sum_x = sum_y =
  // 12; expected = 144/28 = 36/7; ARI = (4 - 36/7)/(12 - 36/7) = -1/6.
  EXPECT_NEAR(AdjustedRandIndex(x, y), -1.0 / 6.0, 1e-9);
}

TEST(AriTest, AgreesWithNmiOrderingOnPlanted) {
  Rng rng(23);
  PlantedPartitionParams pp;
  pp.num_communities = 6;
  GroundTruthGraph data = PlantedPartition(pp, rng);
  // A clustering close to the truth vs a shuffled one.
  Clustering close = data.truth;
  // Perturb 10% of labels.
  Rng perturb(29);
  for (NodeId v = 0; v < data.graph.NumNodes(); ++v) {
    if (perturb.Bernoulli(0.1)) {
      close.labels[v] = static_cast<uint32_t>(
          perturb.Uniform(data.truth.num_clusters));
    }
  }
  Clustering shuffled = data.truth;
  perturb.Shuffle(shuffled.labels);

  EXPECT_GT(AdjustedRandIndex(close, data.truth),
            AdjustedRandIndex(shuffled, data.truth));
  EXPECT_GT(AdjustedRandIndex(close, data.truth), 0.6);
  EXPECT_NEAR(AdjustedRandIndex(shuffled, data.truth), 0.0, 0.1);
}

}  // namespace
}  // namespace anc
