#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace anc::obs {
namespace {

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(JsonTest, RoundTripsDocument) {
  Json doc = Json::Object();
  doc.Set("flag", Json::Bool(true));
  doc.Set("count", Json::Number(42));
  doc.Set("name", Json::Str("anc \"quoted\"\n"));
  Json arr = Json::Array();
  arr.Append(Json::Number(1.5));
  arr.Append(Json());  // null
  doc.Set("values", std::move(arr));

  for (int indent : {0, 2}) {
    Json parsed;
    ASSERT_TRUE(Json::Parse(doc.Dump(indent), &parsed)) << indent;
    ASSERT_TRUE(parsed.is_object());
    EXPECT_TRUE(parsed.Find("flag")->boolean());
    EXPECT_EQ(parsed.Find("count")->number(), 42.0);
    EXPECT_EQ(parsed.Find("name")->str(), "anc \"quoted\"\n");
    const Json* values = parsed.Find("values");
    ASSERT_EQ(values->size(), 2u);
    EXPECT_EQ(values->at(0).number(), 1.5);
    EXPECT_TRUE(values->at(1).is_null());
  }
}

TEST(JsonTest, IntegersPrintExactly) {
  Json big = Json::Number(1234567890123.0);
  EXPECT_EQ(big.Dump(), "1234567890123");
}

TEST(JsonTest, RejectsMalformedInput) {
  Json out;
  EXPECT_FALSE(Json::Parse("{", &out));
  EXPECT_FALSE(Json::Parse("[1, 2,]", &out));
  EXPECT_FALSE(Json::Parse("{} trailing", &out));
  EXPECT_FALSE(Json::Parse("\"unterminated", &out));
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  const CounterId c = registry.Counter("test.counter");
  registry.Add(c);
  registry.Add(c, 41);
  const StatsSnapshot snap = registry.Snapshot();
  if (kMetricsEnabled) {
    EXPECT_EQ(snap.counter("test.counter"), 42u);
  } else {
    EXPECT_EQ(snap.counter("test.counter"), 0u);
  }
  // Missing names read as zero in either build.
  EXPECT_EQ(snap.counter("no.such.counter"), 0u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  const CounterId a = registry.Counter("same.name");
  const CounterId b = registry.Counter("same.name");
  EXPECT_EQ(a.slot, b.slot);
  registry.Add(a);
  registry.Add(b);
  const StatsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  if (kMetricsEnabled) EXPECT_EQ(snap.counters[0].value, 2u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  const GaugeId g = registry.Gauge("test.gauge");
  registry.Set(g, 7);
  registry.Set(g, -3);
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.gauge("test.gauge"), kMetricsEnabled ? -3 : 0);
}

TEST(MetricsRegistryTest, HistogramBucketsMatchPowerOfTwoLayout) {
  MetricsRegistry registry;
  const HistogramId h = registry.Histogram("test.hist");
  // Bucket 0: [0, 1). Bucket i: [2^(i-1), 2^i).
  registry.Record(h, 0.0);
  registry.Record(h, 0.99);   // bucket 0
  registry.Record(h, 1.0);    // bucket 1
  registry.Record(h, 2.0);    // bucket 2
  registry.Record(h, 3.0);    // bucket 2
  registry.Record(h, 1e30);   // clamps to last bucket
  const StatsSnapshot snap = registry.Snapshot();
  const auto* entry = snap.histogram("test.hist");
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->buckets.size(), kHistogramBucketCount);
  if (!kMetricsEnabled) {
    EXPECT_EQ(entry->count, 0u);
    return;
  }
  EXPECT_EQ(entry->count, 6u);
  EXPECT_EQ(entry->buckets[0], 2u);
  EXPECT_EQ(entry->buckets[1], 1u);
  EXPECT_EQ(entry->buckets[2], 2u);
  EXPECT_EQ(entry->buckets[kHistogramBucketCount - 1], 1u);
  EXPECT_DOUBLE_EQ(entry->sum, 0.0 + 0.99 + 1.0 + 2.0 + 3.0 + 1e30);
  EXPECT_GT(entry->Mean(), 0.0);
  // Quantiles report the upper bound of the bucket containing the rank:
  // rank 3 of 6 is reached at bucket 1 ([1,2)), rank 4.5 inside bucket 2.
  EXPECT_DOUBLE_EQ(entry->ApproxQuantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(entry->ApproxQuantile(0.75), 4.0);
}

TEST(MetricsRegistryTest, ResetZeroesValuesKeepsNames) {
  MetricsRegistry registry;
  const CounterId c = registry.Counter("test.counter");
  const HistogramId h = registry.Histogram("test.hist");
  registry.Add(c, 5);
  registry.Record(h, 3.0);
  registry.Reset();
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 0u);
  ASSERT_NE(snap.histogram("test.hist"), nullptr);
  EXPECT_EQ(snap.histogram("test.hist")->count, 0u);
  // Handles stay valid after Reset.
  registry.Add(c, 2);
  if (kMetricsEnabled) {
    EXPECT_EQ(registry.Snapshot().counter("test.counter"), 2u);
  }
}

TEST(MetricsRegistryTest, MergesThreadShards) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry registry;
  const CounterId c = registry.Counter("test.parallel");
  const HistogramId h = registry.Histogram("test.parallel_hist");
  constexpr size_t kTasks = 64;
  constexpr uint64_t kPerTask = 1000;
  ThreadPool pool(4);
  pool.ParallelFor(kTasks, [&](size_t i) {
    for (uint64_t j = 0; j < kPerTask; ++j) registry.Add(c);
    registry.Record(h, static_cast<double>(i));
  });
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("test.parallel"), kTasks * kPerTask);
  EXPECT_EQ(snap.histogram("test.parallel_hist")->count, kTasks);
}

TEST(MetricsRegistryTest, ShardValuesSurviveThreadExit) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry registry;
  const CounterId c = registry.Counter("test.exited");
  {
    std::thread worker([&] { registry.Add(c, 11); });
    worker.join();
  }
  EXPECT_EQ(registry.Snapshot().counter("test.exited"), 11u);
}

TEST(MetricsRegistryTest, PerRegistryIsolation) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry a;
  MetricsRegistry b;
  const CounterId ca = a.Counter("shared.name");
  const CounterId cb = b.Counter("shared.name");
  a.Add(ca, 3);
  b.Add(cb, 5);
  EXPECT_EQ(a.Snapshot().counter("shared.name"), 3u);
  EXPECT_EQ(b.Snapshot().counter("shared.name"), 5u);
}

TEST(MetricsRegistryTest, InvalidHandlesAreSilentNoOps) {
  MetricsRegistry registry;
  registry.Add(CounterId{}, 7);
  registry.Set(GaugeId{}, 7);
  registry.Record(HistogramId{}, 7.0);
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(ScopedTimerTest, RecordsElapsedMicros) {
  MetricsRegistry registry;
  const HistogramId h = registry.Histogram("test.timer_us");
  { ScopedTimer timer(&registry, h); }
  { ScopedTimer timer(&registry, h); }
  const StatsSnapshot snap = registry.Snapshot();
  const auto* entry = snap.histogram("test.timer_us");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, kMetricsEnabled ? 2u : 0u);
  // Null registry must be safe (the disabled-pointer pattern).
  { ScopedTimer timer(nullptr, h); }
}

// ---------------------------------------------------------------------------
// StatsSnapshot JSON
// ---------------------------------------------------------------------------

TEST(StatsSnapshotTest, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("rt.counter"), 42);
  registry.Set(registry.Gauge("rt.gauge"), -17);
  const HistogramId h = registry.Histogram("rt.hist");
  registry.Record(h, 0.5);
  registry.Record(h, 1000.0);
  const StatsSnapshot snap = registry.Snapshot();

  StatsSnapshot parsed;
  ASSERT_TRUE(StatsSnapshot::FromJson(snap.ToJson(), &parsed));
  ASSERT_EQ(parsed.counters.size(), snap.counters.size());
  EXPECT_EQ(parsed.counter("rt.counter"), snap.counter("rt.counter"));
  EXPECT_EQ(parsed.gauge("rt.gauge"), snap.gauge("rt.gauge"));
  const auto* orig = snap.histogram("rt.hist");
  const auto* back = parsed.histogram("rt.hist");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->count, orig->count);
  EXPECT_DOUBLE_EQ(back->sum, orig->sum);
  EXPECT_EQ(back->buckets, orig->buckets);
}

TEST(StatsSnapshotTest, FromJsonRejectsWrongShape) {
  StatsSnapshot out;
  EXPECT_FALSE(StatsSnapshot::FromJson("[]", &out));
  EXPECT_FALSE(StatsSnapshot::FromJson("{\"counters\": []}", &out));
  // Histogram bucket array of the wrong length.
  EXPECT_FALSE(StatsSnapshot::FromJson(
      "{\"counters\":{},\"gauges\":{},\"histograms\":"
      "{\"h\":{\"count\":1,\"sum\":2,\"buckets\":[1,2,3]}}}",
      &out));
}

TEST(StatsSnapshotTest, BucketUpperBounds) {
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(5), 32.0);
  EXPECT_TRUE(std::isinf(HistogramBucketUpperBound(kHistogramBucketCount - 1)));
}

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, EmitsNestedJsonlSpans) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  std::ostringstream out;
  TraceSink sink(&out);
  ASSERT_TRUE(sink.ok());

  MetricsRegistry registry;
  const HistogramId outer_h = registry.Histogram("outer_us");
  const HistogramId inner_h = registry.Histogram("inner_us");
  registry.SetTraceSink(&sink);
  {
    ScopedTimer outer(&registry, outer_h, "outer");
    ScopedTimer inner(&registry, inner_h, "inner");
  }
  registry.SetTraceSink(nullptr);
  {
    ScopedTimer silent(&registry, outer_h, "silent");
  }

  std::vector<Json> events;
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    Json event;
    ASSERT_TRUE(Json::Parse(line, &event)) << line;
    events.push_back(std::move(event));
  }
  // Spans are emitted on completion: inner first, then outer; nothing after
  // the sink was detached.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].Find("name")->str(), "inner");
  EXPECT_EQ(events[0].Find("depth")->number(), 1.0);
  EXPECT_EQ(events[1].Find("name")->str(), "outer");
  EXPECT_EQ(events[1].Find("depth")->number(), 0.0);
  EXPECT_LE(events[1].Find("ts_us")->number(),
            events[0].Find("ts_us")->number());
  EXPECT_GE(events[1].Find("dur_us")->number(),
            events[0].Find("dur_us")->number());
}

}  // namespace
}  // namespace anc::obs
