#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace anc::obs {
namespace {

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(JsonTest, RoundTripsDocument) {
  Json doc = Json::Object();
  doc.Set("flag", Json::Bool(true));
  doc.Set("count", Json::Number(42));
  doc.Set("name", Json::Str("anc \"quoted\"\n"));
  Json arr = Json::Array();
  arr.Append(Json::Number(1.5));
  arr.Append(Json());  // null
  doc.Set("values", std::move(arr));

  for (int indent : {0, 2}) {
    Json parsed;
    ASSERT_TRUE(Json::Parse(doc.Dump(indent), &parsed)) << indent;
    ASSERT_TRUE(parsed.is_object());
    EXPECT_TRUE(parsed.Find("flag")->boolean());
    EXPECT_EQ(parsed.Find("count")->number(), 42.0);
    EXPECT_EQ(parsed.Find("name")->str(), "anc \"quoted\"\n");
    const Json* values = parsed.Find("values");
    ASSERT_EQ(values->size(), 2u);
    EXPECT_EQ(values->at(0).number(), 1.5);
    EXPECT_TRUE(values->at(1).is_null());
  }
}

TEST(JsonTest, IntegersPrintExactly) {
  Json big = Json::Number(1234567890123.0);
  EXPECT_EQ(big.Dump(), "1234567890123");
}

TEST(JsonTest, RejectsMalformedInput) {
  Json out;
  EXPECT_FALSE(Json::Parse("{", &out));
  EXPECT_FALSE(Json::Parse("[1, 2,]", &out));
  EXPECT_FALSE(Json::Parse("{} trailing", &out));
  EXPECT_FALSE(Json::Parse("\"unterminated", &out));
}

TEST(JsonTest, NestingDepthCapped) {
  // Regression for a stack overflow found by fuzz/fuzz_json.cc: a few KB
  // of "[[[[..." used to recurse until the stack died. The parser now
  // rejects anything nested deeper than 128 levels and parses anything at
  // or below the cap.
  const auto nested_array = [](int depth) {
    std::string text(static_cast<size_t>(depth), '[');
    text.append(static_cast<size_t>(depth), ']');
    return text;
  };
  Json out;
  EXPECT_TRUE(Json::Parse(nested_array(128), &out));
  EXPECT_FALSE(Json::Parse(nested_array(129), &out));

  std::string object = "1";
  for (int i = 0; i < 129; ++i) {
    object = "{\"k\":" + object + "}";
  }
  EXPECT_FALSE(Json::Parse(object, &out));

  // Pathological inputs come back as a clean `false`, not a crash — even
  // unbalanced ones far past the cap.
  EXPECT_FALSE(Json::Parse(std::string(100000, '['), &out));

  // Width is not depth: a large flat array stays parseable.
  std::string wide = "[0";
  for (int i = 1; i < 10000; ++i) wide += ",1";
  wide += "]";
  ASSERT_TRUE(Json::Parse(wide, &out));
  EXPECT_EQ(out.size(), 10000u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  const CounterId c = registry.Counter("test.counter");
  registry.Add(c);
  registry.Add(c, 41);
  const StatsSnapshot snap = registry.Snapshot();
  if (kMetricsEnabled) {
    EXPECT_EQ(snap.counter("test.counter"), 42u);
  } else {
    EXPECT_EQ(snap.counter("test.counter"), 0u);
  }
  // Missing names read as zero in either build.
  EXPECT_EQ(snap.counter("no.such.counter"), 0u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  const CounterId a = registry.Counter("same.name");
  const CounterId b = registry.Counter("same.name");
  EXPECT_EQ(a.slot, b.slot);
  registry.Add(a);
  registry.Add(b);
  const StatsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  if (kMetricsEnabled) EXPECT_EQ(snap.counters[0].value, 2u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  const GaugeId g = registry.Gauge("test.gauge");
  registry.Set(g, 7);
  registry.Set(g, -3);
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.gauge("test.gauge"), kMetricsEnabled ? -3 : 0);
}

TEST(MetricsRegistryTest, HistogramBucketsMatchPowerOfTwoLayout) {
  MetricsRegistry registry;
  const HistogramId h = registry.Histogram("test.hist");
  // Bucket 0: [0, 1). Bucket i: [2^(i-1), 2^i).
  registry.Record(h, 0.0);
  registry.Record(h, 0.99);   // bucket 0
  registry.Record(h, 1.0);    // bucket 1
  registry.Record(h, 2.0);    // bucket 2
  registry.Record(h, 3.0);    // bucket 2
  registry.Record(h, 1e30);   // clamps to last bucket
  const StatsSnapshot snap = registry.Snapshot();
  const auto* entry = snap.histogram("test.hist");
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->buckets.size(), kHistogramBucketCount);
  if (!kMetricsEnabled) {
    EXPECT_EQ(entry->count, 0u);
    return;
  }
  EXPECT_EQ(entry->count, 6u);
  EXPECT_EQ(entry->buckets[0], 2u);
  EXPECT_EQ(entry->buckets[1], 1u);
  EXPECT_EQ(entry->buckets[2], 2u);
  EXPECT_EQ(entry->buckets[kHistogramBucketCount - 1], 1u);
  EXPECT_DOUBLE_EQ(entry->sum, 0.0 + 0.99 + 1.0 + 2.0 + 3.0 + 1e30);
  EXPECT_GT(entry->Mean(), 0.0);
  // Quantiles report the upper bound of the bucket containing the rank:
  // rank 3 of 6 is reached at bucket 1 ([1,2)), rank 4.5 inside bucket 2.
  EXPECT_DOUBLE_EQ(entry->ApproxQuantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(entry->ApproxQuantile(0.75), 4.0);
}

TEST(MetricsRegistryTest, HistogramEdgeValuesLandInEdgeBuckets) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry registry;
  const HistogramId h = registry.Histogram("edge.hist");
  // Zero and negative durations (a clock stepping backwards mid-span) both
  // clamp into bucket 0; values past any finite bound land in the overflow
  // bucket, including those past the uint64 conversion range.
  registry.Record(h, 0.0);
  registry.Record(h, -123.5);
  registry.Record(h, 1e300);
  registry.Record(h, 9.3e18);
  const StatsSnapshot snap = registry.Snapshot();
  const auto* entry = snap.histogram("edge.hist");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 4u);
  EXPECT_EQ(entry->buckets[0], 2u);
  EXPECT_EQ(entry->buckets[kHistogramBucketCount - 1], 2u);
  // The overflow bucket has no finite upper bound, so tail quantiles report
  // +inf rather than inventing a number.
  EXPECT_TRUE(std::isinf(entry->ApproxQuantile(1.0)));
}

TEST(MetricsRegistryTest, ResetZeroesValuesKeepsNames) {
  MetricsRegistry registry;
  const CounterId c = registry.Counter("test.counter");
  const HistogramId h = registry.Histogram("test.hist");
  registry.Add(c, 5);
  registry.Record(h, 3.0);
  registry.Reset();
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 0u);
  ASSERT_NE(snap.histogram("test.hist"), nullptr);
  EXPECT_EQ(snap.histogram("test.hist")->count, 0u);
  // Handles stay valid after Reset.
  registry.Add(c, 2);
  if (kMetricsEnabled) {
    EXPECT_EQ(registry.Snapshot().counter("test.counter"), 2u);
  }
}

TEST(MetricsRegistryTest, MergesThreadShards) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry registry;
  const CounterId c = registry.Counter("test.parallel");
  const HistogramId h = registry.Histogram("test.parallel_hist");
  constexpr size_t kTasks = 64;
  constexpr uint64_t kPerTask = 1000;
  ThreadPool pool(4);
  pool.ParallelFor(kTasks, [&](size_t i) {
    for (uint64_t j = 0; j < kPerTask; ++j) registry.Add(c);
    registry.Record(h, static_cast<double>(i));
  });
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("test.parallel"), kTasks * kPerTask);
  EXPECT_EQ(snap.histogram("test.parallel_hist")->count, kTasks);
}

TEST(MetricsRegistryTest, ShardValuesSurviveThreadExit) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry registry;
  const CounterId c = registry.Counter("test.exited");
  {
    std::thread worker([&] { registry.Add(c, 11); });
    worker.join();
  }
  EXPECT_EQ(registry.Snapshot().counter("test.exited"), 11u);
}

TEST(MetricsRegistryTest, PerRegistryIsolation) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry a;
  MetricsRegistry b;
  const CounterId ca = a.Counter("shared.name");
  const CounterId cb = b.Counter("shared.name");
  a.Add(ca, 3);
  b.Add(cb, 5);
  EXPECT_EQ(a.Snapshot().counter("shared.name"), 3u);
  EXPECT_EQ(b.Snapshot().counter("shared.name"), 5u);
}

TEST(MetricsRegistryTest, InvalidHandlesAreSilentNoOps) {
  MetricsRegistry registry;
  registry.Add(CounterId{}, 7);
  registry.Set(GaugeId{}, 7);
  registry.Record(HistogramId{}, 7.0);
  const StatsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(ScopedTimerTest, RecordsElapsedMicros) {
  MetricsRegistry registry;
  const HistogramId h = registry.Histogram("test.timer_us");
  { ScopedTimer timer(&registry, h); }
  { ScopedTimer timer(&registry, h); }
  const StatsSnapshot snap = registry.Snapshot();
  const auto* entry = snap.histogram("test.timer_us");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, kMetricsEnabled ? 2u : 0u);
  // Null registry must be safe (the disabled-pointer pattern).
  { ScopedTimer timer(nullptr, h); }
}

// ---------------------------------------------------------------------------
// StatsSnapshot JSON
// ---------------------------------------------------------------------------

TEST(StatsSnapshotTest, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("rt.counter"), 42);
  registry.Set(registry.Gauge("rt.gauge"), -17);
  const HistogramId h = registry.Histogram("rt.hist");
  registry.Record(h, 0.5);
  registry.Record(h, 1000.0);
  const StatsSnapshot snap = registry.Snapshot();

  StatsSnapshot parsed;
  ASSERT_TRUE(StatsSnapshot::FromJson(snap.ToJson(), &parsed));
  ASSERT_EQ(parsed.counters.size(), snap.counters.size());
  EXPECT_EQ(parsed.counter("rt.counter"), snap.counter("rt.counter"));
  EXPECT_EQ(parsed.gauge("rt.gauge"), snap.gauge("rt.gauge"));
  const auto* orig = snap.histogram("rt.hist");
  const auto* back = parsed.histogram("rt.hist");
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->count, orig->count);
  EXPECT_DOUBLE_EQ(back->sum, orig->sum);
  EXPECT_EQ(back->buckets, orig->buckets);
}

TEST(StatsSnapshotTest, FromJsonRejectsWrongShape) {
  StatsSnapshot out;
  EXPECT_FALSE(StatsSnapshot::FromJson("[]", &out));
  EXPECT_FALSE(StatsSnapshot::FromJson("{\"counters\": []}", &out));
  // Histogram bucket array of the wrong length.
  EXPECT_FALSE(StatsSnapshot::FromJson(
      "{\"counters\":{},\"gauges\":{},\"histograms\":"
      "{\"h\":{\"count\":1,\"sum\":2,\"buckets\":[1,2,3]}}}",
      &out));
}

TEST(StatsSnapshotTest, BucketUpperBounds) {
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(HistogramBucketUpperBound(5), 32.0);
  EXPECT_TRUE(std::isinf(HistogramBucketUpperBound(kHistogramBucketCount - 1)));
}

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, EmitsNestedJsonlSpans) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  std::ostringstream out;
  TraceSink sink(&out);
  ASSERT_TRUE(sink.ok());

  MetricsRegistry registry;
  const HistogramId outer_h = registry.Histogram("outer_us");
  const HistogramId inner_h = registry.Histogram("inner_us");
  registry.SetTraceSink(&sink);
  {
    ScopedTimer outer(&registry, outer_h, "outer");
    ScopedTimer inner(&registry, inner_h, "inner");
  }
  registry.SetTraceSink(nullptr);
  {
    ScopedTimer silent(&registry, outer_h, "silent");
  }

  std::vector<Json> events;
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    Json event;
    ASSERT_TRUE(Json::Parse(line, &event)) << line;
    events.push_back(std::move(event));
  }
  // Spans are emitted on completion: inner first, then outer; nothing after
  // the sink was detached.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].Find("name")->str(), "inner");
  EXPECT_EQ(events[0].Find("depth")->number(), 1.0);
  EXPECT_EQ(events[1].Find("name")->str(), "outer");
  EXPECT_EQ(events[1].Find("depth")->number(), 0.0);
  EXPECT_LE(events[1].Find("ts_us")->number(),
            events[0].Find("ts_us")->number());
  EXPECT_GE(events[1].Find("dur_us")->number(),
            events[0].Find("dur_us")->number());
}

std::vector<Json> ParseJsonl(const std::string& text) {
  std::vector<Json> events;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    Json event;
    EXPECT_TRUE(Json::Parse(line, &event)) << line;
    events.push_back(std::move(event));
  }
  return events;
}

TEST(TraceContextTest, NewTraceMintsDistinctActiveIds) {
  const TraceContext a = TraceContext::NewTrace();
  const TraceContext b = TraceContext::NewTrace();
  EXPECT_TRUE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_FALSE(TraceContext{}.active());
}

TEST(TraceSinkTest, DepthIsTrackedPerSink) {
  std::ostringstream out_a;
  std::ostringstream out_b;
  TraceSink a(&out_a);
  TraceSink b(&out_b);
  // A span on sink b opened inside a span on sink a is top-level *for b*:
  // each sink keeps its own per-thread nesting.
  {
    TraceSpan outer(&a, "a.outer");
    TraceSpan cross(&b, "b.top");
    TraceSpan inner(&a, "a.inner");
  }
  const std::vector<Json> from_a = ParseJsonl(out_a.str());
  const std::vector<Json> from_b = ParseJsonl(out_b.str());
  ASSERT_EQ(from_a.size(), 2u);
  ASSERT_EQ(from_b.size(), 1u);
  EXPECT_EQ(from_a[0].Find("name")->str(), "a.inner");
  EXPECT_EQ(from_a[0].Find("depth")->number(), 1.0);
  EXPECT_EQ(from_a[1].Find("name")->str(), "a.outer");
  EXPECT_EQ(from_a[1].Find("depth")->number(), 0.0);
  EXPECT_EQ(from_b[0].Find("name")->str(), "b.top");
  EXPECT_EQ(from_b[0].Find("depth")->number(), 0.0);
}

TEST(TraceSpanTest, EmitsAndOmitsCorrelationFields) {
  std::ostringstream out;
  TraceSink sink(&out);
  const TraceContext trace = TraceContext::NewTrace();
  { TraceSpan span(&sink, "tagged", trace, /*shard=*/3, /*seq=*/41); }
  { TraceSpan span(&sink, "untagged"); }
  const std::vector<Json> events = ParseJsonl(out.str());
  ASSERT_EQ(events.size(), 2u);
  ASSERT_NE(events[0].Find("trace"), nullptr);
  EXPECT_EQ(events[0].Find("trace")->number(),
            static_cast<double>(trace.trace_id));
  EXPECT_EQ(events[0].Find("shard")->number(), 3.0);
  EXPECT_EQ(events[0].Find("seq")->number(), 41.0);
  // Inactive context / unset shard / zero seq: the fields are absent, not
  // zero-valued.
  EXPECT_EQ(events[1].Find("trace"), nullptr);
  EXPECT_EQ(events[1].Find("shard"), nullptr);
  EXPECT_EQ(events[1].Find("seq"), nullptr);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RingKeepsMostRecentSpansAndDumps) {
  FlightRecorder recorder(4);
  TraceSink capture(static_cast<std::ostream*>(nullptr));  // capture-only
  capture.SetFlightRecorder(&recorder);
  for (int i = 0; i < 6; ++i) {
    SpanEvent span;
    span.name = "ring";
    span.ts_us = static_cast<double>(i);
    capture.EmitSpan(span);
  }
  EXPECT_EQ(recorder.recorded(), 6u);
  const std::vector<FlightRecorder::Recorded> snap = recorder.Snapshot();
  ASSERT_EQ(snap.size(), 4u);  // oldest two overwritten
  EXPECT_DOUBLE_EQ(snap.front().ts_us, 2.0);
  EXPECT_DOUBLE_EQ(snap.back().ts_us, 5.0);

  std::ostringstream out;
  TraceSink sink(&out);
  recorder.DumpTo(sink, "test stall");
  const std::vector<Json> events = ParseJsonl(out.str());
  ASSERT_EQ(events.size(), 5u);  // marker + 4 replayed spans
  ASSERT_NE(events[0].Find("event"), nullptr);
  EXPECT_EQ(events[0].Find("event")->str(), "flight_dump");
  EXPECT_EQ(events[0].Find("reason")->str(), "test stall");
  for (size_t i = 1; i < events.size(); ++i) {
    ASSERT_NE(events[i].Find("flight"), nullptr) << i;
    EXPECT_TRUE(events[i].Find("flight")->boolean());
  }
}

// ---------------------------------------------------------------------------
// TelemetryExporter
// ---------------------------------------------------------------------------

TEST(ExporterTest, DiffSnapshotsSubtractsCumulativeValues) {
  StatsSnapshot prev;
  prev.counters.push_back({"c", 10});
  StatsSnapshot::HistogramEntry ph;
  ph.name = "h";
  ph.count = 2;
  ph.sum = 3.0;
  ph.buckets.assign(kHistogramBucketCount, 0);
  ph.buckets[1] = 2;
  prev.histograms.push_back(ph);

  StatsSnapshot cur = prev;
  cur.counters[0].value = 25;
  cur.counters.push_back({"fresh", 5});
  cur.gauges.push_back({"g", -7});
  cur.histograms[0].count = 5;
  cur.histograms[0].sum = 9.0;
  cur.histograms[0].buckets[1] = 4;
  cur.histograms[0].buckets[3] = 1;

  const StatsSnapshot delta = DiffSnapshots(cur, prev);
  EXPECT_EQ(delta.counter("c"), 15u);
  EXPECT_EQ(delta.counter("fresh"), 5u);   // absent before: diffs vs zero
  EXPECT_EQ(delta.gauge("g"), -7);         // gauges pass through
  const auto* dh = delta.histogram("h");
  ASSERT_NE(dh, nullptr);
  EXPECT_EQ(dh->count, 3u);
  EXPECT_DOUBLE_EQ(dh->sum, 6.0);
  EXPECT_EQ(dh->buckets[1], 2u);
  EXPECT_EQ(dh->buckets[3], 1u);

  // A Reset() between snapshots makes current < previous: clamp, don't wrap.
  const StatsSnapshot clamped = DiffSnapshots(prev, cur);
  EXPECT_EQ(clamped.counter("c"), 0u);
  EXPECT_EQ(clamped.histogram("h")->count, 2u);  // shape mismatch-free clamp
}

TEST(ExporterTest, RenderPrometheusEmitsExpositionFormat) {
  StatsSnapshot snap;
  snap.counters.push_back({"anc.serve.accepted", 42});
  snap.gauges.push_back({"anc.serve.queue_depth", -1});
  StatsSnapshot::HistogramEntry h;
  h.name = "anc.apply_us";
  h.count = 3;
  h.sum = 4.5;
  h.buckets.assign(kHistogramBucketCount, 0);
  h.buckets[0] = 2;
  h.buckets[2] = 1;
  snap.histograms.push_back(h);

  const std::string text = RenderPrometheus(snap);
  EXPECT_NE(text.find("# TYPE anc_serve_accepted counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("anc_serve_accepted 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE anc_serve_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("anc_serve_queue_depth -1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE anc_apply_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("anc_apply_us_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  // Cumulative buckets: the +Inf bucket equals the total count.
  EXPECT_NE(text.find("anc_apply_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("anc_apply_us_sum 4.5\n"), std::string::npos);
  EXPECT_NE(text.find("anc_apply_us_count 3\n"), std::string::npos);
}

TEST(ExporterTest, SampleNowDiffsAgainstPreviousTick) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry registry;
  const CounterId c = registry.Counter("tick.counter");
  TelemetryExporter exporter([&registry] { return registry.Snapshot(); },
                             TelemetryOptions{});
  registry.Add(c, 5);
  const TelemetrySample first = exporter.SampleNow();
  EXPECT_EQ(first.stats.counter("tick.counter"), 5u);
  EXPECT_EQ(first.delta.counter("tick.counter"), 5u);
  registry.Add(c, 2);
  const TelemetrySample second = exporter.SampleNow();
  EXPECT_EQ(second.stats.counter("tick.counter"), 7u);
  EXPECT_EQ(second.delta.counter("tick.counter"), 2u);
  EXPECT_GE(second.t_s, first.t_s);
  ASSERT_EQ(exporter.samples().size(), 2u);

  // The JSONL rendering keeps only non-zero deltas and must parse.
  Json line;
  ASSERT_TRUE(Json::Parse(TelemetrySampleToJsonLine(second), &line));
  const Json* delta = line.Find("delta");
  ASSERT_NE(delta, nullptr);
  EXPECT_NE(delta->Find("counters")->Find("tick.counter"), nullptr);
}

// ---------------------------------------------------------------------------
// ShardHealthMonitor
// ---------------------------------------------------------------------------

ClusterHealthSample HealthyCluster() {
  ClusterHealthSample sample;
  sample.num_shards = 4;
  sample.num_edges = 1000;
  sample.cut_edges = 150;
  sample.cut_ratio = 0.15;
  sample.balance = 1.05;
  for (uint32_t s = 0; s < 4; ++s) {
    ShardHealthSample shard;
    shard.shard = s;
    shard.accepted = 10000;
    shard.queue_depth = 4;
    shard.queue_oldest_age_s = 0.001;
    shard.applied_seq = 9996;
    shard.durable_seq = 9990;
    shard.durable_enabled = true;
    shard.view_age_s = 0.01;
    sample.shards.push_back(shard);
  }
  return sample;
}

TEST(ShardHealthMonitorTest, HealthyClusterReadsHealthy) {
  const ShardHealthMonitor monitor;
  const HealthReport report = monitor.Assess(HealthyCluster());
  EXPECT_EQ(report.overall, HealthState::kHealthy);
  EXPECT_EQ(report.cluster_state, HealthState::kHealthy);
  EXPECT_TRUE(report.cluster_reasons.empty());
  ASSERT_EQ(report.shards.size(), 4u);
  for (const ShardScorecard& card : report.shards) {
    EXPECT_EQ(card.state, HealthState::kHealthy);
    EXPECT_TRUE(card.reasons.empty());
  }
}

TEST(ShardHealthMonitorTest, HashLikeCutRatioTripsCluster) {
  const ShardHealthMonitor monitor;
  ClusterHealthSample sample = HealthyCluster();
  // A hash partitioner on a community graph cuts ~ (k-1)/k of the edges.
  sample.cut_edges = 750;
  sample.cut_ratio = 0.75;
  const HealthReport report = monitor.Assess(sample);
  EXPECT_EQ(report.cluster_state, HealthState::kCritical);
  EXPECT_EQ(report.overall, HealthState::kCritical);
  ASSERT_FALSE(report.cluster_reasons.empty());
  EXPECT_NE(report.cluster_reasons[0].find("cut_ratio"), std::string::npos);
}

TEST(ShardHealthMonitorTest, PerShardChecksTripIndependently) {
  const ShardHealthMonitor monitor;
  ClusterHealthSample sample = HealthyCluster();
  sample.shards[1].queue_depth = 5000;       // degraded (>= 1024)
  sample.shards[2].applied_seq = 100000;
  sample.shards[2].durable_seq = 1000;       // critical durable lag
  const HealthReport report = monitor.Assess(sample);
  EXPECT_EQ(report.cluster_state, HealthState::kHealthy);
  EXPECT_EQ(report.shards[0].state, HealthState::kHealthy);
  EXPECT_EQ(report.shards[1].state, HealthState::kDegraded);
  EXPECT_EQ(report.shards[2].state, HealthState::kCritical);
  EXPECT_EQ(report.overall, HealthState::kCritical);
  // Disabling durability suppresses the lag check entirely.
  sample.shards[2].durable_enabled = false;
  EXPECT_EQ(monitor.Assess(sample).shards[2].state, HealthState::kHealthy);
}

TEST(ShardHealthMonitorTest, ReportSerializesToParsableJson) {
  const ShardHealthMonitor monitor;
  ClusterHealthSample sample = HealthyCluster();
  sample.cut_ratio = 0.30;  // one degraded reason to exercise the arrays
  const HealthReport report = monitor.Assess(sample);
  Json parsed;
  ASSERT_TRUE(Json::Parse(report.ToJson(), &parsed));
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.Find("overall")->str(), "degraded");
  ASSERT_NE(parsed.Find("shards"), nullptr);
  EXPECT_EQ(parsed.Find("shards")->size(), 4u);
  EXPECT_NE(report.ToString().find("degraded"), std::string::npos);
}

// ---------------------------------------------------------------------------
// StallWatchdog
// ---------------------------------------------------------------------------

TEST(StallWatchdogTest, FiresOncePerStallEpisodeAndRearms) {
  std::atomic<uint64_t> progress{1};
  std::atomic<bool> pending{true};
  std::atomic<int> fired{0};
  std::string stalled_name;
  std::mutex name_mutex;

  WatchdogOptions options;
  options.poll = std::chrono::milliseconds(5);
  options.stall_after_s = 0.05;
  StallWatchdog watchdog(
      [&] {
        return std::vector<WatchedProgress>{
            {"shard-0", progress.load(), pending.load()}};
      },
      [&](const WatchedProgress& entry, double stalled_s) {
        std::lock_guard<std::mutex> lock(name_mutex);
        stalled_name = entry.name;
        EXPECT_GE(stalled_s, 0.05);
        fired.fetch_add(1);
      },
      options);
  ASSERT_TRUE(watchdog.Start());
  EXPECT_FALSE(watchdog.Start());  // already running

  // Frozen progress with pending work: exactly one firing per episode.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(fired.load(), 1);
  {
    std::lock_guard<std::mutex> lock(name_mutex);
    EXPECT_EQ(stalled_name, "shard-0");
  }

  // Progress re-arms the watchdog; freezing again fires a second episode.
  progress.fetch_add(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(fired.load(), 2);
  EXPECT_EQ(watchdog.stalls(), 2u);

  // No pending work: a frozen watermark is idle, not stalled.
  progress.fetch_add(1);
  pending.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(fired.load(), 2);
  watchdog.Stop();
  EXPECT_FALSE(watchdog.running());
}

}  // namespace
}  // namespace anc::obs
