// Edge-case coverage across modules: degenerate inputs, move-only
// plumbing, metric boundary conditions.

#include <memory>

#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "metrics/kmeans.h"
#include "metrics/quality.h"
#include "metrics/spectral.h"
#include "metrics/structural.h"
#include "pyramid/clustering.h"
#include "pyramid/pyramid_index.h"
#include "util/rng.h"
#include "util/status.h"

namespace anc {
namespace {

TEST(ResultEdgeCases, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(42));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 42);
}

TEST(GraphEdgeCases, EmptyGraph) {
  GraphBuilder b;
  Graph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(GraphEdgeCases, OppositeOnBothEnds) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(3, 7).ok());
  Graph g = b.Build();
  const EdgeId e = *g.FindEdge(3, 7);
  EXPECT_EQ(g.Opposite(e, 3), 7u);
  EXPECT_EQ(g.Opposite(e, 7), 3u);
}

TEST(MetricsEdgeCases, EmptyClusteringsScoreZero) {
  Clustering empty;
  EXPECT_EQ(Nmi(empty, empty), 0.0);
  EXPECT_EQ(Purity(empty, empty), 0.0);
  EXPECT_EQ(F1Score(empty, empty), 0.0);
  EXPECT_EQ(AdjustedRandIndex(empty, empty), 0.0);
}

TEST(MetricsEdgeCases, AllNoiseVsLabels) {
  Clustering noise;
  noise.labels.assign(6, kNoise);
  noise.num_clusters = 0;
  Clustering labeled = Clustering::FromLabels({0, 0, 0, 1, 1, 1});
  EXPECT_EQ(Nmi(noise, labeled), 0.0);
  EXPECT_EQ(Purity(noise, labeled), 0.0);
}

TEST(MetricsEdgeCases, ModularityOfEdgelessGraph) {
  GraphBuilder b;
  b.SetNumNodes(4);
  Graph g = b.Build();
  Clustering c = Clustering::FromLabels({0, 0, 1, 1});
  EXPECT_EQ(Modularity(g, c), 0.0);
  EXPECT_EQ(MeanConductance(g, c), 0.0);
}

TEST(KMeansEdgeCases, SinglePoint) {
  Rng rng(1);
  std::vector<double> points = {1.0, 2.0};
  std::vector<uint32_t> labels = KMeans(points, 1, 2, 3, 10, rng);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], 0u);
}

TEST(KMeansEdgeCases, IdenticalPointsDoNotCrash) {
  Rng rng(2);
  std::vector<double> points(20, 5.0);  // 10 identical 2-d points
  std::vector<uint32_t> labels = KMeans(points, 10, 2, 3, 10, rng);
  for (uint32_t l : labels) EXPECT_LT(l, 3u);
}

TEST(SpectralEdgeCases, MoreClustersThanNodes) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  Graph g = b.Build();
  SpectralParams sp;
  sp.num_clusters = 50;  // > n: must clamp, not crash
  Clustering c = SpectralClustering(g, {}, sp);
  EXPECT_LE(c.num_clusters, 3u);
  EXPECT_EQ(c.labels.size(), 3u);
}

TEST(ClusteringEdgeCases, LocalClusterOnIsolatedNode) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  b.SetNumNodes(3);  // node 2 isolated
  Graph g = b.Build();
  PyramidParams params;
  PyramidIndex idx(g, std::vector<double>(g.NumEdges(), 1.0), params);
  std::vector<NodeId> members = LocalCluster(idx, 2, 1);
  EXPECT_EQ(members, std::vector<NodeId>{2});
}

TEST(ClusteringEdgeCases, PowerClusteringDegreeTieBreaksById) {
  // A 4-cycle: all degrees equal; ranks fall back to node id, so node 0
  // leads the first cluster deterministically.
  GraphBuilder b;
  for (NodeId v = 0; v < 4; ++v) ASSERT_TRUE(b.AddEdge(v, (v + 1) % 4).ok());
  Graph g = b.Build();
  PyramidParams params;
  params.seed = 5;
  PyramidIndex idx(g, std::vector<double>(g.NumEdges(), 1.0), params);
  Clustering c = PowerClustering(idx, 1);
  EXPECT_EQ(c.labels[0], 0u);
  EXPECT_EQ(c.NumAssigned(), 4u);
}

TEST(DatasetEdgeCases, PlantedPartitionZeroMixing) {
  Rng rng(3);
  PlantedPartitionParams params;
  params.num_communities = 3;
  params.min_size = 8;
  params.max_size = 8;
  params.mixing = 0.0;
  GroundTruthGraph data = PlantedPartition(params, rng);
  for (EdgeId e = 0; e < data.graph.NumEdges(); ++e) {
    const auto& [u, v] = data.graph.Endpoints(e);
    EXPECT_EQ(data.truth.labels[u], data.truth.labels[v]);
  }
}

TEST(StatusEdgeCases, ResultFromStatusPreservesMessage) {
  Result<int> r(Status::OutOfRange("edge 99"));
  EXPECT_EQ(r.status().message(), "edge 99");
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace anc
