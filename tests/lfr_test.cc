#include <algorithm>

#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "graph/algorithms.h"
#include "util/rng.h"

namespace anc {
namespace {

LfrParams DefaultParams() {
  LfrParams params;
  params.num_nodes = 600;
  params.min_degree = 4;
  params.max_degree = 40;
  params.min_community = 15;
  params.max_community = 80;
  params.mu = 0.2;
  return params;
}

TEST(LfrTest, ShapeAndTruth) {
  Rng rng(1);
  GroundTruthGraph data = LfrGraph(DefaultParams(), rng);
  EXPECT_EQ(data.graph.NumNodes(), 600u);
  EXPECT_EQ(data.truth.labels.size(), 600u);
  EXPECT_GT(data.truth.num_clusters, 5u);
  for (uint32_t l : data.truth.labels) {
    EXPECT_NE(l, kNoise);
    EXPECT_LT(l, data.truth.num_clusters);
  }
  // Community sizes within range (last may have absorbed a remainder).
  std::vector<uint32_t> sizes = data.truth.ClusterSizes();
  for (uint32_t s : sizes) {
    EXPECT_GE(s, 15u);
    EXPECT_LE(s, 80u + 15u);
  }
}

TEST(LfrTest, RealizedMixingTracksTarget) {
  for (double mu : {0.1, 0.3, 0.5}) {
    Rng rng(2);
    LfrParams params = DefaultParams();
    params.mu = mu;
    GroundTruthGraph data = LfrGraph(params, rng);
    uint32_t inter = 0;
    for (EdgeId e = 0; e < data.graph.NumEdges(); ++e) {
      const auto& [u, v] = data.graph.Endpoints(e);
      inter += data.truth.labels[u] != data.truth.labels[v] ? 1 : 0;
    }
    const double realized =
        static_cast<double>(inter) / data.graph.NumEdges();
    EXPECT_NEAR(realized, mu, 0.12) << "target mu " << mu;
  }
}

TEST(LfrTest, DegreesAreHeavyTailed) {
  Rng rng(3);
  LfrParams params = DefaultParams();
  params.num_nodes = 1500;
  GroundTruthGraph data = LfrGraph(params, rng);
  const double mean =
      2.0 * data.graph.NumEdges() / data.graph.NumNodes();
  EXPECT_GT(data.graph.MaxDegree(), 2.5 * mean);
  // Most nodes stay near the minimum (power-law mass at the bottom).
  uint32_t small = 0;
  for (NodeId v = 0; v < data.graph.NumNodes(); ++v) {
    small += data.graph.Degree(v) <= 2 * params.min_degree ? 1 : 0;
  }
  EXPECT_GT(small * 2, data.graph.NumNodes());
}

TEST(LfrTest, DeterministicGivenSeed) {
  Rng a(9);
  Rng b(9);
  GroundTruthGraph ga = LfrGraph(DefaultParams(), a);
  GroundTruthGraph gb = LfrGraph(DefaultParams(), b);
  EXPECT_EQ(ga.graph.NumEdges(), gb.graph.NumEdges());
  EXPECT_EQ(ga.truth.labels, gb.truth.labels);
}

TEST(LfrTest, MostlyConnected) {
  Rng rng(5);
  GroundTruthGraph data = LfrGraph(DefaultParams(), rng);
  uint32_t components = 0;
  std::vector<uint32_t> label = ConnectedComponents(data.graph, &components);
  // The giant component must dominate (configuration models can strand a
  // few nodes).
  std::vector<uint32_t> sizes(components, 0);
  for (uint32_t l : label) ++sizes[l];
  EXPECT_GT(*std::max_element(sizes.begin(), sizes.end()),
            data.graph.NumNodes() * 9 / 10);
}

}  // namespace
}  // namespace anc
