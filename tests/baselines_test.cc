#include <gtest/gtest.h>

#include "baselines/attractor.h"
#include "baselines/dynamo.h"
#include "baselines/louvain.h"
#include "baselines/lwep.h"
#include "baselines/scan.h"
#include "datasets/synthetic.h"
#include "metrics/quality.h"
#include "metrics/structural.h"
#include "util/rng.h"

namespace anc {
namespace {

/// Two 5-cliques with a single bridge.
Graph TwoCliques(EdgeId* bridge = nullptr) {
  GraphBuilder b;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) EXPECT_TRUE(b.AddEdge(u, v).ok());
  }
  for (NodeId u = 5; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) EXPECT_TRUE(b.AddEdge(u, v).ok());
  }
  EXPECT_TRUE(b.AddEdge(4, 5).ok());
  Graph g = b.Build();
  if (bridge != nullptr) *bridge = *g.FindEdge(4, 5);
  return g;
}

Clustering PlantedTwoCliques() {
  return Clustering::FromLabels({0, 0, 0, 0, 0, 1, 1, 1, 1, 1});
}

GroundTruthGraph MediumPlanted(uint64_t seed) {
  Rng rng(seed);
  PlantedPartitionParams params;
  params.num_communities = 8;
  params.min_size = 20;
  params.max_size = 30;
  params.p_in = 0.4;
  params.mixing = 0.08;
  return PlantedPartition(params, rng);
}

// ------------------------------------------------------------------- SCAN --

TEST(ScanTest, SeparatesTwoCliques) {
  Graph g = TwoCliques();
  ScanParams params;
  params.epsilon = 0.6;
  params.mu = 3;
  Clustering c = Scan(g, params);
  EXPECT_NEAR(Nmi(c, PlantedTwoCliques()), 1.0, 1e-9);
}

TEST(ScanTest, HighEpsilonLeavesOnlyNoise) {
  // On a cycle no pair of closed neighborhoods overlaps enough for sigma
  // near 1 (adjacent nodes share exactly themselves: 2/3), so a high
  // epsilon classifies everything as noise.
  GraphBuilder b;
  for (NodeId v = 0; v < 6; ++v) ASSERT_TRUE(b.AddEdge(v, (v + 1) % 6).ok());
  Graph g = b.Build();
  ScanParams params;
  params.epsilon = 0.9;
  params.mu = 2;
  Clustering c = Scan(g, params);
  EXPECT_EQ(c.num_clusters, 0u);
  EXPECT_EQ(c.NumAssigned(), 0u);
}

TEST(ScanTest, RecoverablePlantedCommunities) {
  GroundTruthGraph data = MediumPlanted(1);
  ScanParams params;
  params.epsilon = 0.3;
  params.mu = 3;
  Clustering c = Scan(data.graph, params);
  EXPECT_GT(Nmi(c, data.truth), 0.5);
}

TEST(ScanTest, WeightedSimilarityChangesResult) {
  EdgeId bridge;
  Graph g = TwoCliques(&bridge);
  ScanParams params;
  params.epsilon = 0.5;
  params.mu = 3;
  // Heavy bridge pulls nodes 4 and 5 together under cosine similarity.
  std::vector<double> w(g.NumEdges(), 1.0);
  w[bridge] = 100.0;
  Clustering weighted = Scan(g, params, w);
  Clustering unweighted = Scan(g, params);
  EXPECT_NE(weighted.labels, unweighted.labels);
}

// ---------------------------------------------------------------- Louvain --

TEST(LouvainTest, SeparatesTwoCliques) {
  Graph g = TwoCliques();
  Clustering c = Louvain(g, {});
  EXPECT_NEAR(Nmi(c, PlantedTwoCliques()), 1.0, 1e-9);
}

TEST(LouvainTest, PositiveModularityOnPlanted) {
  GroundTruthGraph data = MediumPlanted(2);
  Clustering c = Louvain(data.graph, {});
  EXPECT_GT(Modularity(data.graph, c), 0.5);
  EXPECT_GT(Nmi(c, data.truth), 0.7);
}

TEST(LouvainTest, WeightsMatter) {
  EdgeId bridge;
  Graph g = TwoCliques(&bridge);
  std::vector<double> w(g.NumEdges(), 1.0);
  w[bridge] = 100.0;  // overwhelming bridge binds its endpoints together
  Clustering c = Louvain(g, w);
  EXPECT_EQ(c.labels[4], c.labels[5]);
  // Unweighted Louvain keeps the bridge endpoints in their own cliques.
  Clustering unweighted = Louvain(g, {});
  EXPECT_NE(unweighted.labels[4], unweighted.labels[5]);
}

TEST(LouvainTest, AssignsEveryNode) {
  GroundTruthGraph data = MediumPlanted(3);
  Clustering c = Louvain(data.graph, {});
  EXPECT_EQ(c.NumAssigned(), data.graph.NumNodes());
}

// -------------------------------------------------------------- Attractor --

TEST(AttractorTest, SeparatesTwoCliques) {
  Graph g = TwoCliques();
  Clustering c = Attractor(g);
  EXPECT_NEAR(Nmi(c, PlantedTwoCliques()), 1.0, 1e-9);
}

TEST(AttractorTest, ConvergesOnPlanted) {
  GroundTruthGraph data = MediumPlanted(4);
  AttractorParams params;
  Clustering c = Attractor(data.graph, params);
  EXPECT_GT(Nmi(c, data.truth), 0.4);
}

TEST(AttractorTest, WeightedInitializationSteersTheCut) {
  // Heavy bridge weight pulls the two cliques together under the weighted
  // Jaccard initialization; the unweighted run keeps them apart.
  EdgeId bridge;
  Graph g = TwoCliques(&bridge);
  Clustering unweighted = Attractor(g);
  EXPECT_NE(unweighted.labels[4], unweighted.labels[5]);
  std::vector<double> w(g.NumEdges(), 1.0);
  w[bridge] = 50.0;
  AttractorParams params;
  Clustering weighted = Attractor(g, params, w);
  EXPECT_EQ(weighted.labels[4], weighted.labels[5]);
}

TEST(AttractorTest, SingleCliqueStaysTogether) {
  GraphBuilder b;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) ASSERT_TRUE(b.AddEdge(u, v).ok());
  }
  Graph g = b.Build();
  Clustering c = Attractor(g);
  EXPECT_EQ(c.num_clusters, 1u);
}

// ------------------------------------------------------------------- DYNA --

TEST(DynamoTest, InitialAssignmentMatchesLouvainQuality) {
  GroundTruthGraph data = MediumPlanted(5);
  DynamoClusterer dyna(data.graph, std::vector<double>(data.graph.NumEdges(), 1.0));
  EXPECT_GT(Nmi(dyna.CurrentClustering(), data.truth), 0.7);
}

TEST(DynamoTest, RefineImprovesOrKeepsModularity) {
  GroundTruthGraph data = MediumPlanted(6);
  std::vector<double> w(data.graph.NumEdges(), 1.0);
  DynamoClusterer dyna(data.graph, w);
  const double before = dyna.CurrentModularity();
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(data.graph.NumEdges()));
    dyna.UpdateWeight(e, 1.0 + rng.NextDouble());
  }
  dyna.Refine();
  // Refinement moves only when modularity strictly improves under the new
  // weights; the outcome must stay a sane clustering.
  const double after = dyna.CurrentModularity();
  EXPECT_GT(after, 0.0);
  EXPECT_GT(after, before - 0.2);
}

TEST(DynamoTest, SetAllWeightsMarksChangedRegions) {
  EdgeId bridge;
  Graph g = TwoCliques(&bridge);
  std::vector<double> w(g.NumEdges(), 1.0);
  DynamoClusterer dyna(g, w);
  // Strengthen the bridge massively: after refresh+refine, 4 and 5 should
  // end up together.
  w[bridge] = 200.0;
  dyna.SetAllWeights(w);
  dyna.Refine();
  Clustering c = dyna.CurrentClustering();
  EXPECT_EQ(c.labels[4], c.labels[5]);
}

// ------------------------------------------------------------------- LWEP --

TEST(LwepTest, StepSeparatesCliques) {
  Graph g = TwoCliques();
  LwepClusterer lwep(g, /*top_k=*/4);
  Clustering c = lwep.Step(std::vector<double>(g.NumEdges(), 1.0));
  EXPECT_GT(Nmi(c, PlantedTwoCliques()), 0.8);
}

TEST(LwepTest, TracksWeightShift) {
  EdgeId bridge;
  Graph g = TwoCliques(&bridge);
  LwepClusterer lwep(g, /*top_k=*/2);
  std::vector<double> w(g.NumEdges(), 1.0);
  Clustering before = lwep.Step(w);
  EXPECT_NE(before.labels[4], before.labels[5]);
  // Make the bridge the only heavy edge at nodes 4 and 5.
  w[bridge] = 50.0;
  Clustering after = lwep.Step(w);
  EXPECT_EQ(after.labels[4], after.labels[5]);
}

TEST(LwepTest, AssignsEveryNodeWithEdges) {
  GroundTruthGraph data = MediumPlanted(7);
  LwepClusterer lwep(data.graph);
  Clustering c = lwep.Step({});
  EXPECT_EQ(c.NumAssigned(), data.graph.NumNodes());
}

}  // namespace
}  // namespace anc
