#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "activation/stream_io.h"
#include "datasets/synthetic.h"
#include "util/rng.h"

namespace anc {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(StreamIoTest, RoundTrip) {
  Rng rng(1);
  Graph g = ErdosRenyi(40, 120, rng);
  ActivationStream stream = UniformStream(g, 5, 0.1, rng);
  const std::string path = TempPath("anc_stream_rt.txt");
  ASSERT_TRUE(SaveActivationStream(g, stream, path).ok());
  Result<ActivationStream> loaded = LoadActivationStream(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].edge, stream[i].edge);
    EXPECT_DOUBLE_EQ(loaded.value()[i].time, stream[i].time);
  }
  std::remove(path.c_str());
}

TEST(StreamIoTest, RejectsNonEdge) {
  // Path 0-1-2: the pair (0, 2) exists as nodes but not as an edge.
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_bad.txt");
  {
    std::ofstream out(path);
    out << "0 2 1.0\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(StreamIoTest, RejectsDecreasingTimestamps) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_dec.txt");
  {
    std::ofstream out(path);
    out << "0 1 5.0\n0 1 4.0\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(StreamIoTest, RejectsMalformedLine) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_mal.txt");
  {
    std::ofstream out(path);
    out << "0 1 not-a-number\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(StreamIoTest, CommentsAndBlanksSkipped) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_cmt.txt");
  {
    std::ofstream out(path);
    out << "# header\n\n0 1 1.0\n# trailing\n0 1 2.0\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  std::remove(path.c_str());
}

TEST(StreamIoTest, ErrorPinpointsFileAndLine) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_ctx.txt");
  {
    std::ofstream out(path);
    out << "# header\n0 1 1.0\n0 1 oops\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  ASSERT_FALSE(r.ok());
  const std::string msg = r.status().message();
  EXPECT_NE(msg.find(path + ":3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("timestamp"), std::string::npos) << msg;
  EXPECT_NE(msg.find("oops"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(StreamIoTest, ErrorNamesMissingField) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_short.txt");
  {
    std::ofstream out(path);
    out << "0 1\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("missing timestamp"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(StreamIoTest, TrailingContentIsMalformed) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_trail.txt");
  {
    std::ofstream out(path);
    out << "0 1 1.0 extra\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("trailing"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(StreamIoTest, SkipBadLinesLoadsTheRest) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_skip.txt");
  {
    std::ofstream out(path);
    out << "0 1 1.0\n"     // good
        << "0 2 1.5\n"     // non-edge
        << "1 2 junk\n"    // malformed timestamp
        << "1 2 2.0\n"     // good
        << "0 1 0.5\n"     // timestamp regression
        << "0 1 3.0\n";    // good
  }
  StreamLoadOptions options;
  options.skip_bad_lines = true;
  StreamLoadReport report;
  Result<ActivationStream> r =
      LoadActivationStream(g, path, options, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 3u);
  EXPECT_EQ(report.data_lines, 6u);
  EXPECT_EQ(report.loaded, 3u);
  EXPECT_EQ(report.skipped, 3u);
  EXPECT_NE(report.first_error.find(path + ":2"), std::string::npos)
      << report.first_error;
  // The surviving activations stay monotone.
  EXPECT_DOUBLE_EQ(r.value()[0].time, 1.0);
  EXPECT_DOUBLE_EQ(r.value()[1].time, 2.0);
  EXPECT_DOUBLE_EQ(r.value()[2].time, 3.0);
  std::remove(path.c_str());
}

TEST(StreamIoTest, StrictModeFillsReportOnFailure) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_rep.txt");
  {
    std::ofstream out(path);
    out << "0 1 1.0\nbogus\n";
  }
  StreamLoadReport report;
  Result<ActivationStream> r =
      LoadActivationStream(g, path, StreamLoadOptions{}, &report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(report.loaded, 1u);
  EXPECT_FALSE(report.first_error.empty());
  EXPECT_EQ(r.status().message(), report.first_error);
  std::remove(path.c_str());
}

TEST(StreamIoTest, BinaryGarbageSurvivedAsStatusNotCrash) {
  // Pins the fuzz/fuzz_stream.cc surface (docs/static_analysis.md):
  // arbitrary bytes — embedded NULs, no trailing newline, tokens that are
  // not numbers — must come back as a Status in strict mode and as a
  // fully-skipped load in skip mode, never as a crash or hang.
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_garbage.txt");
  {
    std::ofstream out(path, std::ios::binary);
    const char garbage[] = "\x00\xff\x7f 0 1\n\x01\x02"
                           "nan inf -9e999\n0 1";
    out.write(garbage, sizeof(garbage) - 1);
  }
  // Which error code depends on how far the reader gets before the NUL
  // bytes derail it; the contract is only that it *is* an error Status.
  Result<ActivationStream> strict = LoadActivationStream(g, path);
  ASSERT_FALSE(strict.ok());
  EXPECT_FALSE(strict.status().message().empty());

  StreamLoadOptions options;
  options.skip_bad_lines = true;
  StreamLoadReport report;
  Result<ActivationStream> skipped =
      LoadActivationStream(g, path, options, &report);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_TRUE(skipped.value().empty());
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(report.skipped, report.data_lines);
  std::remove(path.c_str());
}

TEST(StreamIoTest, MissingFileIsIoError) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  Result<ActivationStream> r =
      LoadActivationStream(g, "/nonexistent/stream.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace anc
