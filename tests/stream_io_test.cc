#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "activation/stream_io.h"
#include "datasets/synthetic.h"
#include "util/rng.h"

namespace anc {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(StreamIoTest, RoundTrip) {
  Rng rng(1);
  Graph g = ErdosRenyi(40, 120, rng);
  ActivationStream stream = UniformStream(g, 5, 0.1, rng);
  const std::string path = TempPath("anc_stream_rt.txt");
  ASSERT_TRUE(SaveActivationStream(g, stream, path).ok());
  Result<ActivationStream> loaded = LoadActivationStream(g, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].edge, stream[i].edge);
    EXPECT_DOUBLE_EQ(loaded.value()[i].time, stream[i].time);
  }
  std::remove(path.c_str());
}

TEST(StreamIoTest, RejectsNonEdge) {
  // Path 0-1-2: the pair (0, 2) exists as nodes but not as an edge.
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_bad.txt");
  {
    std::ofstream out(path);
    out << "0 2 1.0\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(StreamIoTest, RejectsDecreasingTimestamps) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_dec.txt");
  {
    std::ofstream out(path);
    out << "0 1 5.0\n0 1 4.0\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(StreamIoTest, RejectsMalformedLine) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_mal.txt");
  {
    std::ofstream out(path);
    out << "0 1 not-a-number\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(StreamIoTest, CommentsAndBlanksSkipped) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  const std::string path = TempPath("anc_stream_cmt.txt");
  {
    std::ofstream out(path);
    out << "# header\n\n0 1 1.0\n# trailing\n0 1 2.0\n";
  }
  Result<ActivationStream> r = LoadActivationStream(g, path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  std::remove(path.c_str());
}

TEST(StreamIoTest, MissingFileIsIoError) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  Result<ActivationStream> r =
      LoadActivationStream(g, "/nonexistent/stream.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace anc
