#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "baselines/louvain.h"
#include "baselines/scan.h"
#include "core/anc.h"
#include "datasets/synthetic.h"
#include "metrics/quality.h"
#include "metrics/spectral.h"
#include "metrics/structural.h"
#include "util/rng.h"

namespace anc {
namespace {

/// End-to-end scenarios crossing every module, parameterized over RNG
/// seeds like a property suite.

class EndToEndTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EndToEndTest, LongStreamPreservesIndexIntegrity) {
  Rng rng(GetParam());
  PlantedPartitionParams pp;
  pp.num_communities = 6;
  pp.min_size = 12;
  pp.max_size = 20;
  pp.p_in = 0.4;
  pp.mixing = 0.15;
  GroundTruthGraph data = PlantedPartition(pp, rng);

  AncConfig config;
  config.similarity.lambda = 0.2;
  config.pyramid.num_pyramids = 3;
  config.pyramid.seed = GetParam() * 13 + 1;
  config.rep = 3;
  config.mode = AncMode::kOnline;
  AncIndex anc(data.graph, config);

  ActivationStream stream = CommunityBiasedStream(
      data.graph, data.truth.labels, 25, 0.04, 6.0, rng);
  ASSERT_TRUE(anc.ApplyStream(stream).ok());

  // Invariant 1: incremental index == rebuild at final weights.
  std::vector<double> weights(data.graph.NumEdges());
  for (EdgeId e = 0; e < weights.size(); ++e) {
    weights[e] = anc.engine().Weight(e);
  }
  for (uint32_t p = 0; p < config.pyramid.num_pyramids; ++p) {
    for (uint32_t l = 1; l <= anc.num_levels(); ++l) {
      ASSERT_TRUE(
          anc.index().partition(p, l).ConsistentWith(data.graph, weights));
    }
  }

  // Invariant 2: sigma caches still match direct recomputation.
  for (EdgeId e = 0; e < data.graph.NumEdges(); ++e) {
    const auto& [u, v] = data.graph.Endpoints(e);
    const double denom = anc.engine().RecomputeNodeActivity(u) +
                         anc.engine().RecomputeNodeActivity(v);
    const double expected =
        denom > 0 ? anc.engine().RecomputeSigmaNumerator(e) / denom : 0.0;
    ASSERT_NEAR(anc.engine().Sigma(e), expected,
                1e-6 * std::max(1.0, expected));
  }

  // Invariant 3: every level yields a full power clustering.
  for (uint32_t l = 1; l <= anc.num_levels(); ++l) {
    Clustering c = anc.Clusters(l);
    ASSERT_EQ(c.NumAssigned(), data.graph.NumNodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndTest, ::testing::Values(101, 202, 303));

TEST(IntegrationTest, AncQualityCompetitiveWithBaselinesOnPlanted) {
  Rng rng(42);
  PlantedPartitionParams pp;
  pp.num_communities = 10;
  pp.min_size = 16;
  pp.max_size = 28;
  pp.p_in = 0.45;
  pp.mixing = 0.08;
  GroundTruthGraph data = PlantedPartition(pp, rng);

  AncConfig config;
  config.rep = 7;
  config.pyramid.num_pyramids = 4;
  AncIndex anc(data.graph, config);
  double anc_nmi = 0.0;
  for (uint32_t l = 1; l <= anc.num_levels(); ++l) {
    anc_nmi = std::max(anc_nmi, Nmi(anc.Clusters(l), data.truth));
  }

  ScanParams scan_params;
  scan_params.epsilon = 0.5;
  scan_params.mu = 3;
  const double scan_nmi = Nmi(Scan(data.graph, scan_params), data.truth);

  // Exp 1's qualitative claim: ANCF's ground-truth scores are at least
  // competitive with SCAN's (on an easy planted graph both can near 1.0).
  EXPECT_GT(anc_nmi, scan_nmi - 0.05);
  EXPECT_GT(anc_nmi, 0.8);
}

TEST(IntegrationTest, DecayShiftsClustersTowardRecentActivity) {
  // Story test of the case study (Section VI-C): a node whose activations
  // migrate from one neighbor to another must migrate clusters too.
  // Build two 4-cliques sharing node 8 as a member of both.
  GraphBuilder b;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) ASSERT_TRUE(b.AddEdge(u, v).ok());
  }
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) ASSERT_TRUE(b.AddEdge(u, v).ok());
  }
  for (NodeId v = 0; v < 4; ++v) ASSERT_TRUE(b.AddEdge(8, v).ok());
  for (NodeId v = 4; v < 8; ++v) ASSERT_TRUE(b.AddEdge(8, v).ok());
  Graph g = b.Build();

  AncConfig config;
  config.similarity.lambda = 0.5;  // fast decay
  config.similarity.mu = 2;
  config.rep = 2;
  config.pyramid.num_pyramids = 4;
  config.pyramid.seed = 5;
  AncIndex anc(g, config);

  // Phase 1: node 8 interacts heavily with clique A (nodes 0-3).
  double t = 1.0;
  for (int round = 0; round < 30; ++round) {
    for (NodeId v = 0; v < 4; ++v) {
      ASSERT_TRUE(anc.Apply({*g.FindEdge(8, v), t}).ok());
      t += 0.05;
    }
    // Keep clique A internally warm.
    ASSERT_TRUE(anc.Apply({*g.FindEdge(0, 1), t}).ok());
    t += 0.05;
  }
  const EdgeId to_a = *g.FindEdge(8, 0);
  const EdgeId to_b = *g.FindEdge(8, 4);
  EXPECT_GT(anc.engine().Similarity(to_a), anc.engine().Similarity(to_b));

  // Phase 2: long quiet gap, then node 8 interacts only with clique B.
  t += 30.0;
  for (int round = 0; round < 30; ++round) {
    for (NodeId v = 4; v < 8; ++v) {
      ASSERT_TRUE(anc.Apply({*g.FindEdge(8, v), t}).ok());
      t += 0.05;
    }
    ASSERT_TRUE(anc.Apply({*g.FindEdge(4, 5), t}).ok());
    t += 0.05;
  }
  EXPECT_GT(anc.engine().Similarity(to_b), anc.engine().Similarity(to_a));
}

TEST(IntegrationTest, SpectralGroundTruthPipelineRuns) {
  // The Fig. 4 evaluation loop in miniature: snapshot weights -> spectral
  // ground truth -> score our clustering against it.
  Rng rng(11);
  PlantedPartitionParams pp;
  pp.num_communities = 5;
  pp.min_size = 12;
  pp.max_size = 16;
  pp.p_in = 0.5;
  pp.mixing = 0.15;
  GroundTruthGraph data = PlantedPartition(pp, rng);

  AncConfig config;
  config.rep = 3;
  AncIndex anc(data.graph, config);
  ActivationStream stream = CommunityBiasedStream(
      data.graph, data.truth.labels, 10, 0.05, 8.0, rng);
  ASSERT_TRUE(anc.ApplyStream(stream).ok());

  std::vector<double> activeness(data.graph.NumEdges());
  for (EdgeId e = 0; e < activeness.size(); ++e) {
    activeness[e] = anc.engine().activeness().Anchored(e);
  }
  SpectralParams sp;
  sp.num_clusters =
      2 * static_cast<uint32_t>(std::sqrt(data.graph.NumNodes()));
  Clustering truth = SpectralClustering(data.graph, activeness, sp);
  ASSERT_GT(truth.num_clusters, 1u);

  double best = 0.0;
  for (uint32_t l = 1; l <= anc.num_levels(); ++l) {
    best = std::max(best, Nmi(anc.Clusters(l), truth));
  }
  EXPECT_GT(best, 0.2);
}

TEST(IntegrationTest, UpdateLocalityBeatsGraphSize) {
  // Lemma 12 in practice: the average nodes touched per activation must be
  // a small fraction of k * levels * n (the worst case).
  Rng rng(55);
  Graph g = BarabasiAlbert(400, 3, rng);
  AncConfig config;
  config.rep = 2;
  config.pyramid.num_pyramids = 2;
  AncIndex anc(g, config);
  ActivationStream stream = UniformStream(g, 20, 0.01, rng);
  ASSERT_TRUE(anc.ApplyStream(stream).ok());
  const double per_activation =
      static_cast<double>(anc.total_touched_nodes()) / stream.size();
  const double worst_case =
      2.0 * anc.num_levels() * g.NumNodes();
  EXPECT_LT(per_activation, 0.2 * worst_case);
}

}  // namespace
}  // namespace anc
