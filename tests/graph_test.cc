#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/clustering_types.h"
#include "graph/graph.h"
#include "graph/io.h"

namespace anc {
namespace {

Graph TriangleWithTail() {
  // 0-1, 1-2, 0-2 triangle, plus 2-3 tail.
  GraphBuilder b;
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(0, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  return b.Build();
}

TEST(GraphBuilderTest, BasicCounts) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(2), 3u);
  EXPECT_EQ(g.Degree(3), 1u);
  EXPECT_EQ(g.MaxDegree(), 3u);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder b;
  EXPECT_FALSE(b.AddEdge(3, 3).ok());
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(GraphBuilderTest, SetNumNodesAllowsIsolatedVertices) {
  GraphBuilder b;
  b.SetNumNodes(10);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 10u);
  EXPECT_EQ(g.Degree(9), 0u);
}

TEST(GraphTest, AdjacencySortedByNeighborId) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(5, 0).ok());
  ASSERT_TRUE(b.AddEdge(5, 3).ok());
  ASSERT_TRUE(b.AddEdge(5, 1).ok());
  ASSERT_TRUE(b.AddEdge(5, 4).ok());
  Graph g = b.Build();
  auto adj = g.Neighbors(5);
  for (size_t i = 1; i < adj.size(); ++i) {
    EXPECT_LT(adj[i - 1].node, adj[i].node);
  }
}

TEST(GraphTest, EdgeIdsSharedBetweenDirections) {
  Graph g = TriangleWithTail();
  auto e = g.FindEdge(0, 1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(g.FindEdge(1, 0), e);
  const auto& [u, v] = g.Endpoints(*e);
  EXPECT_EQ(u, 0u);
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(g.Opposite(*e, 0), 1u);
  EXPECT_EQ(g.Opposite(*e, 1), 0u);
}

TEST(GraphTest, FindEdgeMissing) {
  Graph g = TriangleWithTail();
  EXPECT_FALSE(g.FindEdge(0, 3).has_value());
  EXPECT_FALSE(g.FindEdge(0, 99).has_value());
}

TEST(AlgorithmsTest, ConnectedComponentsTwoIslands) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  b.SetNumNodes(6);  // node 5 isolated
  Graph g = b.Build();
  uint32_t count = 0;
  std::vector<uint32_t> label = ConnectedComponents(g, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_NE(label[5], label[0]);
  EXPECT_NE(label[5], label[3]);
}

TEST(AlgorithmsTest, FilteredComponentsRespectsPredicate) {
  Graph g = TriangleWithTail();
  const EdgeId tail = *g.FindEdge(2, 3);
  uint32_t count = 0;
  std::vector<uint32_t> label = FilteredComponents(
      g, [tail](EdgeId e) { return e != tail; }, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(label[0], label[2]);
  EXPECT_NE(label[3], label[2]);
}

TEST(AlgorithmsTest, BfsHops) {
  // Path 0-1-2-3 plus disconnected 4.
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  b.SetNumNodes(5);
  Graph g = b.Build();
  std::vector<uint32_t> hops = BfsHops(g, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 2u);
  EXPECT_EQ(hops[3], 3u);
  EXPECT_EQ(hops[4], kUnreachedHops);
}

TEST(IoTest, EdgeListRoundTrip) {
  Graph g = TriangleWithTail();
  const std::string path =
      (std::filesystem::temp_directory_path() / "anc_io_test.txt").string();
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  Result<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded.value().NumEdges(), g.NumEdges());
  std::remove(path.c_str());
}

TEST(IoTest, LoadSkipsCommentsAndSelfLoopsAndCompactsIds) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "anc_io_test2.txt").string();
  {
    std::ofstream out(path);
    out << "# comment\n% comment\n100 200\n200 300\n300 300\n";
  }
  Result<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumNodes(), 3u);  // ids compacted to 0..2
  EXPECT_EQ(loaded.value().NumEdges(), 2u);  // self loop dropped
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIoError) {
  Result<Graph> r = LoadEdgeList("/nonexistent/path/graph.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, MalformedLineIsIoError) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "anc_io_test3.txt").string();
  {
    std::ofstream out(path);
    out << "1 2\nnot numbers\n";
  }
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST(ClusteringTypesTest, FromLabelsDensifies) {
  Clustering c = Clustering::FromLabels({7, 7, 9, kNoise, 9, 4});
  EXPECT_EQ(c.num_clusters, 3u);
  EXPECT_EQ(c.labels[0], c.labels[1]);
  EXPECT_EQ(c.labels[2], c.labels[4]);
  EXPECT_EQ(c.labels[3], kNoise);
  EXPECT_NE(c.labels[0], c.labels[2]);
  EXPECT_EQ(c.NumAssigned(), 5u);
}

TEST(ClusteringTypesTest, DropSmallClusters) {
  Clustering c = Clustering::FromLabels({0, 0, 0, 1, 1, 2});
  c.DropSmallClusters(3);
  EXPECT_EQ(c.num_clusters, 1u);
  EXPECT_EQ(c.labels[0], 0u);
  EXPECT_EQ(c.labels[3], kNoise);
  EXPECT_EQ(c.labels[5], kNoise);
  std::vector<uint32_t> sizes = c.ClusterSizes();
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 3u);
}

}  // namespace
}  // namespace anc
