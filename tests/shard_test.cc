// Sharding-subsystem tests (src/shard/, docs/sharding.md): partitioner
// quality/validation, router delivery sets, and the ShardedServer
// differential guarantees — byte-identical merged answers to a single
// unsharded AncIndex on partition-local streams, NMI/modularity within
// tolerance on cross-shard streams, and per-shard crash recovery whose
// merged answers match a fresh prefix replay.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "core/anc.h"
#include "datasets/synthetic.h"
#include "metrics/quality.h"
#include "metrics/structural.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/harness.h"
#include "serve/server.h"
#include "shard/health.h"
#include "shard/partitioner.h"
#include "shard/router.h"
#include "shard/sharded_server.h"
#include "shard/sharded_view.h"
#include "store/test_hooks.h"
#include "util/rng.h"

namespace anc {
namespace {

using shard::ComputeStats;
using shard::HashPartition;
using shard::LdgPartition;
using shard::MakePartition;
using shard::Partition;
using shard::PartitionerKind;
using shard::PartitionOptions;
using shard::PartitionStats;
using shard::Router;
using shard::ShardedOptions;
using shard::ShardedServer;
using shard::ShardedView;

constexpr std::chrono::milliseconds kAwait{10000};

std::string TempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

AncConfig TestConfig() {
  AncConfig config;
  config.similarity.lambda = 0.15;
  config.similarity.epsilon = 0.3;
  config.similarity.mu = 3;
  config.rep = 3;
  config.pyramid.num_pyramids = 3;
  config.pyramid.seed = 77;
  config.mode = AncMode::kOnline;
  return config;
}

/// A 4-community planted partition with zero inter-community edges:
/// components align with communities, so a community-aligned partition has
/// no cut edges and no cross-shard shortest paths — the byte-identity
/// regime of docs/sharding.md.
GroundTruthGraph DisjointCommunities(Rng& rng) {
  PlantedPartitionParams params;
  params.num_communities = 4;
  params.min_size = 18;
  params.max_size = 26;
  params.p_in = 0.35;
  params.mixing = 0.0;
  return PlantedPartition(params, rng);
}

void ExpectClusteringsEqual(const Clustering& a, const Clustering& b,
                            const std::string& what) {
  ASSERT_EQ(a.num_clusters, b.num_clusters) << what;
  ASSERT_EQ(a.labels, b.labels) << what;
}

/// Routes `stream` the same way ShardedServer::Submit does: owner shard
/// always, halo shard additionally for cut edges. The per-shard streams
/// are exactly what each shard's writer applies (in order), so prefix
/// replays of them reproduce per-shard recovered states.
std::vector<ActivationStream> RouteStream(const Router& router,
                                          const ActivationStream& stream) {
  std::vector<ActivationStream> routed(router.num_shards());
  for (const Activation& activation : stream) {
    const auto [owner, halo] = router.DeliveryOf(activation.edge);
    routed[owner].push_back(activation);
    if (halo != Router::kNoShard) routed[halo].push_back(activation);
  }
  return routed;
}

// --- Partitioner ----------------------------------------------------------

TEST(ShardPartitionerTest, HashCoversAndRoughlyBalances) {
  Rng rng(7);
  const Graph g = BarabasiAlbert(400, 3, rng);
  auto partition = HashPartition(g, 4, /*seed=*/1);
  ASSERT_TRUE(partition.ok());
  const PartitionStats stats = ComputeStats(g, partition.value());
  EXPECT_EQ(stats.num_shards, 4u);
  uint64_t nodes = 0;
  uint64_t owned = 0;
  for (const uint32_t c : stats.shard_nodes) nodes += c;
  for (const uint32_t c : stats.shard_owned_edges) owned += c;
  EXPECT_EQ(nodes, g.NumNodes());
  EXPECT_EQ(owned, g.NumEdges());
  EXPECT_GE(stats.balance, 1.0);
  EXPECT_LT(stats.balance, 1.5);  // splitmix on 100 nodes/shard
  EXPECT_GT(stats.cut_ratio, 0.5);  // hash has no locality
}

TEST(ShardPartitionerTest, LdgCutsFarFewerEdgesThanHashOnCommunities) {
  Rng rng(11);
  PlantedPartitionParams params;
  params.num_communities = 8;
  params.min_size = 20;
  params.max_size = 40;
  params.mixing = 0.10;
  GroundTruthGraph data = PlantedPartition(params, rng);
  const Graph& g = data.graph;

  auto hash = HashPartition(g, 4, 1);
  auto ldg = LdgPartition(g, 4, /*balance_slack=*/1.1, /*seed=*/1);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(ldg.ok());
  const PartitionStats hash_stats = ComputeStats(g, hash.value());
  const PartitionStats ldg_stats = ComputeStats(g, ldg.value());
  EXPECT_LT(ldg_stats.cut_ratio, hash_stats.cut_ratio);
  EXPECT_LT(ldg_stats.cut_ratio, 0.5);
  // LDG's capacity rule keeps shards within the slack bound.
  EXPECT_LE(ldg_stats.balance, 1.1 * 1.1);
}

TEST(ShardPartitionerTest, RestreamingPassesTightenTheCut) {
  Rng rng(11);
  PlantedPartitionParams params;
  params.num_communities = 8;
  params.min_size = 20;
  params.max_size = 40;
  params.mixing = 0.10;
  GroundTruthGraph data = PlantedPartition(params, rng);
  const Graph& g = data.graph;

  auto one_pass = LdgPartition(g, 4, 1.1, 1, /*passes=*/1);
  auto restreamed = LdgPartition(g, 4, 1.1, 1, /*passes=*/3);
  ASSERT_TRUE(one_pass.ok());
  ASSERT_TRUE(restreamed.ok());
  const PartitionStats before = ComputeStats(g, one_pass.value());
  const PartitionStats after = ComputeStats(g, restreamed.value());
  // Restreaming re-places every vertex against its full neighborhood, so
  // the cut can only meaningfully improve; balance stays inside the slack.
  EXPECT_LE(after.cut_ratio, before.cut_ratio);
  EXPECT_LE(after.balance, 1.1 * 1.1);

  auto again = LdgPartition(g, 4, 1.1, 1, /*passes=*/3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().node_shard, restreamed.value().node_shard);
  EXPECT_EQ(LdgPartition(g, 4, 1.1, 1, /*passes=*/0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardPartitionerTest, LdgIsDeterministicPerSeed) {
  Rng rng(13);
  const Graph g = BarabasiAlbert(200, 3, rng);
  auto a = LdgPartition(g, 4, 1.1, 42);
  auto b = LdgPartition(g, 4, 1.1, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().node_shard, b.value().node_shard);
}

TEST(ShardPartitionerTest, RejectsInvalidOptions) {
  Rng rng(17);
  const Graph g = BarabasiAlbert(30, 2, rng);
  EXPECT_EQ(HashPartition(g, 0, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(HashPartition(g, 31, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LdgPartition(g, 4, 0.5, 1).status().code(),
            StatusCode::kInvalidArgument);

  PartitionOptions options;
  options.num_shards = 2;
  options.explicit_assignment = {0, 1};  // wrong size
  EXPECT_EQ(MakePartition(g, options).status().code(),
            StatusCode::kInvalidArgument);
  options.explicit_assignment.assign(g.NumNodes(), 5);  // bad shard id
  EXPECT_EQ(MakePartition(g, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardPartitionerTest, KindNamesRoundTrip) {
  EXPECT_STREQ(PartitionerKindName(PartitionerKind::kHash), "hash");
  EXPECT_STREQ(PartitionerKindName(PartitionerKind::kLdg), "ldg");
  ASSERT_TRUE(shard::ParsePartitionerKind("ldg").ok());
  EXPECT_EQ(shard::ParsePartitionerKind("ldg").value(), PartitionerKind::kLdg);
  EXPECT_FALSE(shard::ParsePartitionerKind("metis").ok());
}

// --- Router ---------------------------------------------------------------

TEST(ShardRouterTest, DeliveryMatchesEndpointOwnership) {
  Rng rng(19);
  const Graph g = BarabasiAlbert(120, 3, rng);
  auto partition = HashPartition(g, 3, 2);
  ASSERT_TRUE(partition.ok());
  const PartitionStats stats = ComputeStats(g, partition.value());
  const Router router(g, partition.value());

  EXPECT_EQ(router.cut_edges(), stats.cut_edges);
  uint64_t cut = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    const auto [owner, halo] = router.DeliveryOf(e);
    EXPECT_EQ(owner, router.NodeOwner(u));
    EXPECT_EQ(owner, router.EdgeOwner(e));
    if (router.NodeOwner(u) == router.NodeOwner(v)) {
      EXPECT_EQ(halo, Router::kNoShard);
    } else {
      EXPECT_EQ(halo, router.NodeOwner(v));
      EXPECT_TRUE(router.IsCut(e));
      ++cut;
    }
  }
  EXPECT_EQ(cut, router.cut_edges());
}

// --- Differential: partition-local byte-identity --------------------------

TEST(ShardedServerTest, ByteIdenticalToSingleIndexOnPartitionLocalStreams) {
  Rng rng(23);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  // mixing = 0: every edge is intra-community, so any stream is
  // partition-local for the community-aligned partition.
  const ActivationStream stream =
      CommunityBiasedStream(g, data.truth.labels, 30, 0.05, 4.0, rng);

  // Oracle: one unsharded index applies the full stream.
  AncIndex oracle(g, config);
  ASSERT_TRUE(oracle.ApplyStream(stream).ok());

  // 4-shard server with the community-aligned partition (cut = 0).
  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.explicit_assignment = data.truth.labels;
  auto created = ShardedServer::Create(g, config, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedServer& server = *created.value();
  EXPECT_EQ(server.partition_stats().cut_edges, 0u);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  ASSERT_TRUE(server.Flush(kAwait).ok());
  EXPECT_EQ(server.accepted(), stream.size());
  EXPECT_EQ(server.halo_deliveries(), 0u);

  // Byte-identity of the merged vote tables...
  const ShardedView view = server.View();
  ASSERT_EQ(view.num_levels(), oracle.num_levels());
  EXPECT_EQ(view.DefaultLevel(), oracle.DefaultLevel());
  const AncIndex::ClusterState oracle_state = oracle.ExportClusterState();
  EXPECT_EQ(view.vote_threshold(), oracle_state.vote_threshold);
  for (uint32_t level = 1; level <= view.num_levels(); ++level) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      ASSERT_EQ(view.VotesOf(e, level),
                oracle_state.vote_counts[level - 1][e])
          << "level " << level << " edge " << e;
    }
  }
  // ... and of every query surface.
  for (uint32_t level = 1; level <= view.num_levels(); ++level) {
    ExpectClusteringsEqual(view.Clusters(level), oracle.Clusters(level),
                           "clusters at level " + std::to_string(level));
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(view.LocalCluster(v, view.DefaultLevel()),
              oracle.LocalCluster(v, oracle.DefaultLevel()))
        << "node " << v;
    uint32_t sharded_level = 0;
    uint32_t oracle_level = 0;
    EXPECT_EQ(view.SmallestCluster(v, 2, &sharded_level),
              oracle.SmallestCluster(v, 2, &oracle_level))
        << "node " << v;
    EXPECT_EQ(sharded_level, oracle_level) << "node " << v;
  }

  // The admissioned query front agrees with the raw view.
  auto merged = server.Clusters();
  ASSERT_TRUE(merged.ok());
  ExpectClusteringsEqual(merged.value(), oracle.Clusters(), "default level");
  server.Stop();
}

// --- Differential: cross-shard quality tolerance --------------------------

TEST(ShardedServerTest, CrossShardStreamsStayWithinQualityTolerance) {
  Rng rng(29);
  PlantedPartitionParams params;
  params.num_communities = 8;
  params.min_size = 16;
  params.max_size = 28;
  params.p_in = 0.35;
  params.mixing = 0.15;
  GroundTruthGraph data = PlantedPartition(params, rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream =
      CommunityBiasedStream(g, data.truth.labels, 30, 0.06, 4.0, rng);

  AncIndex oracle(g, config);
  ASSERT_TRUE(oracle.ApplyStream(stream).ok());

  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.kind = PartitionerKind::kLdg;
  auto created = ShardedServer::Create(g, config, options);
  ASSERT_TRUE(created.ok());
  ShardedServer& server = *created.value();
  EXPECT_GT(server.partition_stats().cut_edges, 0u);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  ASSERT_TRUE(server.Flush(kAwait).ok());
  EXPECT_GT(server.halo_deliveries(), 0u);

  const Clustering oracle_clusters = oracle.Clusters();
  auto merged = server.Clusters();
  ASSERT_TRUE(merged.ok());

  // Cut edges make the merged answers approximate (each shard's replica
  // misses activations beyond its halo), but the clustering must stay
  // close to the unsharded oracle both label-wise and structurally.
  const double nmi_vs_oracle = Nmi(merged.value(), oracle_clusters);
  const double oracle_q = Modularity(g, oracle_clusters);
  const double sharded_q = Modularity(g, merged.value());
  EXPECT_GE(nmi_vs_oracle, 0.55)
      << "sharded clustering diverged from the oracle";
  EXPECT_GE(sharded_q, oracle_q - 0.10)
      << "sharded modularity collapsed: " << sharded_q << " vs " << oracle_q;

  // And it must not be further from the ground truth than the oracle by
  // more than a modest margin.
  const double oracle_nmi = Nmi(oracle_clusters, data.truth);
  const double sharded_nmi = Nmi(merged.value(), data.truth);
  EXPECT_GE(sharded_nmi, oracle_nmi - 0.15);
  server.Stop();
}

// --- Serving semantics ----------------------------------------------------

TEST(ShardedServerTest, SubmitValidatesAndAwaitSeqCovers) {
  Rng rng(31);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  ShardedOptions options;
  options.partition.num_shards = 2;
  auto created = ShardedServer::Create(g, TestConfig(), options);
  ASSERT_TRUE(created.ok());
  ShardedServer& server = *created.value();

  // Not running yet.
  EXPECT_EQ(server.Submit({0, 1.0}).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());  // no restart

  // Edge validation.
  EXPECT_EQ(server.Submit({g.NumEdges(), 1.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.rejected(), 1u);

  const ActivationStream stream = UniformStream(g, 10, 0.05, rng);
  uint64_t last_seq = 0;
  ASSERT_TRUE(server.SubmitStream(stream, &last_seq).ok());
  EXPECT_EQ(last_seq, stream.size());
  ASSERT_TRUE(server.AwaitSeq(last_seq, kAwait).ok());
  // Awaiting a ticket never issued is OutOfRange, not a hang.
  EXPECT_EQ(server.AwaitSeq(last_seq + 1, kAwait).code(),
            StatusCode::kOutOfRange);

  // After AwaitSeq, the merged view covers every routed delivery.
  const ShardedView view = server.View();
  uint64_t covered = 0;
  for (uint32_t s = 0; s < server.num_shards(); ++s) {
    covered += view.shard(s).watermark().seq;
  }
  EXPECT_EQ(covered, view.TotalSeq());
  EXPECT_GE(covered, stream.size());
  EXPECT_EQ(view.Epochs().size(), server.num_shards());

  server.Stop();
  EXPECT_EQ(server.Submit({0, 99.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedServerTest, StatsExposePerShardGauges) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics disabled";
  Rng rng(37);
  PlantedPartitionParams params;
  params.num_communities = 4;
  params.min_size = 14;
  params.max_size = 20;
  params.mixing = 0.2;
  GroundTruthGraph data = PlantedPartition(params, rng);
  const Graph& g = data.graph;
  ShardedOptions options;
  options.partition.num_shards = 4;
  options.partition.kind = PartitionerKind::kHash;  // guarantees cut edges
  auto created = ShardedServer::Create(g, TestConfig(), options);
  ASSERT_TRUE(created.ok());
  ShardedServer& server = *created.value();
  ASSERT_TRUE(server.Start().ok());
  const ActivationStream stream = UniformStream(g, 8, 0.08, rng);
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  ASSERT_TRUE(server.Flush(kAwait).ok());

  const obs::StatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.counter("anc.shard.accepted"), stream.size());
  EXPECT_GT(stats.counter("anc.shard.halo_deliveries"), 0u);
  EXPECT_EQ(stats.gauge("anc.shard.num_shards"), 4);
  EXPECT_EQ(stats.gauge("anc.shard.cut_edges"),
            static_cast<int64_t>(server.router()->cut_edges()));
  EXPECT_GT(stats.gauge("anc.shard.balance_x1000"), 0);
  uint64_t per_shard_accepted = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    const std::string prefix = "anc.shard." + std::to_string(s) + ".";
    per_shard_accepted += stats.counter(prefix + "accepted");
    EXPECT_GE(stats.gauge(prefix + "epoch"), 1);
    EXPECT_EQ(stats.gauge(prefix + "queue_depth"), 0);  // flushed
  }
  EXPECT_EQ(per_shard_accepted,
            stream.size() + server.halo_deliveries() - server.halo_partial());

  // Per-shard deep stats stay reachable.
  EXPECT_GT(server.ShardStats(0).counter("anc.serve.epochs"), 0u);
  server.Stop();
}

TEST(ShardedServerTest, HarnessDrivesShardedTargetThroughRouterCallbacks) {
  Rng rng(41);
  GroundTruthGraph data = DisjointCommunities(rng);
  const Graph& g = data.graph;
  ShardedOptions options;
  options.partition.num_shards = 4;
  options.serve.ingest.clamp_out_of_order = true;  // racing producers
  auto created = ShardedServer::Create(g, TestConfig(), options);
  ASSERT_TRUE(created.ok());
  ShardedServer& server = *created.value();
  ASSERT_TRUE(server.Start().ok());

  serve::HarnessOptions harness_options;
  harness_options.num_producers = 3;
  harness_options.num_query_threads = 2;
  harness_options.full_clusters_every = 16;
  serve::ServeHarness harness(server.HarnessTarget(), harness_options);
  const ActivationStream stream = UniformStream(g, 15, 0.05, rng);
  const serve::HarnessReport report = harness.Run(stream);
  EXPECT_EQ(report.submitted, stream.size());
  EXPECT_EQ(report.accepted, stream.size());
  EXPECT_EQ(report.rejected, 0u);
  // epochs is sourced from the "anc.serve.epochs" counter, which reads 0
  // when metrics are compiled out.
  if (obs::kMetricsEnabled) EXPECT_GT(report.epochs, 0u);
  EXPECT_FALSE(report.ToString().empty());
  server.Stop();
}

// --- Crash recovery per shard ---------------------------------------------

/// Compares every shard's recovered state against a fresh replica that
/// applied exactly that shard's routed prefix, then compares the merged
/// scatter-gather answers against a merge of the fresh replicas.
void ExpectRecoveryMatchesFreshReplay(
    const Graph& g, const AncConfig& config, ShardedServer& recovered,
    const std::vector<ActivationStream>& routed) {
  const uint32_t k = recovered.num_shards();
  std::vector<std::unique_ptr<AncIndex>> fresh;
  for (uint32_t s = 0; s < k; ++s) {
    ASSERT_LT(s, recovered.recovery_info().size());
    const shard::ShardRecoveryInfo& info = recovered.recovery_info()[s];
    EXPECT_EQ(info.shard, s);
    ASSERT_LE(info.watermark.seq, routed[s].size()) << "shard " << s;
    auto replica = std::make_unique<AncIndex>(g, config);
    for (uint64_t i = 0; i < info.watermark.seq; ++i) {
      ASSERT_TRUE(replica->Apply(routed[s][i]).ok());
    }
    // Byte-identical per-shard vote state.
    const AncIndex::ClusterState got =
        recovered.shard_index(s).ExportClusterState();
    const AncIndex::ClusterState want = replica->ExportClusterState();
    ASSERT_EQ(got.num_levels, want.num_levels) << "shard " << s;
    ASSERT_EQ(got.vote_counts, want.vote_counts) << "shard " << s;
    fresh.push_back(std::move(replica));
  }

  // Merged answers from the recovered server == merge of fresh replicas.
  ASSERT_TRUE(recovered.Start().ok());
  std::vector<std::shared_ptr<const serve::ClusterView>> views;
  for (uint32_t s = 0; s < k; ++s) {
    views.push_back(std::make_shared<const serve::ClusterView>(
        recovered.graph(), fresh[s]->ExportClusterState(), 1,
        serve::Watermark{}));
  }
  const ShardedView expected(recovered.graph(), recovered.router(),
                             std::move(views));
  const ShardedView got = recovered.View();
  for (uint32_t level = 1; level <= expected.num_levels(); ++level) {
    ExpectClusteringsEqual(got.Clusters(level), expected.Clusters(level),
                           "recovered merge at level " +
                               std::to_string(level));
  }
  recovered.Stop();
}

TEST(ShardRecoveryTest, RecoverAllAfterCleanShutdownMatchesFreshReplay) {
  Rng rng(43);
  PlantedPartitionParams params;
  params.num_communities = 6;
  params.min_size = 12;
  params.max_size = 20;
  params.mixing = 0.15;
  GroundTruthGraph data = PlantedPartition(params, rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 12, 0.05, rng);
  const std::string dir = TempDir("anc_shard_clean_recovery");

  ShardedOptions options;
  options.partition.num_shards = 3;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;

  std::vector<ActivationStream> routed;
  {
    auto created = ShardedServer::Create(g, config, options);
    ASSERT_TRUE(created.ok());
    ShardedServer& server = *created.value();
    ASSERT_TRUE(server.Start().ok());
    routed = RouteStream(*server.router(), stream);
    ASSERT_TRUE(server.SubmitStream(stream).ok());
    const Status durable = server.FlushDurable(kAwait);
    ASSERT_TRUE(durable.ok())
        << durable.ToString() << " store=" << server.store_status().ToString();
    server.Stop();
  }

  auto recovered = ShardedServer::RecoverAll(dir, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Clean shutdown: every shard recovers its complete routed stream.
  for (uint32_t s = 0; s < recovered.value()->num_shards(); ++s) {
    EXPECT_EQ(recovered.value()->recovery_info()[s].watermark.seq,
              routed[s].size())
        << "shard " << s;
  }
  ExpectRecoveryMatchesFreshReplay(g, config, *recovered.value(), routed);
  std::filesystem::remove_all(dir);
}

TEST(ShardRecoveryTest, ShardsFailIndependentlyAndRecoverTheirOwnPrefix) {
  Rng rng(47);
  PlantedPartitionParams params;
  params.num_communities = 6;
  params.min_size = 12;
  params.max_size = 20;
  params.mixing = 0.15;
  GroundTruthGraph data = PlantedPartition(params, rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 12, 0.05, rng);
  const std::string dir = TempDir("anc_shard_partial_recovery");

  ShardedOptions options;
  options.partition.num_shards = 3;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;

  std::vector<ActivationStream> routed;
  {
    auto created = ShardedServer::Create(g, config, options);
    ASSERT_TRUE(created.ok());
    ShardedServer& server = *created.value();
    ASSERT_TRUE(server.Start().ok());
    routed = RouteStream(*server.router(), stream);
    ASSERT_TRUE(server.SubmitStream(stream).ok());
    ASSERT_TRUE(server.FlushDurable(kAwait).ok());
    server.Stop();
  }

  // Shard 1 loses the tail of its WAL (torn write); the others are intact.
  std::string wal_path;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/shard-1")) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && entry.file_size() > 0) {
      if (wal_path.empty() || name > std::filesystem::path(wal_path)
                                         .filename()
                                         .string()) {
        wal_path = entry.path().string();
      }
    }
  }
  ASSERT_FALSE(wal_path.empty());
  const uint64_t wal_size = std::filesystem::file_size(wal_path);
  ASSERT_GT(wal_size, 4u);
  ASSERT_TRUE(store::TestHooks::CorruptByte(wal_path, wal_size - 3).ok());

  auto recovered = ShardedServer::RecoverAll(dir, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ShardedServer& server = *recovered.value();
  // The corrupted shard rolled back to its own durable horizon; the other
  // shards kept everything — failures are independent.
  EXPECT_LT(server.recovery_info()[1].watermark.seq, routed[1].size());
  EXPECT_EQ(server.recovery_info()[0].watermark.seq, routed[0].size());
  EXPECT_EQ(server.recovery_info()[2].watermark.seq, routed[2].size());
  ExpectRecoveryMatchesFreshReplay(g, config, server, routed);
  std::filesystem::remove_all(dir);
}

TEST(ShardRecoveryTest, LiveCrashSeamFreezesOneShardAndRecoverAllSurvives) {
  Rng rng(53);
  PlantedPartitionParams params;
  params.num_communities = 4;
  params.min_size = 12;
  params.max_size = 18;
  params.mixing = 0.1;
  GroundTruthGraph data = PlantedPartition(params, rng);
  const Graph& g = data.graph;
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 14, 0.06, rng);
  const std::string dir = TempDir("anc_shard_live_crash");

  ShardedOptions options;
  options.partition.num_shards = 2;
  options.serve.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store_dir = dir;

  std::vector<ActivationStream> routed;
  {
    auto created = ShardedServer::Create(g, config, options);
    ASSERT_TRUE(created.ok());
    ShardedServer& server = *created.value();
    ASSERT_TRUE(server.Start().ok());
    routed = RouteStream(*server.router(), stream);
    // Arm a one-shot WAL crash: whichever shard appends first loses its
    // store (the error is sticky) while the other keeps committing. Group
    // commit batches aggressively, so only skip=0 is guaranteed to trip.
    store::TestHooks::ArmCrash(store::CrashPoint::kPostAppendPreFsync,
                               /*skip=*/0);
    ASSERT_TRUE(server.SubmitStream(stream).ok());
    EXPECT_FALSE(server.FlushDurable(kAwait).ok());
    EXPECT_FALSE(server.store_status().ok());
    ASSERT_TRUE(server.Flush(kAwait).ok());  // live serving unaffected
    EXPECT_EQ(server.accepted(), stream.size());
    store::TestHooks::Disarm();
    server.Stop();
  }

  auto recovered = ShardedServer::RecoverAll(dir, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ShardedServer& server = *recovered.value();
  // At most one shard lost a suffix; nobody recovered past its stream.
  uint32_t complete = 0;
  for (uint32_t s = 0; s < server.num_shards(); ++s) {
    const uint64_t seq = server.recovery_info()[s].watermark.seq;
    ASSERT_LE(seq, routed[s].size());
    if (seq == routed[s].size()) ++complete;
  }
  EXPECT_GE(complete, server.num_shards() - 1);
  ExpectRecoveryMatchesFreshReplay(g, config, server, routed);
  std::filesystem::remove_all(dir);
}

TEST(ShardRecoveryTest, RecoverAllFailsCleanlyWithoutMeta) {
  const std::string dir = TempDir("anc_shard_no_meta");
  std::filesystem::create_directories(dir);
  ShardedOptions options;
  EXPECT_EQ(ShardedServer::RecoverAll(dir, options).status().code(),
            StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

// --- Health and tracing ---------------------------------------------------

TEST(ShardHealthTest, HashReadsUnhealthyWhereLdgReadsHealthy) {
  Rng rng(23);
  PlantedPartitionParams params;
  params.num_communities = 8;
  params.min_size = 20;
  params.max_size = 40;
  params.mixing = 0.10;
  GroundTruthGraph data = PlantedPartition(params, rng);
  Rng stream_rng(29);
  ActivationStream stream = CommunityBiasedStream(
      data.graph, data.truth.labels, 60, 0.08, 4.0, stream_rng);

  for (const PartitionerKind kind :
       {PartitionerKind::kHash, PartitionerKind::kLdg}) {
    ShardedOptions options;
    options.partition.num_shards = 4;
    options.partition.kind = kind;
    options.partition.ldg_passes = 3;
    auto created = ShardedServer::Create(data.graph, TestConfig(), options);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ShardedServer& server = *created.value();
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.SubmitStream(stream).ok());
    ASSERT_TRUE(server.Flush(kAwait).ok());

    const obs::ClusterHealthSample sample = shard::CollectHealthSample(server);
    EXPECT_EQ(sample.num_shards, 4u);
    EXPECT_EQ(sample.shards.size(), 4u);
    EXPECT_EQ(sample.num_edges, data.graph.NumEdges());
    EXPECT_FALSE(sample.shards[0].durable_enabled);

    const obs::HealthReport report = shard::AssessHealth(server);
    server.Stop();
    if (kind == PartitionerKind::kHash) {
      // Hash cuts ~ (k-1)/k of a community graph's edges: the scorecard
      // must call that out even though every shard is individually fine.
      EXPECT_NE(report.cluster_state, obs::HealthState::kHealthy)
          << report.ToString();
      EXPECT_NE(report.overall, obs::HealthState::kHealthy);
      ASSERT_FALSE(report.cluster_reasons.empty());
      EXPECT_NE(report.cluster_reasons[0].find("cut_ratio"),
                std::string::npos);
    } else {
      EXPECT_EQ(report.overall, obs::HealthState::kHealthy)
          << report.ToString();
    }
  }
}

TEST(ShardTraceTest, QuerySpansCorrelatePerShard) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics disabled";
  Rng rng(31);
  GroundTruthGraph data = DisjointCommunities(rng);
  Rng stream_rng(37);
  ActivationStream stream = CommunityBiasedStream(
      data.graph, data.truth.labels, 20, 0.1, 4.0, stream_rng);

  ShardedOptions options;
  options.partition.num_shards = 2;
  options.partition.kind = PartitionerKind::kLdg;
  auto created = ShardedServer::Create(data.graph, TestConfig(), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedServer& server = *created.value();

  std::ostringstream out;
  obs::TraceSink sink(&out);
  server.SetTraceSink(&sink);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  ASSERT_TRUE(server.Flush(kAwait).ok());
  ASSERT_TRUE(server.Clusters().ok());
  ASSERT_TRUE(server.LocalCluster(0).ok());
  server.Stop();
  server.SetTraceSink(nullptr);

  struct Tagged {
    uint64_t trace = 0;
    int shard = -1;
  };
  std::map<std::string, std::vector<Tagged>> spans;
  std::set<uint64_t> queue_wait_traces;
  std::set<uint64_t> apply_traces;
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    obs::Json event;
    ASSERT_TRUE(obs::Json::Parse(line, &event)) << line;
    const obs::Json* name = event.Find("name");
    ASSERT_NE(name, nullptr) << line;
    Tagged tagged;
    if (const obs::Json* trace = event.Find("trace"); trace != nullptr) {
      tagged.trace = static_cast<uint64_t>(trace->number());
    }
    if (const obs::Json* shard = event.Find("shard"); shard != nullptr) {
      tagged.shard = static_cast<int>(shard->number());
    }
    spans[name->str()].push_back(tagged);
    if (name->str() == "ingest.queue_wait" && tagged.trace != 0) {
      queue_wait_traces.insert(tagged.trace);
      // The writer stamps its shard ordinal on every serving span.
      EXPECT_GE(tagged.shard, 0) << line;
      EXPECT_LT(tagged.shard, 2) << line;
    }
    if (name->str() == "serve.apply" && tagged.trace != 0) {
      apply_traces.insert(tagged.trace);
    }
  }

  // Routed ingest: every traced delivery's queue-wait correlates with an
  // apply on the shard that absorbed it.
  EXPECT_EQ(queue_wait_traces.size(), stream.size());
  for (const uint64_t trace : queue_wait_traces) {
    EXPECT_TRUE(apply_traces.count(trace) > 0) << trace;
  }

  // Scatter-gather: each merged query minted one trace; its gather spans
  // cover every shard and its merge span closes the request.
  for (const char* query_name : {"shard.query_clusters", "shard.query_local"}) {
    ASSERT_EQ(spans[query_name].size(), 1u) << query_name;
    const uint64_t trace = spans[query_name][0].trace;
    ASSERT_NE(trace, 0u) << query_name;
    std::set<int> gathered;
    for (const Tagged& gather : spans["shard.gather"]) {
      if (gather.trace == trace) gathered.insert(gather.shard);
    }
    EXPECT_EQ(gathered, (std::set<int>{0, 1})) << query_name;
    size_t merges = 0;
    for (const Tagged& merge : spans["shard.merge"]) {
      if (merge.trace == trace) ++merges;
    }
    EXPECT_EQ(merges, 1u) << query_name;
  }

  // The query counter and latency histograms on the sharded registry saw
  // both merged queries.
  const obs::StatsSnapshot snap = server.Stats();
  EXPECT_GE(snap.counter("anc.shard.queries"), 2u);
  const auto* query_us = snap.histogram("anc.shard.query_us");
  ASSERT_NE(query_us, nullptr);
  EXPECT_GE(query_us->count, 2u);
}

}  // namespace
}  // namespace anc
