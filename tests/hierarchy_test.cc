#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "pyramid/hierarchy.h"
#include "util/rng.h"

namespace anc {
namespace {

PyramidIndex MakeIndex(const Graph& g, Rng& rng) {
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  PyramidParams params;
  params.num_pyramids = 4;
  params.seed = 7;
  return PyramidIndex(g, std::move(w), params);
}

TEST(HierarchyTest, ShapeMatchesIndex) {
  Rng rng(1);
  Graph g = BarabasiAlbert(150, 3, rng);
  PyramidIndex idx = MakeIndex(g, rng);
  ClusterHierarchy h = BuildHierarchy(idx);
  ASSERT_EQ(h.num_levels(), idx.num_levels());
  ASSERT_EQ(h.parent.size(), h.levels.size());
  ASSERT_EQ(h.containment.size(), h.levels.size());
  for (size_t i = 0; i < h.levels.size(); ++i) {
    EXPECT_EQ(h.parent[i].size(), h.levels[i].num_clusters);
    EXPECT_EQ(h.containment[i].size(), h.levels[i].num_clusters);
  }
}

TEST(HierarchyTest, ParentsAreValidCoarserClusters) {
  Rng rng(2);
  Graph g = BarabasiAlbert(200, 3, rng);
  PyramidIndex idx = MakeIndex(g, rng);
  ClusterHierarchy h = BuildHierarchy(idx);
  for (uint32_t c = 0; c < h.levels[0].num_clusters; ++c) {
    EXPECT_EQ(h.parent[0][c], kNoise);  // roots
  }
  for (size_t i = 1; i < h.levels.size(); ++i) {
    for (uint32_t c = 0; c < h.levels[i].num_clusters; ++c) {
      const uint32_t p = h.parent[i][c];
      if (p == kNoise) continue;  // all-noise overlap is possible
      EXPECT_LT(p, h.levels[i - 1].num_clusters);
      EXPECT_GT(h.containment[i][c], 0.0);
      EXPECT_LE(h.containment[i][c], 1.0 + 1e-12);
    }
  }
}

TEST(HierarchyTest, MajorityParentIsArgmaxOverlap) {
  Rng rng(3);
  Graph g = BarabasiAlbert(150, 3, rng);
  PyramidIndex idx = MakeIndex(g, rng);
  ClusterHierarchy h = BuildHierarchy(idx);
  // Spot check one mid level: recompute overlaps by brute force.
  const size_t i = h.levels.size() / 2;
  const Clustering& fine = h.levels[i];
  const Clustering& coarse = h.levels[i - 1];
  for (uint32_t c = 0; c < fine.num_clusters; ++c) {
    std::vector<uint32_t> counts(coarse.num_clusters, 0);
    uint32_t total = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (fine.labels[v] != c || coarse.labels[v] == kNoise) continue;
      ++counts[coarse.labels[v]];
      ++total;
    }
    if (total == 0) continue;
    const uint32_t p = h.parent[i][c];
    ASSERT_NE(p, kNoise);
    for (uint32_t other = 0; other < coarse.num_clusters; ++other) {
      EXPECT_LE(counts[other], counts[p]) << "cluster " << c;
    }
  }
}

TEST(HierarchyTest, PathToRootWalksEveryLevel) {
  Rng rng(4);
  Graph g = BarabasiAlbert(120, 3, rng);
  PyramidIndex idx = MakeIndex(g, rng);
  ClusterHierarchy h = BuildHierarchy(idx);
  const uint32_t top = h.num_levels();
  const uint32_t leaf = h.levels[top - 1].labels[0];
  if (leaf == kNoise) GTEST_SKIP();
  std::vector<uint32_t> path = h.PathToRoot(top, leaf);
  EXPECT_GE(path.size(), 1u);
  EXPECT_LE(path.size(), top);
  EXPECT_EQ(path.front(), leaf);
}

TEST(HierarchyTest, EvenVariantAlsoBuilds) {
  Rng rng(5);
  Graph g = BarabasiAlbert(100, 3, rng);
  PyramidIndex idx = MakeIndex(g, rng);
  ClusterHierarchy h = BuildHierarchy(idx, /*power=*/false);
  EXPECT_EQ(h.num_levels(), idx.num_levels());
  // Even clustering assigns everyone, so level 1 of a connected graph is a
  // single root cluster.
  EXPECT_EQ(h.levels[0].num_clusters, 1u);
}

}  // namespace
}  // namespace anc
