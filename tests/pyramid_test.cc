#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "pyramid/pyramid_index.h"
#include "util/rng.h"

namespace anc {
namespace {

PyramidParams SmallParams(uint32_t k = 4, uint32_t threads = 1) {
  PyramidParams p;
  p.num_pyramids = k;
  p.theta = 0.7;
  p.seed = 42;
  p.num_threads = threads;
  return p;
}

std::vector<double> UnitWeights(const Graph& g) {
  return std::vector<double>(g.NumEdges(), 1.0);
}

TEST(PyramidIndexTest, LevelCountIsCeilLog2) {
  Rng rng(1);
  Graph g13 = ErdosRenyi(13, 30, rng);
  PyramidIndex idx(g13, UnitWeights(g13), SmallParams(2));
  EXPECT_EQ(idx.num_levels(), 4u);  // ceil(log2 13) = 4, as in Fig. 2

  Graph g16 = ErdosRenyi(16, 40, rng);
  PyramidIndex idx16(g16, UnitWeights(g16), SmallParams(2));
  EXPECT_EQ(idx16.num_levels(), 4u);

  Graph g17 = ErdosRenyi(17, 40, rng);
  PyramidIndex idx17(g17, UnitWeights(g17), SmallParams(2));
  EXPECT_EQ(idx17.num_levels(), 5u);
}

TEST(PyramidIndexTest, SeedCountsPerLevel) {
  Rng rng(2);
  Graph g = ErdosRenyi(100, 300, rng);
  PyramidIndex idx(g, UnitWeights(g), SmallParams(3));
  for (uint32_t p = 0; p < 3; ++p) {
    for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
      const size_t expect =
          std::min<size_t>(1ull << (l - 1), g.NumNodes());
      EXPECT_EQ(idx.partition(p, l).seeds().size(), expect);
    }
  }
}

TEST(PyramidIndexTest, PyramidsDifferByRandomSeeds) {
  Rng rng(3);
  Graph g = ErdosRenyi(200, 600, rng);
  PyramidIndex idx(g, UnitWeights(g), SmallParams(2));
  // At a middle level the two pyramids should have different seed sets.
  const uint32_t level = idx.num_levels() / 2 + 1;
  EXPECT_NE(idx.partition(0, level).seeds(), idx.partition(1, level).seeds());
}

TEST(PyramidIndexTest, VoteThresholdMath) {
  Rng rng(4);
  Graph g = ErdosRenyi(30, 60, rng);
  {
    PyramidIndex idx(g, UnitWeights(g), SmallParams(2));
    EXPECT_EQ(idx.vote_threshold(), 2u);  // ceil(0.7*2) = 2
  }
  {
    PyramidParams p = SmallParams(4);
    PyramidIndex idx(g, UnitWeights(g), p);
    EXPECT_EQ(idx.vote_threshold(), 3u);  // ceil(0.7*4) = 3
  }
  {
    PyramidParams p = SmallParams(10);
    p.theta = 0.5;
    PyramidIndex idx(g, UnitWeights(g), p);
    EXPECT_EQ(idx.vote_threshold(), 5u);
  }
}

TEST(PyramidIndexTest, VotesMatchPartitionsAfterBuild) {
  Rng rng(5);
  Graph g = BarabasiAlbert(150, 3, rng);
  PyramidIndex idx(g, UnitWeights(g), SmallParams(4));
  for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const auto& [u, v] = g.Endpoints(e);
      uint32_t expect = 0;
      for (uint32_t p = 0; p < 4; ++p) {
        expect += idx.partition(p, l).SameSeed(u, v) ? 1 : 0;
      }
      ASSERT_EQ(idx.VotesOf(e, l), expect) << "level " << l << " edge " << e;
    }
  }
}

TEST(PyramidIndexTest, CoarsestLevelConnectsComponents) {
  // Level 1 has one seed per pyramid: all nodes in the seed's component
  // share that seed, so every edge in the component passes the vote.
  Rng rng(6);
  Graph g = BarabasiAlbert(80, 2, rng);  // connected by construction
  PyramidIndex idx(g, UnitWeights(g), SmallParams(4));
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_TRUE(idx.EdgePassesVote(e, 1));
  }
}

class PyramidUpdateTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PyramidUpdateTest, IncrementalUpdatesMatchReconstruct) {
  // The headline index invariant: a stream of incremental UpdateEdgeWeight
  // calls leaves every partition with the same distances (and every edge
  // with the same votes, modulo equal-distance ties) as rebuilding from
  // scratch with the final weights.
  Rng rng(GetParam());
  Graph g = BarabasiAlbert(100, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();

  PyramidParams params = SmallParams(3);
  params.seed = 1000 + GetParam();
  PyramidIndex idx(g, w, params);

  for (int step = 0; step < 80; ++step) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(g.NumEdges()));
    const double factor =
        rng.Bernoulli(0.6) ? (0.3 + 0.5 * rng.NextDouble())
                           : (1.5 + 1.5 * rng.NextDouble());
    w[e] = idx.WeightOf(e) * factor;
    idx.UpdateEdgeWeight(e, w[e]);
  }
  for (uint32_t p = 0; p < params.num_pyramids; ++p) {
    for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
      EXPECT_TRUE(idx.partition(p, l).ConsistentWith(g, w))
          << "pyramid " << p << " level " << l;
    }
  }
  // Vote counts must match a fresh recount of the live partitions.
  for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const auto& [u, v] = g.Endpoints(e);
      uint32_t expect = 0;
      for (uint32_t p = 0; p < params.num_pyramids; ++p) {
        expect += idx.partition(p, l).SameSeed(u, v) ? 1 : 0;
      }
      ASSERT_EQ(idx.VotesOf(e, l), expect) << "level " << l << " edge " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PyramidUpdateTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(PyramidIndexTest, ParallelUpdateMatchesSerial) {
  Rng rng(21);
  Graph g = BarabasiAlbert(120, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();

  PyramidIndex serial(g, w, SmallParams(4, 1));
  PyramidIndex parallel(g, w, SmallParams(4, 4));

  Rng updates(22);
  for (int step = 0; step < 60; ++step) {
    const EdgeId e = static_cast<EdgeId>(updates.Uniform(g.NumEdges()));
    const double nw = serial.WeightOf(e) *
                      (updates.Bernoulli(0.5) ? 0.4 : 2.5);
    serial.UpdateEdgeWeight(e, nw);
    parallel.UpdateEdgeWeight(e, nw);
  }
  for (uint32_t l = 1; l <= serial.num_levels(); ++l) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      ASSERT_EQ(serial.VotesOf(e, l), parallel.VotesOf(e, l));
    }
  }
  for (uint32_t p = 0; p < 4; ++p) {
    for (uint32_t l = 1; l <= serial.num_levels(); ++l) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        ASSERT_DOUBLE_EQ(serial.partition(p, l).Dist(v),
                         parallel.partition(p, l).Dist(v));
      }
    }
  }
}

TEST(PyramidIndexTest, ReconstructMatchesIncrementalVotes) {
  Rng rng(31);
  Graph g = BarabasiAlbert(90, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  PyramidIndex idx(g, w, SmallParams(3));

  std::vector<double> w2 = w;
  for (int step = 0; step < 40; ++step) {
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(g.NumEdges()));
    w2[e] *= rng.Bernoulli(0.5) ? 0.5 : 2.0;
    idx.UpdateEdgeWeight(e, w2[e]);
  }
  // Reconstruct a second index directly at w2 with the same seeds (same
  // params.seed reproduces the seed draw).
  PyramidParams params = SmallParams(3);
  PyramidIndex fresh(g, w2, params);
  for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      // Distances agree (ConsistentWith above); votes can differ only on
      // exact-tie seed assignments, which are measure-zero with random
      // weights — require equality.
      ASSERT_EQ(idx.VotesOf(e, l), fresh.VotesOf(e, l))
          << "level " << l << " edge " << e;
    }
  }
}

TEST(PyramidIndexTest, ReconstructResetsToNewWeights) {
  Rng rng(41);
  Graph g = BarabasiAlbert(60, 2, rng);
  std::vector<double> w(g.NumEdges(), 1.0);
  PyramidIndex idx(g, w, SmallParams(2));
  std::vector<double> w2(g.NumEdges());
  for (double& x : w2) x = 0.5 + rng.NextDouble();
  idx.Reconstruct(w2);
  for (uint32_t p = 0; p < 2; ++p) {
    for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
      EXPECT_TRUE(idx.partition(p, l).ConsistentWith(g, w2));
    }
  }
  EXPECT_DOUBLE_EQ(idx.WeightOf(0), w2[0]);
}

TEST(PyramidIndexTest, DefaultLevelTargetsSqrtN) {
  Rng rng(51);
  Graph g = ErdosRenyi(1024, 4096, rng);
  PyramidIndex idx(g, UnitWeights(g), SmallParams(2));
  // sqrt(1024) = 32 seeds -> level 6 (2^5 = 32).
  EXPECT_EQ(idx.DefaultLevel(), 6u);
}

TEST(PyramidIndexTest, MemoryGrowsWithPyramidCount) {
  Rng rng(61);
  Graph g = BarabasiAlbert(200, 3, rng);
  PyramidIndex idx2(g, UnitWeights(g), SmallParams(2));
  PyramidIndex idx8(g, UnitWeights(g), SmallParams(8));
  EXPECT_GT(idx8.MemoryBytes(), 2 * idx2.MemoryBytes());
}

TEST(PyramidIndexTest, DeterministicGivenSeed) {
  Rng rng(71);
  Graph g = BarabasiAlbert(80, 2, rng);
  PyramidIndex a(g, UnitWeights(g), SmallParams(3));
  PyramidIndex b(g, UnitWeights(g), SmallParams(3));
  for (uint32_t p = 0; p < 3; ++p) {
    for (uint32_t l = 1; l <= a.num_levels(); ++l) {
      EXPECT_EQ(a.partition(p, l).seeds(), b.partition(p, l).seeds());
    }
  }
}

}  // namespace
}  // namespace anc
