#include <cmath>

#include <gtest/gtest.h>

#include "baselines/pll.h"
#include "datasets/synthetic.h"
#include "graph/algorithms.h"
#include "util/rng.h"

namespace anc {
namespace {

TEST(PllTest, ExactOnHandGraph) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  Graph g = b.Build();
  std::vector<double> w(g.NumEdges(), 1.0);
  w[*g.FindEdge(0, 2)] = 5.0;
  PrunedLandmarkLabeling pll(g, w);
  EXPECT_DOUBLE_EQ(pll.Query(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(pll.Query(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(pll.Query(1, 1), 0.0);
}

class PllProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PllProperty, MatchesDijkstraEverywhere) {
  Rng rng(GetParam());
  Graph g = BarabasiAlbert(120, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.2 + rng.NextDouble();
  PrunedLandmarkLabeling pll(g, w);
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const NodeId v = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
    const double exact = ShortestDistance(g, w, u, v);
    EXPECT_NEAR(pll.Query(u, v), exact, 1e-9 * std::max(1.0, exact))
        << u << " -> " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PllProperty, ::testing::Values(1, 2, 3, 4, 5));

TEST(PllTest, DisconnectedIsInfinite) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  Graph g = b.Build();
  PrunedLandmarkLabeling pll(g, std::vector<double>(g.NumEdges(), 1.0));
  EXPECT_TRUE(std::isinf(pll.Query(0, 3)));
  EXPECT_DOUBLE_EQ(pll.Query(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(pll.Query(2, 3), 1.0);
}

TEST(PllTest, LabelsAreSubquadratic) {
  // On a small-world graph the pruning must keep labels far below the n^2
  // all-pairs bound (the very reason hub labeling works).
  Rng rng(7);
  Graph g = BarabasiAlbert(500, 3, rng);
  PrunedLandmarkLabeling pll(g, std::vector<double>(g.NumEdges(), 1.0));
  EXPECT_LT(pll.TotalLabelEntries(),
            static_cast<size_t>(g.NumNodes()) * g.NumNodes() / 10);
  EXPECT_GT(pll.MemoryBytes(), 0u);
}

TEST(PllTest, WeightChangesInvalidateTheIndex) {
  // The paper's point: PLL has no incremental maintenance — after a weight
  // change the old index is simply wrong, a rebuild is required.
  Rng rng(9);
  Graph g = BarabasiAlbert(80, 3, rng);
  std::vector<double> w(g.NumEdges(), 1.0);
  PrunedLandmarkLabeling before(g, w);
  // Find an edge on some shortest path and shrink it drastically.
  const EdgeId e = 0;
  w[e] = 0.01;
  PrunedLandmarkLabeling after(g, w);
  const auto& [u, v] = g.Endpoints(e);
  EXPECT_DOUBLE_EQ(after.Query(u, v), 0.01);
  EXPECT_GT(before.Query(u, v), 0.5);  // stale answer from the old index
}

}  // namespace
}  // namespace anc
