// Hot/cold tier tests (src/tier/): the ANCSEG01 segment format round-trips
// and rejects corruption wholesale, a budgeted TieredStore keeps the
// resident delta under tier_budget_bytes while every §V-B query answers
// byte-identical to the untiered index, checkpoint heads (ANCTHD01)
// round-trip through segment references, compaction rewrites the cold side
// without changing a single answer, and each tier crash seam
// (mid-segment-write, pre-tier-manifest-swap, mid-compaction) recovers
// byte-identical to an untiered replay of the same prefix.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "core/anc.h"
#include "core/serialization.h"
#include "datasets/synthetic.h"
#include "serve/server.h"
#include "store/store.h"
#include "store/test_hooks.h"
#include "tier/column.h"
#include "tier/head.h"
#include "tier/segment.h"
#include "tier/tiered_store.h"
#include "util/rng.h"

namespace anc {
namespace {

using store::CrashPoint;
using store::CrashPointName;
using store::DurableStore;
using store::Mark;
using store::RecoveredStore;
using store::StoreOptions;
using store::TestHooks;
using tier::SegmentReader;
using tier::SegmentWriter;
using tier::TieredStore;
using tier::TierMode;
using tier::TierOptions;
using tier::TierStats;

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

AncConfig TestConfig() {
  AncConfig config;
  config.similarity.lambda = 0.15;
  config.similarity.epsilon = 0.3;
  config.similarity.mu = 3;
  config.rep = 3;
  config.pyramid.num_pyramids = 3;
  config.pyramid.seed = 77;
  config.mode = AncMode::kOnlineReinforce;
  config.reinforce_interval = 4;
  return config;
}

/// Asserts two quiesced indexes answer identically: per-edge similarity
/// state and the full clustering at every level — the §V-B byte-identity
/// contract the tier must preserve.
void ExpectIndexStatesEqual(AncIndex& actual, AncIndex& expected) {
  ASSERT_EQ(actual.num_levels(), expected.num_levels());
  const Graph& g = expected.graph();
  ASSERT_EQ(actual.graph().NumNodes(), g.NumNodes());
  ASSERT_EQ(actual.graph().NumEdges(), g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    ASSERT_DOUBLE_EQ(actual.engine().Similarity(e),
                     expected.engine().Similarity(e))
        << "edge " << e;
    ASSERT_DOUBLE_EQ(actual.engine().activeness().Anchored(e),
                     expected.engine().activeness().Anchored(e))
        << "edge " << e;
  }
  for (uint32_t level = 1; level <= expected.num_levels(); ++level) {
    const Clustering a = actual.Clusters(level);
    const Clustering b = expected.Clusters(level);
    ASSERT_EQ(a.num_clusters, b.num_clusters) << "level " << level;
    ASSERT_EQ(a.labels, b.labels) << "level " << level;
  }
}

struct DisarmGuard {
  ~DisarmGuard() { TestHooks::Disarm(); }
};

std::unique_ptr<AncIndex> FreshPrefixIndex(const Graph& g,
                                           const AncConfig& config,
                                           const ActivationStream& stream,
                                           uint64_t prefix) {
  auto index = std::make_unique<AncIndex>(g, config);
  for (uint64_t i = 0; i < prefix; ++i) {
    EXPECT_TRUE(index->Apply(stream[i]).ok());
  }
  return index;
}

// --- ANCSEG01 segment format ----------------------------------------------

std::vector<double> PagePayload(size_t elems, double seed) {
  std::vector<double> page(elems);
  for (size_t i = 0; i < elems; ++i) {
    page[i] = seed + static_cast<double>(i) * 0.25;
  }
  return page;
}

TEST(SegmentTest, RoundTripPreservesEveryPageByte) {
  const std::string dir = TempDir("anc_tier_seg_roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/seg-000000000001.tseg";

  const std::vector<double> a0 = PagePayload(64, 1.0);
  const std::vector<double> a3 = PagePayload(64, 2.0);
  const std::vector<double> b1 = PagePayload(16, 3.0);

  auto writer = SegmentWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)
                  ->AddPage(1, sizeof(double), 0, a0.data(),
                            static_cast<uint32_t>(a0.size() * sizeof(double)))
                  .ok());
  ASSERT_TRUE((*writer)
                  ->AddPage(1, sizeof(double), 3, a3.data(),
                            static_cast<uint32_t>(a3.size() * sizeof(double)))
                  .ok());
  ASSERT_TRUE((*writer)
                  ->AddPage(2, sizeof(double), 1, b1.data(),
                            static_cast<uint32_t>(b1.size() * sizeof(double)))
                  .ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  writer->reset();

  auto reader = SegmentReader::Open(path, /*verify_pages=*/true);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->pages().size(), 3u);

  const tier::SegmentPage* page = (*reader)->Find(1, 3);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->bytes, a3.size() * sizeof(double));
  EXPECT_EQ(page->elem_size, sizeof(double));
  // Payloads are 8-byte aligned in the mapping: doubles read in place.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(page->data) % alignof(double), 0u);
  EXPECT_EQ(std::memcmp(page->data, a3.data(), page->bytes), 0);

  EXPECT_NE((*reader)->Find(2, 1), nullptr);
  EXPECT_EQ((*reader)->Find(2, 0), nullptr);
  EXPECT_EQ((*reader)->Find(9, 0), nullptr);
  EXPECT_TRUE((*reader)->VerifyAll().ok());
  fs::remove_all(dir);
}

TEST(SegmentTest, CorruptionIsRejectedNeverTrusted) {
  const std::string dir = TempDir("anc_tier_seg_corrupt");
  fs::create_directories(dir);
  const std::string path = dir + "/seg-000000000001.tseg";

  const std::vector<double> payload = PagePayload(128, 5.0);
  auto writer = SegmentWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)
                  ->AddPage(1, sizeof(double), 0, payload.data(),
                            static_cast<uint32_t>(payload.size() *
                                                  sizeof(double)))
                  .ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  writer->reset();

  // Flip one payload byte (the first page starts right after the 16-byte
  // header): lazy open still succeeds — the directory is intact — but
  // page verification must catch it.
  ASSERT_TRUE(
      TestHooks::CorruptByte(path,
                             static_cast<int64_t>(tier::kSegmentHeaderBytes) +
                                 1)
          .ok());
  auto lazy = SegmentReader::Open(path, /*verify_pages=*/false);
  ASSERT_TRUE(lazy.ok());
  EXPECT_FALSE((*lazy)->VerifyAll().ok());
  EXPECT_FALSE(SegmentReader::Open(path, /*verify_pages=*/true).ok());

  // A truncated tail (torn write) rejects the whole segment.
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  ASSERT_FALSE(ec);
  fs::resize_file(path, size / 2, ec);
  ASSERT_FALSE(ec);
  EXPECT_FALSE(SegmentReader::Open(path, /*verify_pages=*/false).ok());

  // Garbage of every small size is a Status, never a crash.
  std::string noise(1024, '\x5a');
  for (size_t len : {0u, 1u, 15u, 16u, 64u, 1024u}) {
    std::vector<tier::SegmentPage> pages;
    EXPECT_FALSE(
        tier::DecodeSegment(noise.data(), len, &pages, true).ok());
  }
  fs::remove_all(dir);
}

// --- TieredStore: budgeted spill + byte-identical queries -----------------

struct TieredFixture {
  std::string dir;
  Graph graph;
  AncConfig config;
  ActivationStream stream;

  static TieredFixture Make(const std::string& name, uint32_t nodes,
                            uint64_t seed, size_t rounds) {
    Rng rng(seed);
    TieredFixture f;
    f.dir = TempDir(name);
    f.graph = BarabasiAlbert(nodes, 3, rng);
    f.config = TestConfig();
    f.stream = UniformStream(f.graph, rounds, 0.03, rng);
    return f;
  }
};

TEST(TieredStoreTest, BudgetedSpillKeepsQueriesByteIdentical) {
  TieredFixture f = TieredFixture::Make("anc_tier_budget", 200, 31, 10);

  // Phase 1: measure the full in-RAM footprint of the tiered columns.
  uint64_t full_bytes = 0;
  {
    AncIndex probe(f.graph, f.config);
    TierOptions options;
    options.tier_budget_bytes = 0;  // no demotion
    options.page_elems = 64;
    options.background_compaction = false;
    auto opened = TieredStore::Open(f.dir, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    probe.AttachTier(opened.value().get());
    full_bytes = opened.value()->Stats().resident_bytes;
    ASSERT_GT(full_bytes, 0u);
    opened.value()->DetachAll();
  }
  fs::remove_all(f.dir);

  // Phase 2: run with a budget of ~10% of that footprint.
  AncIndex untiered(f.graph, f.config);
  AncIndex tiered(f.graph, f.config);

  TierOptions options;
  options.tier_budget_bytes = full_bytes / 10;
  options.page_elems = 64;
  options.compact_min_segments = 1u << 30;  // no compaction in this test
  options.background_compaction = false;
  auto opened = TieredStore::Open(f.dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  TieredStore& tier_store = *opened.value();
  tiered.AttachTier(&tier_store);

  constexpr size_t kBatch = 32;
  for (size_t start = 0; start < f.stream.size(); start += kBatch) {
    const size_t count = std::min(kBatch, f.stream.size() - start);
    for (size_t i = start; i < start + count; ++i) {
      ASSERT_TRUE(untiered.Apply(f.stream[i]).ok());
      ASSERT_TRUE(tiered.Apply(f.stream[i]).ok());
    }
    // The writer-loop quiescent point.
    ASSERT_TRUE(tier_store.Maintain().ok());
    EXPECT_LE(tier_store.resident_bytes(), options.tier_budget_bytes)
        << "after batch at " << start;
  }

  const TierStats stats = tier_store.Stats();
  EXPECT_GT(stats.spills, 0u);
  EXPECT_GT(stats.spilled_pages, 0u);
  EXPECT_GT(stats.promotions, 0u) << "writes must promote cold pages";
  EXPECT_GT(stats.segments, 0u);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes);
  EXPECT_LT(stats.pages_resident, stats.pages_total);
  EXPECT_TRUE(tier_store.VerifySegments().ok());

  // §V-B byte-identity: every query against the budgeted index matches
  // the untiered one exactly, cold pages answering straight from mmap.
  ExpectIndexStatesEqual(tiered, untiered);

  // Zoom trajectories (Problem 1) for a few nodes, all levels.
  for (NodeId node = 0; node < 10; ++node) {
    for (uint32_t level = 1; level <= untiered.num_levels(); ++level) {
      EXPECT_EQ(tiered.LocalCluster(node, level),
                untiered.LocalCluster(node, level))
          << "node " << node << " level " << level;
    }
  }

  const Status invariants = tiered.ValidateInvariants(/*deep=*/true);
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();

  // Detaching promotes everything back; the answers must not move.
  tier_store.DetachAll();
  ExpectIndexStatesEqual(tiered, untiered);
  fs::remove_all(f.dir);
}

TEST(TieredStoreTest, CompactionRewritesColdSideWithoutChangingAnswers) {
  TieredFixture f = TieredFixture::Make("anc_tier_compact", 160, 37, 8);

  AncIndex untiered(f.graph, f.config);
  AncIndex tiered(f.graph, f.config);

  TierOptions options;
  options.tier_budget_bytes = 1;  // spill aggressively: a segment per round
  options.page_elems = 64;
  options.compact_min_segments = 1u << 30;  // compaction only via CompactNow
  options.background_compaction = false;
  auto opened = TieredStore::Open(f.dir, options);
  ASSERT_TRUE(opened.ok());
  TieredStore& tier_store = *opened.value();
  tiered.AttachTier(&tier_store);

  constexpr size_t kBatch = 16;
  for (size_t start = 0; start < f.stream.size(); start += kBatch) {
    const size_t count = std::min(kBatch, f.stream.size() - start);
    for (size_t i = start; i < start + count; ++i) {
      ASSERT_TRUE(untiered.Apply(f.stream[i]).ok());
      ASSERT_TRUE(tiered.Apply(f.stream[i]).ok());
    }
    ASSERT_TRUE(tier_store.Maintain().ok());
  }
  ASSERT_GT(tier_store.Stats().segments, 1u)
      << "test needs multiple segments to merge";

  const Status compacted = tier_store.CompactNow();
  ASSERT_TRUE(compacted.ok()) << compacted.ToString();
  const TierStats stats = tier_store.Stats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.segments_deleted, 0u);
  EXPECT_TRUE(tier_store.VerifySegments().ok());

  // Cold pages were repointed into the merged mapping: answers unchanged.
  ExpectIndexStatesEqual(tiered, untiered);

  // And the tier keeps working after the rewrite (fresh activations with
  // later timestamps — time is monotone).
  const double t_end = f.stream.back().time;
  for (size_t i = 0; i < 8; ++i) {
    const Activation next{f.stream[i].edge,
                          t_end + 0.01 * static_cast<double>(i + 1)};
    ASSERT_TRUE(untiered.Apply(next).ok());
    ASSERT_TRUE(tiered.Apply(next).ok());
  }
  ASSERT_TRUE(tier_store.Maintain().ok());
  ExpectIndexStatesEqual(tiered, untiered);

  tier_store.DetachAll();
  fs::remove_all(f.dir);
}

// --- ANCTHD01 checkpoint heads --------------------------------------------

TEST(TieredHeadTest, HeadRoundTripsThroughSegmentReferences) {
  TieredFixture f = TieredFixture::Make("anc_tier_head", 140, 41, 6);

  AncIndex live(f.graph, f.config);
  TierOptions options;
  options.tier_budget_bytes = 1;
  options.page_elems = 64;
  options.background_compaction = false;
  auto opened = TieredStore::Open(f.dir, options);
  ASSERT_TRUE(opened.ok());
  TieredStore& tier_store = *opened.value();
  live.AttachTier(&tier_store);

  for (const Activation& activation : f.stream) {
    ASSERT_TRUE(live.Apply(activation).ok());
  }
  ASSERT_TRUE(tier_store.Maintain().ok());

  const std::string head_path = f.dir + "/head.idx";
  ASSERT_TRUE(tier_store.WriteHead(live, head_path).ok());
  EXPECT_TRUE(tier::IsTieredHead(head_path));

  // A full SaveIndex snapshot of the same state is NOT a tiered head.
  const std::string full_path = f.dir + "/full.idx";
  ASSERT_TRUE(SaveIndex(live, full_path).ok());
  EXPECT_FALSE(tier::IsTieredHead(full_path));

  std::set<std::string> refs;
  auto loaded = tier::LoadTieredHead(head_path, tier_store.dir(), &refs);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(refs.empty()) << "a budgeted head should reference segments";
  ExpectIndexStatesEqual(*loaded->index, live);

  // The head must also match what the untiered loader reconstructs from
  // the full snapshot — both paths land on the same bytes.
  auto full = LoadIndex(full_path);
  ASSERT_TRUE(full.ok());
  ExpectIndexStatesEqual(*loaded->index, *full->index);

  tier_store.DetachAll();
  fs::remove_all(f.dir);
}

// --- Tiered serving + recovery --------------------------------------------

/// Drives `stream` against a tiered durable stack the way the serve writer
/// does — append, apply, Maintain each batch, checkpoint every 3 batches —
/// stopping at the first failure (the simulated crash).
struct TierDriveOutcome {
  Status failure;
  uint64_t applied = 0;
};

TierDriveOutcome DriveTiered(DurableStore* store, TieredStore* tier,
                             AncIndex* index, const ActivationStream& stream) {
  constexpr size_t kBatch = 16;
  TierDriveOutcome out;
  double last_time = 0.0;
  size_t batch_index = 0;
  for (size_t start = 0; start < stream.size();
       start += kBatch, ++batch_index) {
    const size_t count = std::min(kBatch, stream.size() - start);
    const std::vector<Activation> batch(stream.begin() + start,
                                        stream.begin() + start + count);
    Status status = store->Append(batch, start + 1);
    if (!status.ok()) {
      out.failure = status;
      break;
    }
    for (const Activation& activation : batch) {
      EXPECT_TRUE(index->Apply(activation).ok());
      last_time = std::max(last_time, activation.time);
      ++out.applied;
    }
    status = tier->Maintain();
    if (!status.ok()) {
      out.failure = status;
      break;
    }
    if (batch_index % 3 == 2) {
      status = store->WriteCheckpoint(*index, Mark{out.applied, last_time});
      if (!status.ok()) {
        out.failure = status;
        break;
      }
      tier->OnCheckpointInstalled();
    }
  }
  return out;
}

TEST(TierRecoveryTest, TieredStackRecoversByteIdenticalToUntieredReplay) {
  TieredFixture f = TieredFixture::Make("anc_tier_recover", 160, 43, 8);

  {
    AncIndex live(f.graph, f.config);
    TierOptions tier_options;
    tier_options.tier_budget_bytes = 4096;
    tier_options.page_elems = 64;
    tier_options.compact_min_segments = 4;
    tier_options.background_compaction = false;
    auto tier_opened = TieredStore::Open(f.dir, tier_options);
    ASSERT_TRUE(tier_opened.ok());
    TieredStore& tier_store = *tier_opened.value();
    live.AttachTier(&tier_store);

    StoreOptions store_options;
    store_options.checkpoint_writer = tier_store.CheckpointWriter();
    auto opened = DurableStore::Open(f.dir, live, Mark{0, 0.0},
                                     store_options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    tier_store.OnCheckpointInstalled();  // Open's base checkpoint

    const TierDriveOutcome outcome =
        DriveTiered(opened.value().get(), &tier_store, &live, f.stream);
    ASSERT_TRUE(outcome.failure.ok()) << outcome.failure.ToString();
    ASSERT_EQ(outcome.applied, f.stream.size());
    opened.value().reset();  // clean close
    tier_store.DetachAll();
  }

  Result<RecoveredStore> recovered = tier::Recover(f.dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredStore& rec = recovered.value();
  EXPECT_EQ(rec.watermark.seq, f.stream.size());

  std::unique_ptr<AncIndex> expected =
      FreshPrefixIndex(f.graph, f.config, f.stream, rec.watermark.seq);
  ExpectIndexStatesEqual(*rec.index, *expected);
  const Status invariants = rec.index->ValidateInvariants(/*deep=*/true);
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();
  fs::remove_all(f.dir);
}

TEST(TierCrashMatrixTest, EverySeamRecoversByteIdenticalUnderReplay) {
  TieredFixture f = TieredFixture::Make("anc_tier_crash_src", 160, 47, 8);

  const CrashPoint kPoints[] = {CrashPoint::kMidSegmentWrite,
                                CrashPoint::kPreTierManifestSwap};
  for (const CrashPoint point : kPoints) {
    for (const uint32_t skip : {0u, 1u, 2u}) {
      SCOPED_TRACE(std::string(CrashPointName(point)) + " skip=" +
                   std::to_string(skip));
      const std::string dir =
          TempDir(std::string("anc_tier_crash_") + CrashPointName(point) +
                  "_" + std::to_string(skip));
      {
        AncIndex live(f.graph, f.config);
        TierOptions tier_options;
        tier_options.tier_budget_bytes = 4096;
        tier_options.page_elems = 64;
        tier_options.compact_min_segments = 1u << 30;
        tier_options.background_compaction = false;
        auto tier_opened = TieredStore::Open(dir, tier_options);
        ASSERT_TRUE(tier_opened.ok());
        TieredStore& tier_store = *tier_opened.value();
        live.AttachTier(&tier_store);

        StoreOptions store_options;
        store_options.checkpoint_writer = tier_store.CheckpointWriter();
        auto opened = DurableStore::Open(dir, live, Mark{0, 0.0},
                                         store_options);
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        tier_store.OnCheckpointInstalled();

        DisarmGuard guard;
        TestHooks::ArmCrash(point, skip);
        const TierDriveOutcome outcome =
            DriveTiered(opened.value().get(), &tier_store, &live, f.stream);
        TestHooks::Disarm();
        // The seam may or may not have fired within the stream (higher
        // skips can outlast it); both outcomes must recover.
        (void)outcome;
        opened.value().reset();  // simulated death: disk state freezes
        tier_store.DetachAll();
      }

      Result<RecoveredStore> recovered = tier::Recover(dir);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      RecoveredStore& rec = recovered.value();
      ASSERT_LE(rec.watermark.seq, f.stream.size());
      EXPECT_EQ(rec.skipped_applies, 0u);

      std::unique_ptr<AncIndex> expected =
          FreshPrefixIndex(f.graph, f.config, f.stream, rec.watermark.seq);
      ExpectIndexStatesEqual(*rec.index, *expected);
      const Status invariants =
          rec.index->ValidateInvariants(/*deep=*/true);
      EXPECT_TRUE(invariants.ok()) << invariants.ToString();

      // Recovery swept the wreckage: no temp files or unreferenced
      // segments survive under tier/.
      std::set<std::string> live_refs;
      std::error_code ec;
      for (const auto& entry : fs::directory_iterator(dir + "/tier", ec)) {
        const std::string name = entry.path().filename().string();
        EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
        EXPECT_EQ(name.find(".swap"), std::string::npos) << name;
      }
      fs::remove_all(dir);
    }
  }
}

TEST(TierCrashMatrixTest, MidCompactionCrashLeavesAnswersIntact) {
  TieredFixture f = TieredFixture::Make("anc_tier_crash_compact", 160, 53, 8);

  AncIndex untiered(f.graph, f.config);
  AncIndex tiered(f.graph, f.config);

  TierOptions options;
  options.tier_budget_bytes = 1;
  options.page_elems = 64;
  options.compact_min_segments = 1u << 30;
  options.background_compaction = false;
  auto opened = TieredStore::Open(f.dir, options);
  ASSERT_TRUE(opened.ok());
  TieredStore& tier_store = *opened.value();
  tiered.AttachTier(&tier_store);

  constexpr size_t kBatch = 16;
  for (size_t start = 0; start < f.stream.size(); start += kBatch) {
    const size_t count = std::min(kBatch, f.stream.size() - start);
    for (size_t i = start; i < start + count; ++i) {
      ASSERT_TRUE(untiered.Apply(f.stream[i]).ok());
      ASSERT_TRUE(tiered.Apply(f.stream[i]).ok());
    }
    ASSERT_TRUE(tier_store.Maintain().ok());
  }
  const uint64_t segments_before = tier_store.Stats().segments;
  ASSERT_GT(segments_before, 1u);

  // The compactor dies mid-merge: inputs stay live, the half-written
  // output is a temp file, and not a single answer changes.
  DisarmGuard guard;
  TestHooks::ArmCrash(CrashPoint::kMidCompaction, 0);
  EXPECT_FALSE(tier_store.CompactNow().ok());
  TestHooks::Disarm();
  EXPECT_EQ(tier_store.Stats().segments, segments_before);
  EXPECT_TRUE(tier_store.VerifySegments().ok());
  ExpectIndexStatesEqual(tiered, untiered);

  // Retry succeeds and still changes nothing.
  ASSERT_TRUE(tier_store.CompactNow().ok());
  EXPECT_EQ(tier_store.Stats().segments, 1u);
  ExpectIndexStatesEqual(tiered, untiered);

  tier_store.DetachAll();
  fs::remove_all(f.dir);
}

TEST(TierRecoveryTest, SweepDeletesStrayFilesButKeepsReferencedSegments) {
  TieredFixture f = TieredFixture::Make("anc_tier_sweep", 140, 59, 6);

  {
    AncIndex live(f.graph, f.config);
    TierOptions tier_options;
    tier_options.tier_budget_bytes = 4096;
    tier_options.page_elems = 64;
    tier_options.background_compaction = false;
    auto tier_opened = TieredStore::Open(f.dir, tier_options);
    ASSERT_TRUE(tier_opened.ok());
    TieredStore& tier_store = *tier_opened.value();
    live.AttachTier(&tier_store);

    StoreOptions store_options;
    store_options.checkpoint_writer = tier_store.CheckpointWriter();
    auto opened = DurableStore::Open(f.dir, live, Mark{0, 0.0},
                                     store_options);
    ASSERT_TRUE(opened.ok());
    tier_store.OnCheckpointInstalled();
    const TierDriveOutcome outcome =
        DriveTiered(opened.value().get(), &tier_store, &live, f.stream);
    ASSERT_TRUE(outcome.failure.ok()) << outcome.failure.ToString();
    opened.value().reset();
    tier_store.DetachAll();
  }

  // Plant wreckage a crash could leave: an unreferenced sealed segment,
  // a truncated segment temp file and a manifest swap temp.
  const std::string tier_dir = f.dir + "/tier";
  {
    const std::string stray = tier_dir + "/" + tier::SegmentFileName(999999);
    const std::vector<double> page = PagePayload(64, 9.0);
    auto writer = SegmentWriter::Create(stray);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)
                    ->AddPage(1, sizeof(double), 0, page.data(),
                              static_cast<uint32_t>(page.size() *
                                                    sizeof(double)))
                    .ok());
    ASSERT_TRUE((*writer)->Finish().ok());
    writer->reset();
    std::ofstream(tier_dir + "/seg-000000888888.tseg.tmp") << "torn";
    std::ofstream(tier_dir + "/TIERMANIFEST.swap") << "torn";
  }

  Result<RecoveredStore> recovered = tier::Recover(f.dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  std::set<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(tier_dir, ec)) {
    names.insert(entry.path().filename().string());
  }
  EXPECT_EQ(names.count(tier::SegmentFileName(999999)), 0u)
      << "unreferenced segment should be swept";
  EXPECT_EQ(names.count("seg-000000888888.tseg.tmp"), 0u);
  EXPECT_EQ(names.count("TIERMANIFEST.swap"), 0u);

  std::unique_ptr<AncIndex> expected =
      FreshPrefixIndex(f.graph, f.config, f.stream,
                       recovered.value().watermark.seq);
  ExpectIndexStatesEqual(*recovered.value().index, *expected);
  fs::remove_all(f.dir);
}

TEST(TierServeTest, ServerDrivesTierAtQuiescentPoints) {
  TieredFixture f = TieredFixture::Make("anc_tier_serve", 160, 61, 8);

  AncIndex live(f.graph, f.config);
  TierOptions tier_options;
  tier_options.tier_budget_bytes = 8192;
  tier_options.page_elems = 64;
  tier_options.compact_min_segments = 4;
  tier_options.background_compaction = true;  // exercise the worker thread
  auto tier_opened = TieredStore::Open(f.dir, tier_options);
  ASSERT_TRUE(tier_opened.ok());
  TieredStore& tier_store = *tier_opened.value();
  live.AttachTier(&tier_store);

  StoreOptions store_options;
  store_options.checkpoint_writer = tier_store.CheckpointWriter();
  auto opened = DurableStore::Open(f.dir, live, Mark{0, 0.0}, store_options);
  ASSERT_TRUE(opened.ok());
  tier_store.OnCheckpointInstalled();

  serve::ServeOptions serve_options;
  serve_options.durability = serve::DurabilityPolicy::kGroupCommit;
  serve_options.store = opened.value().get();
  serve_options.tier = &tier_store;
  serve_options.checkpoint_every_applied = 64;
  serve::AncServer server(&live, serve_options);
  ASSERT_TRUE(server.Start().ok());

  uint64_t last_seq = 0;
  ASSERT_TRUE(server.SubmitStream(f.stream, &last_seq).ok());
  ASSERT_TRUE(server.FlushDurable(std::chrono::milliseconds(10000)).ok());
  server.Stop();
  EXPECT_TRUE(server.writer_status().ok())
      << server.writer_status().ToString();
  EXPECT_TRUE(server.store_status().ok()) << server.store_status().ToString();

  const TierStats stats = tier_store.Stats();
  EXPECT_GT(stats.spills, 0u) << "the writer loop must call Maintain";
  EXPECT_LE(tier_store.resident_bytes(), tier_options.tier_budget_bytes);

  opened.value().reset();
  tier_store.DetachAll();

  Result<RecoveredStore> recovered = tier::Recover(f.dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().watermark.seq, f.stream.size());
  std::unique_ptr<AncIndex> expected =
      FreshPrefixIndex(f.graph, f.config, f.stream, f.stream.size());
  ExpectIndexStatesEqual(*recovered.value().index, *expected);
  fs::remove_all(f.dir);
}

}  // namespace
}  // namespace anc
