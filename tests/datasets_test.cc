#include <gtest/gtest.h>

#include "datasets/synthetic.h"
#include "graph/algorithms.h"
#include "util/rng.h"

namespace anc {
namespace {

TEST(PlantedPartitionTest, ShapeAndTruthConsistency) {
  Rng rng(1);
  PlantedPartitionParams params;
  params.num_communities = 6;
  params.min_size = 10;
  params.max_size = 20;
  GroundTruthGraph data = PlantedPartition(params, rng);
  EXPECT_GE(data.graph.NumNodes(), 60u);
  EXPECT_LE(data.graph.NumNodes(), 120u);
  EXPECT_EQ(data.truth.labels.size(), data.graph.NumNodes());
  EXPECT_EQ(data.truth.num_clusters, 6u);
  // Most edges must be intra-community for these parameters.
  uint32_t intra = 0;
  for (EdgeId e = 0; e < data.graph.NumEdges(); ++e) {
    const auto& [u, v] = data.graph.Endpoints(e);
    intra += data.truth.labels[u] == data.truth.labels[v] ? 1 : 0;
  }
  EXPECT_GT(intra * 2, data.graph.NumEdges());
}

TEST(PlantedPartitionTest, DeterministicGivenRngSeed) {
  PlantedPartitionParams params;
  Rng rng1(9);
  Rng rng2(9);
  GroundTruthGraph a = PlantedPartition(params, rng1);
  GroundTruthGraph b = PlantedPartition(params, rng2);
  EXPECT_EQ(a.graph.NumNodes(), b.graph.NumNodes());
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  EXPECT_EQ(a.truth.labels, b.truth.labels);
}

TEST(BarabasiAlbertTest, ShapeAndConnectivity) {
  Rng rng(2);
  Graph g = BarabasiAlbert(500, 3, rng);
  EXPECT_EQ(g.NumNodes(), 500u);
  // m edges per new node; seed clique adds a few more.
  EXPECT_GE(g.NumEdges(), (500u - 4) * 3);
  uint32_t components = 0;
  ConnectedComponents(g, &components);
  EXPECT_EQ(components, 1u);
  // Heavy tail: the max degree should far exceed the mean.
  const double mean = 2.0 * g.NumEdges() / g.NumNodes();
  EXPECT_GT(g.MaxDegree(), 3 * mean);
}

TEST(ErdosRenyiTest, EdgeCountAndRange) {
  Rng rng(3);
  Graph g = ErdosRenyi(200, 800, rng);
  EXPECT_EQ(g.NumNodes(), 200u);
  EXPECT_EQ(g.NumEdges(), 800u);
}

TEST(WattsStrogatzTest, LatticePlusRewiring) {
  Rng rng(4);
  Graph g = WattsStrogatz(100, 4, 0.1, rng);
  EXPECT_EQ(g.NumNodes(), 100u);
  // Ring lattice yields ~n*k/2 edges (dedup may remove a few rewired ones).
  EXPECT_GE(g.NumEdges(), 180u);
  EXPECT_LE(g.NumEdges(), 200u);
}

TEST(SuiteTest, QualitySuiteHasFiveTruthfulDatasets) {
  std::vector<SyntheticDataset> suite = QualitySuite(1, 11);
  ASSERT_EQ(suite.size(), 5u);
  for (const SyntheticDataset& d : suite) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_GT(d.graph.NumNodes(), 50u);
    EXPECT_EQ(d.truth.labels.size(), d.graph.NumNodes());
    EXPECT_GT(d.truth.num_clusters, 4u);
  }
}

TEST(SuiteTest, ScalingSuiteDoublesSizes) {
  std::vector<SyntheticDataset> suite = ScalingSuite(3, 100, 2, 12);
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].graph.NumNodes(), 100u);
  EXPECT_EQ(suite[1].graph.NumNodes(), 200u);
  EXPECT_EQ(suite[2].graph.NumNodes(), 400u);
}

}  // namespace
}  // namespace anc
