// Property tests for the paper's maintainability lemmas: the PosM / NegM /
// NeuM taxonomy (Definition 2, Lemmas 2-4, 6, 10) and the structural
// invariance of the pyramid index under the global decay factor. Each test
// states the lemma it checks.

#include <cmath>

#include <gtest/gtest.h>

#include "activation/activeness.h"
#include "datasets/synthetic.h"
#include "pyramid/clustering.h"
#include "pyramid/pyramid_index.h"
#include "similarity/similarity_engine.h"
#include "util/rng.h"

namespace anc {
namespace {

SimilarityParams Params() {
  SimilarityParams p;
  p.lambda = 0.3;
  p.epsilon = 0.25;
  p.mu = 3;
  return p;
}

TEST(LemmaTest, Lemma1ActivenessMaintainedPerActivation) {
  // Maintenance cost is per-activation only: a quiet million time units
  // cost nothing and the observable activeness still matches Eq. (1).
  ActivenessStore store(4, 0.01, 0.0);
  ASSERT_TRUE(store.Activate(2, 1.0).ok());
  // Jump far ahead; the only work is the Activate call itself.
  // lambda * (t - t*) = 0.01 * 10000 exceeds the exponent guard (60).
  double delta = 0.0;
  ASSERT_TRUE(store.Activate(2, 10000.0, &delta).ok());
  EXPECT_NEAR(store.ActivenessAt(2, 10000.0),
              std::exp(-0.01 * 9999.0) + 1.0, 1e-9);
  EXPECT_GE(store.rescale_count(), 1u);  // exponent guard fired
}

TEST(LemmaTest, Lemma3SigmaIsNeuM) {
  // sigma computed from anchored values equals sigma from true values:
  // rescaling (changing the anchor) must not change any sigma.
  Rng rng(5);
  Graph g = BarabasiAlbert(50, 3, rng);
  SimilarityEngine a(g, Params());
  SimilarityEngine b(g, Params());
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    t += 0.2;
    const EdgeId e = static_cast<EdgeId>(rng.Uniform(g.NumEdges()));
    ASSERT_TRUE(a.ApplyActivation(e, t).ok());
    ASSERT_TRUE(b.ApplyActivation(e, t).ok());
  }
  // Same history, same sigma regardless of anchor placement (b was built
  // identically; ANC guarantees the anchored representation is internal).
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_NEAR(a.Sigma(e), b.Sigma(e), 1e-12);
    EXPECT_GE(a.Sigma(e), 0.0);
    EXPECT_LE(a.Sigma(e), 1.0 + 1e-12);  // sigma is a normalized share
  }
}

TEST(LemmaTest, Lemma4ReinforcedSimilarityStaysPosM) {
  // PosM means the true value is anchored * g: after a forced rescale the
  // anchored similarity changes by exactly the folded factor, so the
  // product (true value) is unchanged.
  Rng rng(7);
  Graph g = BarabasiAlbert(40, 3, rng);
  SimilarityEngine engine(g, Params());
  engine.InitializeStatic(2);
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    t += 0.2;
    ASSERT_TRUE(
        engine.ApplyActivation(static_cast<EdgeId>(rng.Uniform(g.NumEdges())), t)
            .ok());
  }
  std::vector<double> true_similarity(g.NumEdges());
  const double g_before =
      std::exp(-Params().lambda * (t - engine.activeness().anchor_time()));
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    true_similarity[e] = engine.Similarity(e) * g_before;
  }
  // Force a rescale via a long quiet gap + tiny activation at large t.
  const double far = t + 400.0;  // lambda * 400 >> exponent guard
  ASSERT_TRUE(engine.ApplyActivation(0, far).ok());
  const double g_after =
      std::exp(-Params().lambda * (far - engine.activeness().anchor_time()));
  for (EdgeId e = 1; e < g.NumEdges(); ++e) {  // edge 0 was reinforced
    const double now_true = engine.Similarity(e) * g_after;
    const double then_true =
        true_similarity[e] * std::exp(-Params().lambda * (far - t));
    // Values this small hit the clamp floor; skip those.
    if (engine.Similarity(e) <= Params().min_similarity * 1.01) continue;
    EXPECT_NEAR(now_true, then_true, 1e-9 * std::max(1e-30, then_true))
        << "edge " << e;
  }
}

TEST(LemmaTest, Lemma6And10DistanceIsNegMAndIndexInvariant) {
  // The distance weight is NegM: uniform in g^{-1} across edges. The
  // pyramid index therefore keeps identical *structure* (seeds, trees,
  // votes) under any uniform rescale.
  Rng rng(9);
  Graph g = BarabasiAlbert(80, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();

  PyramidParams params;
  params.num_pyramids = 3;
  params.seed = 2;
  PyramidIndex idx(g, w, params);

  std::vector<NodeId> seeds_before;
  std::vector<uint32_t> votes_before;
  for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      votes_before.push_back(idx.VotesOf(e, l));
    }
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    seeds_before.push_back(idx.partition(0, 3).SeedOf(v));
  }

  const double factor = 17.5;
  idx.ScaleAll(factor);

  size_t cursor = 0;
  for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      ASSERT_EQ(idx.VotesOf(e, l), votes_before[cursor++]);
    }
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(idx.partition(0, 3).SeedOf(v), seeds_before[v]);
  }
  // Distances scaled exactly by the factor.
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const double d = idx.partition(0, 3).Dist(v);
    if (std::isfinite(d) && d > 0) {
      EXPECT_NEAR(idx.WeightOf(0), w[0] * factor, 1e-9 * w[0] * factor);
      break;
    }
  }
  // And the partition is still consistent with the scaled weights.
  std::vector<double> scaled = w;
  for (double& x : scaled) x *= factor;
  for (uint32_t p = 0; p < params.num_pyramids; ++p) {
    for (uint32_t l = 1; l <= idx.num_levels(); ++l) {
      EXPECT_TRUE(idx.partition(p, l).ConsistentWith(g, scaled));
    }
  }
}

TEST(LemmaTest, Lemma5ReinforcementTouchesOnlyLocalState) {
  // The reinforcement of edge (u, v) must read/write nothing outside the
  // neighborhoods of u and v: verify that sigma numerators change only on
  // edges incident to u, v or their common-neighborhood triangles.
  Rng rng(11);
  Graph g = BarabasiAlbert(80, 3, rng);
  SimilarityEngine engine(g, Params());
  engine.InitializeStatic(1);

  std::vector<double> sigma_before(g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) sigma_before[e] = engine.Sigma(e);

  const EdgeId trigger = 0;
  const auto& [u, v] = g.Endpoints(trigger);
  ASSERT_TRUE(engine.ApplyActivation(trigger, 1.0).ok());

  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto& [x, y] = g.Endpoints(e);
    const bool incident_to_uv = (x == u || x == v || y == u || y == v);
    if (!incident_to_uv) {
      EXPECT_EQ(engine.Sigma(e), sigma_before[e]) << "edge " << e;
    }
  }
}

TEST(LemmaTest, Lemma7IndexSizeNearLinear) {
  // Space O(n log^2 n): doubling n must grow memory by < 2.5x (2x plus the
  // log factor) for fixed k.
  Rng rng(13);
  Graph small = BarabasiAlbert(2000, 3, rng);
  Graph large = BarabasiAlbert(4000, 3, rng);
  PyramidParams params;
  params.num_pyramids = 4;
  PyramidIndex idx_small(small, std::vector<double>(small.NumEdges(), 1.0),
                         params);
  PyramidIndex idx_large(large, std::vector<double>(large.NumEdges(), 1.0),
                         params);
  const double ratio = static_cast<double>(idx_large.MemoryBytes()) /
                       static_cast<double>(idx_small.MemoryBytes());
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.6);
}

TEST(LemmaTest, Lemma9LocalQueryCostIsAnswerProportional) {
  // The visited set of a local query equals the answer plus its boundary;
  // on a graph with a small isolated-ish cluster, querying inside it must
  // not touch the rest of the graph. Proxy check: a local query on a node
  // whose cluster has size s returns in time independent of adding far-away
  // graph mass — here verified structurally: members' neighborhoods bound
  // the reachable set.
  Rng rng(15);
  Graph g = BarabasiAlbert(500, 3, rng);
  std::vector<double> w(g.NumEdges());
  for (double& x : w) x = 0.5 + rng.NextDouble();
  PyramidParams params;
  params.num_pyramids = 4;
  PyramidIndex idx(g, w, params);
  const uint32_t level = idx.num_levels();  // finest: small clusters
  std::vector<NodeId> members = LocalCluster(idx, 0, level);
  // Every member is connected to the query through passing edges only.
  for (NodeId m : members) {
    EXPECT_LT(m, g.NumNodes());
  }
  // The answer at the finest level is much smaller than the graph.
  EXPECT_LT(members.size(), g.NumNodes() / 4);
}

}  // namespace
}  // namespace anc
