// Durability-subsystem tests (src/store/): WAL framing and torn-tail
// handling, checkpoint/manifest rotation, and the crash matrix — every
// labeled crash point (store::TestHooks) at multiple stream offsets, each
// followed by Recover() and a byte-identical comparison against a fresh
// index that applied exactly the recovered prefix. Backs the
// crash-consistency argument in docs/durability.md.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "check/oracle.h"
#include "core/anc.h"
#include "datasets/synthetic.h"
#include "serve/server.h"
#include "store/store.h"
#include "store/test_hooks.h"
#include "store/wal.h"
#include "util/rng.h"

namespace anc {
namespace {

using store::CrashPoint;
using store::DurableStore;
using store::Mark;
using store::RecoveredStore;
using store::StoreOptions;
using store::TestHooks;
using store::WalRecord;
using store::WalSegmentInfo;

constexpr std::chrono::milliseconds kAwait{5000};

std::string TempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

AncConfig TestConfig() {
  AncConfig config;
  config.similarity.lambda = 0.15;
  config.similarity.epsilon = 0.3;
  config.similarity.mu = 3;
  config.rep = 3;
  config.pyramid.num_pyramids = 3;
  config.pyramid.seed = 77;
  config.mode = AncMode::kOnlineReinforce;
  config.reinforce_interval = 4;
  return config;
}

/// Asserts two quiesced indexes are in byte-identical states: identical
/// similarity/activeness per edge and identical clusterings at every
/// granularity — the recovery contract.
void ExpectIndexStatesEqual(AncIndex& recovered, AncIndex& expected) {
  ASSERT_EQ(recovered.num_levels(), expected.num_levels());
  const Graph& g = expected.graph();
  ASSERT_EQ(recovered.graph().NumNodes(), g.NumNodes());
  ASSERT_EQ(recovered.graph().NumEdges(), g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    ASSERT_DOUBLE_EQ(recovered.engine().Similarity(e),
                     expected.engine().Similarity(e))
        << "edge " << e;
    ASSERT_DOUBLE_EQ(recovered.engine().activeness().Anchored(e),
                     expected.engine().activeness().Anchored(e))
        << "edge " << e;
  }
  for (uint32_t level = 1; level <= expected.num_levels(); ++level) {
    const Clustering a = recovered.Clusters(level);
    const Clustering b = expected.Clusters(level);
    ASSERT_EQ(a.num_clusters, b.num_clusters) << "level " << level;
    ASSERT_EQ(a.labels, b.labels) << "level " << level;
  }
}

/// Disarms any armed crash point when a test exits early (a failed ASSERT
/// must not leak an armed crash into the next test).
struct DisarmGuard {
  ~DisarmGuard() { TestHooks::Disarm(); }
};

/// Replays stream[0..prefix) through a fresh index — the reference state
/// recovery must reproduce exactly.
std::unique_ptr<AncIndex> FreshPrefixIndex(const Graph& g,
                                           const AncConfig& config,
                                           const ActivationStream& stream,
                                           uint64_t prefix) {
  auto index = std::make_unique<AncIndex>(g, config);
  for (uint64_t i = 0; i < prefix; ++i) {
    EXPECT_TRUE(index->Apply(stream[i]).ok());
  }
  return index;
}

// --- WAL framing ----------------------------------------------------------

TEST(WalTest, RoundTripRecordsAndMarks) {
  const std::string dir = TempDir("anc_wal_roundtrip");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/wal-1.log";

  auto appender = store::WalAppender::Create(path, 1);
  ASSERT_TRUE(appender.ok());
  store::WalAppender& wal = *appender.value();
  std::vector<Activation> batch1 = {{0, 0.5}, {1, 0.75}, {2, 1.0}};
  std::vector<Activation> batch2 = {{3, 1.5}};
  ASSERT_TRUE(wal.Append(batch1.data(), batch1.size(), 1).ok());
  EXPECT_EQ(wal.appended().seq, 3u);
  EXPECT_EQ(wal.durable().seq, 0u);  // buffered only
  ASSERT_TRUE(wal.Append(batch2.data(), batch2.size(), 4).ok());
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.durable().seq, 4u);
  EXPECT_DOUBLE_EQ(wal.durable().time, 1.5);
  ASSERT_TRUE(wal.Close().ok());

  std::vector<WalRecord> records;
  Result<WalSegmentInfo> info = store::ReadWalSegment(
      path, [&](const WalRecord& record) {
        records.push_back(record);
        return Status::OK();
      });
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info.value().torn_tail);
  EXPECT_EQ(info.value().base_seq, 1u);
  EXPECT_EQ(info.value().records, 2u);
  EXPECT_EQ(info.value().activations, 4u);
  EXPECT_EQ(info.value().last_seq, 4u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].first_seq, 1u);
  ASSERT_EQ(records[0].activations.size(), 3u);
  EXPECT_EQ(records[0].activations[1].edge, 1u);
  EXPECT_DOUBLE_EQ(records[0].activations[1].time, 0.75);
  EXPECT_EQ(records[1].first_seq, 4u);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, CorruptTailDetectedAndTruncated) {
  const std::string dir = TempDir("anc_wal_torn");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/wal-1.log";
  {
    auto appender = store::WalAppender::Create(path, 1);
    ASSERT_TRUE(appender.ok());
    std::vector<Activation> batch = {{0, 1.0}, {1, 2.0}};
    ASSERT_TRUE(appender.value()->Append(batch.data(), 2, 1).ok());
    std::vector<Activation> tail = {{2, 3.0}};
    ASSERT_TRUE(appender.value()->Append(tail.data(), 1, 3).ok());
    ASSERT_TRUE(appender.value()->Close().ok());
  }
  // Corrupt one byte inside the LAST record's payload: the scan must keep
  // the first record, flag the tail, and truncation must remove it.
  ASSERT_TRUE(TestHooks::CorruptByte(path, -3).ok());
  Result<WalSegmentInfo> scan =
      store::ReadWalSegment(path, nullptr, /*truncate_torn_tail=*/true);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().torn_tail);
  EXPECT_EQ(scan.value().records, 1u);
  EXPECT_EQ(scan.value().last_seq, 2u);

  Result<WalSegmentInfo> rescan = store::ReadWalSegment(path, nullptr);
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan.value().torn_tail);
  EXPECT_EQ(rescan.value().records, 1u);
  EXPECT_EQ(std::filesystem::file_size(path), rescan.value().valid_bytes);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, OversizedFrameLengthTreatedAsTornTail) {
  // Regression from fuzz/fuzz_wal.cc: a frame header claiming a ~4 GiB
  // payload (far above kMaxWalPayloadBytes) must be flagged as a torn
  // tail before the scanner ever attempts the allocation.
  const std::string dir = TempDir("anc_wal_oversized");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/wal-1.log";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(store::kWalMagic, sizeof(store::kWalMagic));
    const uint64_t base_seq = 1;
    out.write(reinterpret_cast<const char*>(&base_seq), sizeof(base_seq));
    const uint32_t length = 0xffffffffu;
    const uint32_t crc = 0;
    out.write(reinterpret_cast<const char*>(&length), sizeof(length));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  }
  Result<WalSegmentInfo> scan =
      store::ReadWalSegment(path, nullptr, /*truncate_torn_tail=*/true);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().torn_tail);
  EXPECT_EQ(scan.value().records, 0u);
  EXPECT_EQ(scan.value().valid_bytes, store::kWalSegmentHeaderBytes);
  EXPECT_EQ(std::filesystem::file_size(path), store::kWalSegmentHeaderBytes);

  // A length too small to hold even the record preamble is equally torn.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const uint32_t length = 4;
    const uint32_t crc = 0;
    out.write(reinterpret_cast<const char*>(&length), sizeof(length));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  }
  Result<WalSegmentInfo> rescan = store::ReadWalSegment(path, nullptr);
  ASSERT_TRUE(rescan.ok());
  EXPECT_TRUE(rescan.value().torn_tail);
  EXPECT_EQ(rescan.value().records, 0u);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, NonWalFileRejected) {
  const std::string dir = TempDir("anc_wal_reject");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/wal-1.log";
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a WAL segment";
  }
  Result<WalSegmentInfo> scan = store::ReadWalSegment(path, nullptr);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

// --- Crash matrix ---------------------------------------------------------

struct DriveOutcome {
  Status failure;       ///< OK if the whole stream went through
  Mark durable;         ///< the store's durable mark at death / completion
  uint64_t applied = 0; ///< activations applied live before death
};

/// Drives `stream` the way the serve writer does — append to the WAL,
/// then apply — in batches of 7, syncing every 2 batches and
/// checkpointing every 5. Stops at the first store failure (the simulated
/// crash) and reports the durable mark the "process" last knew about.
DriveOutcome DriveUntilCrash(DurableStore* store, AncIndex* index,
                             const ActivationStream& stream) {
  constexpr size_t kBatch = 7;
  DriveOutcome out;
  double last_time = 0.0;
  size_t batch_index = 0;
  for (size_t start = 0; start < stream.size();
       start += kBatch, ++batch_index) {
    const size_t count = std::min(kBatch, stream.size() - start);
    const std::vector<Activation> batch(stream.begin() + start,
                                        stream.begin() + start + count);
    Status status = store->Append(batch, start + 1);
    if (!status.ok()) {
      out.failure = status;
      break;
    }
    for (const Activation& activation : batch) {
      EXPECT_TRUE(index->Apply(activation).ok());
      last_time = std::max(last_time, activation.time);
      ++out.applied;
    }
    if (batch_index % 2 == 1) {
      status = store->Sync();
      if (!status.ok()) {
        out.failure = status;
        break;
      }
    }
    if (batch_index % 5 == 4) {
      status = store->WriteCheckpoint(*index, Mark{out.applied, last_time});
      if (!status.ok()) {
        out.failure = status;
        break;
      }
    }
  }
  out.durable = store->durable();
  return out;
}

TEST(StoreCrashMatrixTest, EveryCrashPointAtEveryOffsetRecoversExactly) {
  Rng rng(21);
  const Graph g = BarabasiAlbert(100, 3, rng);
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 12, 0.03, rng);
  ASSERT_GE(stream.size(), 50u) << "stream too short to exercise the matrix";

  const CrashPoint kPoints[] = {
      CrashPoint::kMidRecord, CrashPoint::kPostAppendPreFsync,
      CrashPoint::kMidCheckpoint, CrashPoint::kPreManifestSwap};
  for (const CrashPoint point : kPoints) {
    for (const uint32_t skip : {0u, 1u, 2u}) {
      SCOPED_TRACE(std::string(CrashPointName(point)) + " skip=" +
                   std::to_string(skip));
      const std::string dir =
          TempDir(std::string("anc_crash_") + CrashPointName(point) + "_" +
                  std::to_string(skip));
      AncIndex live(g, config);
      auto opened = DurableStore::Open(dir, live, Mark{0, 0.0});
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();

      DisarmGuard guard;
      TestHooks::ArmCrash(point, skip);
      const DriveOutcome outcome =
          DriveUntilCrash(opened.value().get(), &live, stream);
      TestHooks::Disarm();
      opened.value().reset();  // the simulated death: disk state freezes

      Result<RecoveredStore> recovered = store::Recover(dir);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      RecoveredStore& rec = recovered.value();

      // The durable contract: everything the store ever reported durable
      // is reproduced. (Recovery may legitimately exceed it — flushed but
      // un-fsynced bytes can survive a simulated in-process crash.)
      EXPECT_GE(rec.watermark.seq, outcome.durable.seq);
      ASSERT_LE(rec.watermark.seq, stream.size());
      EXPECT_EQ(rec.skipped_applies, 0u);

      // Byte-identical recovery: the recovered index answers exactly like
      // a fresh index that applied stream[0 .. watermark.seq).
      std::unique_ptr<AncIndex> expected =
          FreshPrefixIndex(g, config, stream, rec.watermark.seq);
      ExpectIndexStatesEqual(*rec.index, *expected);
      const Status invariants = rec.index->ValidateInvariants(/*deep=*/true);
      EXPECT_TRUE(invariants.ok()) << invariants.ToString();
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(StoreRecoveryTest, CleanShutdownRecoversEverything) {
  Rng rng(22);
  const Graph g = BarabasiAlbert(80, 3, rng);
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 10, 0.03, rng);
  const std::string dir = TempDir("anc_store_clean");

  AncIndex live(g, config);
  auto opened = DurableStore::Open(dir, live, Mark{0, 0.0});
  ASSERT_TRUE(opened.ok());
  const DriveOutcome outcome =
      DriveUntilCrash(opened.value().get(), &live, stream);
  ASSERT_TRUE(outcome.failure.ok()) << outcome.failure.ToString();
  const store::StoreStats stats = opened.value()->Stats();
  EXPECT_GT(stats.records, 0u);
  EXPECT_GT(stats.syncs, 0u);
  EXPECT_GE(stats.checkpoints, 1u);
  EXPECT_FALSE(stats.checkpoint_file.empty());
  opened.value().reset();  // clean close syncs the tail

  Result<RecoveredStore> recovered = store::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().watermark.seq, stream.size());
  ExpectIndexStatesEqual(*recovered.value().index, live);
  std::filesystem::remove_all(dir);
}

TEST(StoreRecoveryTest, SurvivesCorruptManifestViaCheckpointScan) {
  Rng rng(23);
  const Graph g = BarabasiAlbert(60, 3, rng);
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 8, 0.04, rng);
  const std::string dir = TempDir("anc_store_badmanifest");

  AncIndex live(g, config);
  auto opened = DurableStore::Open(dir, live, Mark{0, 0.0});
  ASSERT_TRUE(opened.ok());
  const DriveOutcome outcome =
      DriveUntilCrash(opened.value().get(), &live, stream);
  ASSERT_TRUE(outcome.failure.ok());
  opened.value().reset();

  // Flip a byte inside the manifest: recovery must fall back to scanning
  // ckpt-*.idx files by generation and still reconstruct the exact state.
  ASSERT_TRUE(TestHooks::CorruptByte(dir + "/MANIFEST", -1).ok());
  Result<RecoveredStore> recovered = store::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().watermark.seq, stream.size());
  ExpectIndexStatesEqual(*recovered.value().index, live);
  std::filesystem::remove_all(dir);
}

TEST(StoreRecoveryTest, CheckpointCoveredWalFramesAreSkippedNotReplayed) {
  // Replay must start strictly after the checkpoint seq: frames the
  // checkpoint already covers are counted (skipped_records), and whole
  // segments that provably end at or before it are skipped without even
  // being read (skipped_segments).
  Rng rng(29);
  const Graph g = BarabasiAlbert(60, 3, rng);
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 8, 0.04, rng);
  const std::string dir = TempDir("anc_store_skipcovered");

  AncIndex live(g, config);
  StoreOptions options;
  options.segment_bytes = 1;  // rotate after every batch: many segments
  auto opened = DurableStore::Open(dir, live, Mark{0, 0.0}, options);
  ASSERT_TRUE(opened.ok());
  DurableStore& store = *opened.value();

  constexpr size_t kBatch = 7;
  double last_time = 0.0;
  uint64_t applied = 0;
  for (size_t start = 0; start < stream.size(); start += kBatch) {
    const size_t count = std::min(kBatch, stream.size() - start);
    const std::vector<Activation> batch(stream.begin() + start,
                                        stream.begin() + start + count);
    ASSERT_TRUE(store.Append(batch, start + 1).ok());
    for (const Activation& activation : batch) {
      ASSERT_TRUE(live.Apply(activation).ok());
      last_time = std::max(last_time, activation.time);
      ++applied;
    }
  }

  // Die between publishing the new checkpoint and swapping the manifest:
  // the checkpoint covering every ticket is durable, but none of the WAL
  // segments it obsoletes were garbage collected.
  DisarmGuard guard;
  TestHooks::ArmCrash(CrashPoint::kPreManifestSwap, 0);
  EXPECT_FALSE(store.WriteCheckpoint(live, Mark{applied, last_time}).ok());
  TestHooks::Disarm();
  opened.value().reset();

  // With the manifest gone, recovery falls back to the newest loadable
  // checkpoint — the full-coverage one — while every covered WAL segment
  // still sits on disk next to it. Drop the empty segment the checkpoint
  // rotated to: the newest data segment then has no successor proving its
  // range, so recovery must read it and count its covered records.
  ASSERT_TRUE(TestHooks::CorruptByte(dir + "/MANIFEST", -1).ok());
  {
    char rotated[64];
    std::snprintf(rotated, sizeof(rotated), "wal-%020llu.log",
                  static_cast<unsigned long long>(applied + 1));
    ASSERT_TRUE(std::filesystem::remove(dir + "/" + rotated));
  }
  Result<RecoveredStore> recovered = store::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredStore& rec = recovered.value();
  EXPECT_EQ(rec.checkpoint_seq, applied);
  EXPECT_EQ(rec.watermark.seq, applied);
  EXPECT_EQ(rec.replayed_records, 0u) << "covered frames were replayed";
  EXPECT_EQ(rec.replayed_activations, 0u);
  EXPECT_GT(rec.skipped_segments, 0u)
      << "provably covered segments should be skipped unread";
  EXPECT_GT(rec.skipped_records, 0u)
      << "covered records in the boundary segment should be counted";
  ExpectIndexStatesEqual(*rec.index, live);
  std::filesystem::remove_all(dir);
}

TEST(StoreRecoveryTest, EmptyOrMissingDirectoryFailsNotFound) {
  EXPECT_EQ(store::Recover("/nonexistent/anc/store").status().code(),
            StatusCode::kNotFound);
  const std::string dir = TempDir("anc_store_empty");
  std::filesystem::create_directories(dir);
  EXPECT_EQ(store::Recover(dir).status().code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST(StoreRecoveryTest, RecoveredPrefixPassesDifferentialOracle) {
  // The crash-consistency argument rests on replay determinism: state is a
  // pure function of (snapshot, replayed activations). Cross-validate the
  // recovered prefix with the PR-2 differential oracle.
  Rng rng(24);
  const Graph g = BarabasiAlbert(60, 3, rng);
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 6, 0.05, rng);
  check::OracleResult oracle =
      check::RunDifferentialOracle(g, config, stream);
  EXPECT_TRUE(oracle.ok()) << oracle.report.ToString();
}

// --- Serve integration ----------------------------------------------------

TEST(DurableServeTest, FlushDurableCoversRecovery) {
  Rng rng(31);
  const Graph g = BarabasiAlbert(90, 3, rng);
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 10, 0.03, rng);
  const std::string dir = TempDir("anc_serve_durable");

  AncIndex index(g, config);
  StoreOptions store_options;
  store_options.group_commit_records = 16;
  auto opened = DurableStore::Open(dir, index, Mark{0, 0.0}, store_options,
                                   &index.metrics());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  serve::ServeOptions options;
  options.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store = opened.value().get();
  serve::AncServer server(&index, options);
  ASSERT_TRUE(server.Start().ok());
  uint64_t last_seq = 0;
  ASSERT_TRUE(server.SubmitStream(stream, &last_seq).ok());
  ASSERT_EQ(last_seq, stream.size());

  ASSERT_TRUE(server.FlushDurable(kAwait).ok());
  const serve::Watermark durable = server.durable_watermark();
  EXPECT_GE(durable.seq, last_seq);
  EXPECT_TRUE(server.store_status().ok());

  ASSERT_TRUE(server.RequestCheckpoint(kAwait).ok());
  server.Stop();
  opened.value().reset();

  // When FlushDurable reported OK for ticket N, recovery MUST reproduce a
  // state covering ticket N — the headline durability guarantee.
  Result<RecoveredStore> recovered = store::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GE(recovered.value().watermark.seq, durable.seq);
  std::unique_ptr<AncIndex> expected = FreshPrefixIndex(
      g, config, stream, recovered.value().watermark.seq);
  ExpectIndexStatesEqual(*recovered.value().index, *expected);
  std::filesystem::remove_all(dir);
}

TEST(DurableServeTest, WalCrashFreezesDurableWatermarkAndFlushFails) {
  Rng rng(32);
  const Graph g = BarabasiAlbert(70, 3, rng);
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 8, 0.04, rng);
  const std::string dir = TempDir("anc_serve_walcrash");

  AncIndex index(g, config);
  auto opened = DurableStore::Open(dir, index, Mark{0, 0.0});
  ASSERT_TRUE(opened.ok());

  serve::ServeOptions options;
  options.durability = serve::DurabilityPolicy::kGroupCommit;
  options.store = opened.value().get();
  // Small batches: the writer drains the stream over many WAL appends, so
  // the armed crash reliably fires mid-stream rather than never.
  options.max_batch = 4;
  serve::AncServer server(&index, options);
  ASSERT_TRUE(server.Start().ok());

  DisarmGuard guard;
  TestHooks::ArmCrash(CrashPoint::kPostAppendPreFsync, /*skip=*/2);
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  // Live serving keeps going after the WAL dies...
  ASSERT_TRUE(server.Flush(kAwait).ok());
  EXPECT_TRUE(server.writer_status().ok());
  // ...but durability is honest about it: the durable flush fails instead
  // of reporting tickets recovery could not reproduce.
  const Status durable_flush = server.FlushDurable(kAwait);
  ASSERT_FALSE(durable_flush.ok());
  EXPECT_FALSE(server.store_status().ok());
  if (obs::kMetricsEnabled) {
    EXPECT_GT(server.Stats().counter("anc.serve.wal_errors"), 0u);
  }
  const serve::Watermark durable = server.durable_watermark();
  EXPECT_LT(durable.seq, stream.size());
  TestHooks::Disarm();
  server.Stop();
  opened.value().reset();

  Result<RecoveredStore> recovered = store::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GE(recovered.value().watermark.seq, durable.seq);
  std::unique_ptr<AncIndex> expected = FreshPrefixIndex(
      g, config, stream, recovered.value().watermark.seq);
  ExpectIndexStatesEqual(*recovered.value().index, *expected);
  std::filesystem::remove_all(dir);
}

TEST(DurableServeTest, ServingContinuesAfterRecovery) {
  Rng rng(33);
  const Graph g = BarabasiAlbert(80, 3, rng);
  const AncConfig config = TestConfig();
  const ActivationStream stream = UniformStream(g, 12, 0.03, rng);
  const size_t half = stream.size() / 2;
  const ActivationStream phase1(stream.begin(), stream.begin() + half);
  const ActivationStream phase2(stream.begin() + half, stream.end());
  const std::string dir = TempDir("anc_serve_continue");

  // Phase 1: serve half the stream durably, then stop cleanly.
  {
    AncIndex index(g, config);
    auto opened = DurableStore::Open(dir, index, Mark{0, 0.0});
    ASSERT_TRUE(opened.ok());
    serve::ServeOptions options;
    options.durability = serve::DurabilityPolicy::kGroupCommit;
    options.store = opened.value().get();
    serve::AncServer server(&index, options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.SubmitStream(phase1).ok());
    ASSERT_TRUE(server.FlushDurable(kAwait).ok());
    server.Stop();
  }

  // Crash-recover, then serve the second half on the recovered index.
  Result<RecoveredStore> mid = store::Recover(dir);
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  ASSERT_EQ(mid.value().watermark.seq, half);
  {
    AncIndex& index = *mid.value().index;
    // A new serving session restarts ticket numbering at 1, so the store
    // reopens with start = {0, recovered time}: the Open-time checkpoint
    // collapses the replayed WAL into the new generation's base.
    auto opened = DurableStore::Open(dir, index,
                                     Mark{0, mid.value().watermark.time});
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    serve::ServeOptions options;
    options.durability = serve::DurabilityPolicy::kGroupCommit;
    options.store = opened.value().get();
    serve::AncServer server(&index, options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.SubmitStream(phase2).ok());
    const Status durable_flush = server.FlushDurable(kAwait);
    ASSERT_TRUE(durable_flush.ok())
        << durable_flush.ToString()
        << " store=" << server.store_status().ToString()
        << " writer=" << server.writer_status().ToString();
    server.Stop();
  }

  Result<RecoveredStore> final_state = store::Recover(dir);
  ASSERT_TRUE(final_state.ok()) << final_state.status().ToString();
  EXPECT_EQ(final_state.value().watermark.seq, phase2.size());
  std::unique_ptr<AncIndex> expected =
      FreshPrefixIndex(g, config, stream, stream.size());
  ExpectIndexStatesEqual(*final_state.value().index, *expected);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace anc
