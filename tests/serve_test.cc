// Serving-layer tests (src/serve/): ingest-queue backpressure and ticket
// semantics, watermark linearizability, snapshot/live equivalence (views
// must be byte-identical to a quiesced single-threaded AncIndex at the
// same watermark), admission decisions, query edge cases under views, and
// a reader-vs-writer stress that doubles as a TSan target (scripts/check.sh
// tsan).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "activation/stream_generators.h"
#include "activation/stream_io.h"
#include "core/anc.h"
#include "datasets/synthetic.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/cluster_view.h"
#include "serve/harness.h"
#include "serve/ingest_queue.h"
#include "serve/server.h"
#include "util/rng.h"

namespace anc {
namespace {

using serve::AdmissionController;
using serve::AdmissionDecision;
using serve::AdmissionOptions;
using serve::AncServer;
using serve::BackpressurePolicy;
using serve::ClusterView;
using serve::IngestOptions;
using serve::IngestQueue;
using serve::QueryOptions;
using serve::ServeOptions;
using serve::Watermark;

constexpr std::chrono::milliseconds kAwait{5000};

AncConfig SmallConfig() {
  AncConfig config;
  config.pyramid.num_pyramids = 3;
  config.pyramid.seed = 7;
  config.mode = AncMode::kOnline;
  return config;
}

GroundTruthGraph SmallCommunityGraph(uint64_t seed = 11) {
  PlantedPartitionParams pp;
  pp.num_communities = 4;
  pp.min_size = 10;
  pp.max_size = 14;
  Rng rng(seed);
  return PlantedPartition(pp, rng);
}

/// Asserts every query on `view` answers byte-identically to the (quiesced)
/// live index — the central serving guarantee.
void ExpectViewMatchesIndex(const ClusterView& view, const AncIndex& index) {
  ASSERT_EQ(view.num_levels(), index.num_levels());
  ASSERT_EQ(view.DefaultLevel(), index.DefaultLevel());
  const Graph& g = view.graph();
  for (uint32_t level = 1; level <= index.num_levels(); ++level) {
    const Clustering from_view = view.Clusters(level);
    const Clustering from_index = index.Clusters(level);
    ASSERT_EQ(from_view.num_clusters, from_index.num_clusters) << "level "
                                                               << level;
    ASSERT_EQ(from_view.labels, from_index.labels) << "level " << level;
    const Clustering even_view = view.Clusters(level, /*power=*/false);
    const Clustering even_index = index.Clusters(level, /*power=*/false);
    ASSERT_EQ(even_view.labels, even_index.labels) << "level " << level;
  }
  for (NodeId v = 0; v < g.NumNodes(); v += 3) {
    for (uint32_t level = 1; level <= index.num_levels(); ++level) {
      ASSERT_EQ(view.LocalCluster(v, level), index.LocalCluster(v, level))
          << "node " << v << " level " << level;
    }
    uint32_t view_level = 0;
    uint32_t index_level = 0;
    ASSERT_EQ(view.SmallestCluster(v, 2, &view_level),
              index.SmallestCluster(v, 2, &index_level))
        << "node " << v;
    ASSERT_EQ(view_level, index_level) << "node " << v;
  }
}

// --- IngestQueue ----------------------------------------------------------

TEST(IngestQueueTest, TicketsAreMonotonicFromOne) {
  IngestQueue q(IngestOptions{});
  Result<uint64_t> t1 = q.Push({0, 1.0});
  Result<uint64_t> t2 = q.Push({0, 2.0});
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t1, 1u);
  EXPECT_EQ(*t2, 2u);
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.Depth(), 2u);

  std::vector<Activation> batch;
  uint64_t resolved = 0;
  EXPECT_EQ(q.PopBatch(&batch, 10, std::chrono::microseconds(0), &resolved),
            2u);
  EXPECT_EQ(resolved, 2u);
  EXPECT_DOUBLE_EQ(batch[0].time, 1.0);
  EXPECT_DOUBLE_EQ(batch[1].time, 2.0);
}

TEST(IngestQueueTest, ClosedQueueFailsPrecondition) {
  IngestQueue q(IngestOptions{});
  q.Close();
  Result<uint64_t> r = q.Push({0, 1.0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IngestQueueTest, OutOfOrderTimestampRejectedOrClamped) {
  IngestQueue strict(IngestOptions{});
  ASSERT_TRUE(strict.Push({0, 5.0}).ok());
  Result<uint64_t> bad = strict.Push({0, 4.0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(strict.rejected(), 1u);

  IngestOptions clamping;
  clamping.clamp_out_of_order = true;
  IngestQueue lenient(clamping);
  ASSERT_TRUE(lenient.Push({0, 5.0}).ok());
  ASSERT_TRUE(lenient.Push({0, 4.0}).ok());
  std::vector<Activation> batch;
  lenient.PopBatch(&batch, 10, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[1].time, 5.0);  // clamped up, stream stays monotone
}

TEST(IngestQueueTest, RejectPolicyBouncesWhenFull) {
  IngestOptions options;
  options.capacity = 2;
  options.policy = BackpressurePolicy::kReject;
  IngestQueue q(options);
  ASSERT_TRUE(q.Push({0, 1.0}).ok());
  ASSERT_TRUE(q.Push({0, 2.0}).ok());
  Result<uint64_t> r = q.Push({0, 3.0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.Depth(), 2u);
}

TEST(IngestQueueTest, DropOldestEvictsHeadAndResolvesItsTicket) {
  IngestOptions options;
  options.capacity = 2;
  options.policy = BackpressurePolicy::kDropOldest;
  IngestQueue q(options);
  ASSERT_TRUE(q.Push({0, 1.0}).ok());
  ASSERT_TRUE(q.Push({0, 2.0}).ok());
  ASSERT_TRUE(q.Push({0, 3.0}).ok());  // evicts ticket 1
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.Depth(), 2u);

  std::vector<Activation> batch;
  uint64_t resolved = 0;
  EXPECT_EQ(q.PopBatch(&batch, 10, std::chrono::microseconds(0), &resolved),
            2u);
  // All three tickets are resolved: 1 by eviction, 2 and 3 by the pop.
  EXPECT_EQ(resolved, 3u);
  EXPECT_DOUBLE_EQ(batch[0].time, 2.0);
  EXPECT_DOUBLE_EQ(batch[1].time, 3.0);
}

TEST(IngestQueueTest, BlockedProducerWakesOnDrain) {
  IngestOptions options;
  options.capacity = 1;
  options.policy = BackpressurePolicy::kBlock;
  IngestQueue q(options);
  ASSERT_TRUE(q.Push({0, 1.0}).ok());

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    Result<uint64_t> r = q.Push({0, 2.0});
    ASSERT_TRUE(r.ok());
    pushed.store(true, std::memory_order_release);
  });
  // Drain one slot; the blocked producer must complete.
  std::vector<Activation> batch;
  while (q.PopBatch(&batch, 1, std::chrono::microseconds(1000)) == 0) {
  }
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.accepted(), 2u);
}

// --- Snapshot equivalence -------------------------------------------------

TEST(ServeEquivalenceTest, ViewMatchesQuiescedIndexAfterFlush) {
  GroundTruthGraph data = SmallCommunityGraph();
  Rng rng(3);
  ActivationStream stream = CommunityBiasedStream(data.graph, data.truth.labels, 20, 0.1, 4.0, rng);

  // Served path: stream goes through the queue + writer thread.
  AncIndex served(data.graph, SmallConfig());
  ServeOptions options;
  options.snapshot_every_activations = 16;
  AncServer server(&served, options);
  ASSERT_TRUE(server.Start().ok());
  uint64_t last_seq = 0;
  ASSERT_TRUE(server.SubmitStream(stream, &last_seq).ok());
  EXPECT_EQ(last_seq, stream.size());
  ASSERT_TRUE(server.Flush(kAwait).ok());
  EXPECT_TRUE(server.writer_status().ok());

  std::shared_ptr<const ClusterView> view = server.View();
  ASSERT_NE(view, nullptr);
  EXPECT_GE(view->watermark().seq, last_seq);

  // Reference path: identical config, identical stream, single thread.
  AncIndex reference(data.graph, SmallConfig());
  ASSERT_TRUE(reference.ApplyStream(stream).ok());

  ExpectViewMatchesIndex(*view, reference);
  // The served index itself (now quiesced by Flush) must agree too.
  server.Stop();
  ExpectViewMatchesIndex(*view, served);
}

TEST(ServeEquivalenceTest, ZoomCursorOnViewMatchesIndexCursor) {
  GroundTruthGraph data = SmallCommunityGraph(23);
  Rng rng(5);
  ActivationStream stream = CommunityBiasedStream(data.graph, data.truth.labels, 10, 0.1, 4.0, rng);

  AncIndex index(data.graph, SmallConfig());
  AncServer server(&index, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  ASSERT_TRUE(server.Flush(kAwait).ok());
  server.Stop();

  std::shared_ptr<const ClusterView> view = server.View();
  auto view_cursor = view->Zoom();
  auto index_cursor = index.Zoom();
  ASSERT_EQ(view_cursor.level(), index_cursor.level());
  const NodeId probe = 0;
  // Walk to the coarsest level, then back down to the finest, comparing at
  // every step.
  while (true) {
    ASSERT_EQ(view_cursor.Clusters().labels, index_cursor.Clusters().labels)
        << "level " << view_cursor.level();
    ASSERT_EQ(view_cursor.Local(probe), index_cursor.Local(probe))
        << "level " << view_cursor.level();
    const bool moved = view_cursor.ZoomOut();
    ASSERT_EQ(moved, index_cursor.ZoomOut());
    if (!moved) break;
  }
  EXPECT_EQ(view_cursor.level(), 1u);
  while (view_cursor.ZoomIn()) {
    ASSERT_TRUE(index_cursor.ZoomIn());
    ASSERT_EQ(view_cursor.Local(probe), index_cursor.Local(probe))
        << "level " << view_cursor.level();
  }
  EXPECT_FALSE(index_cursor.ZoomIn());
  EXPECT_EQ(view_cursor.level(), view->num_levels());
}

// --- Watermark / durability ----------------------------------------------

TEST(ServeWatermarkTest, AwaitSeqIsLinearizable) {
  GroundTruthGraph data = SmallCommunityGraph(31);
  Rng rng(9);
  ActivationStream stream = CommunityBiasedStream(data.graph, data.truth.labels, 15, 0.1, 4.0, rng);

  AncIndex index(data.graph, SmallConfig());
  ServeOptions options;
  options.snapshot_every_activations = 8;
  AncServer server(&index, options);
  ASSERT_TRUE(server.Start().ok());

  // Await a mid-stream ticket: the view returned afterwards must cover it.
  const size_t half = stream.size() / 2;
  uint64_t mid_seq = 0;
  for (size_t i = 0; i < half; ++i) {
    Result<uint64_t> ticket = server.Submit(stream[i]);
    ASSERT_TRUE(ticket.ok());
    mid_seq = *ticket;
  }
  ASSERT_TRUE(server.AwaitSeq(mid_seq, kAwait).ok());
  std::shared_ptr<const ClusterView> mid_view = server.View();
  ASSERT_GE(mid_view->watermark().seq, mid_seq);

  // The mid-stream view equals a reference index fed exactly the prefix the
  // watermark covers (query-after-watermark observes all activations <= W).
  AncIndex reference(data.graph, SmallConfig());
  for (uint64_t i = 0; i < mid_view->watermark().seq; ++i) {
    ASSERT_TRUE(reference.Apply(stream[i]).ok());
  }
  ExpectViewMatchesIndex(*mid_view, reference);

  for (size_t i = half; i < stream.size(); ++i) {
    ASSERT_TRUE(server.Submit(stream[i]).ok());
  }
  ASSERT_TRUE(server.Flush(kAwait).ok());
  EXPECT_GE(server.watermark().seq, stream.size());
  server.Stop();
}

TEST(ServeWatermarkTest, AwaitTimeCoversTimestamp) {
  GroundTruthGraph data = SmallCommunityGraph(41);
  Rng rng(13);
  ActivationStream stream = CommunityBiasedStream(data.graph, data.truth.labels, 10, 0.1, 4.0, rng);
  ASSERT_FALSE(stream.empty());
  const double last_time = stream.back().time;

  AncIndex index(data.graph, SmallConfig());
  AncServer server(&index, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  ASSERT_TRUE(server.AwaitTime(last_time, kAwait).ok());
  EXPECT_GE(server.watermark().time, last_time);
  EXPECT_GE(server.View()->watermark().time, last_time);
  server.Stop();
}

TEST(ServeWatermarkTest, AwaitUnreachableTicketTimesOut) {
  GroundTruthGraph data = SmallCommunityGraph(43);
  AncIndex index(data.graph, SmallConfig());
  AncServer server(&index, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  Status s = server.AwaitSeq(1000, std::chrono::milliseconds(50));
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  server.Stop();
}

TEST(ServeWatermarkTest, DropOldestStillResolvesEveryTicket) {
  GroundTruthGraph data = SmallCommunityGraph(47);
  Rng rng(17);
  ActivationStream stream = CommunityBiasedStream(data.graph, data.truth.labels, 25, 0.05, 4.0, rng);

  AncIndex index(data.graph, SmallConfig());
  ServeOptions options;
  options.ingest.capacity = 4;
  options.ingest.policy = BackpressurePolicy::kDropOldest;
  AncServer server(&index, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  // Every ticket resolves (applied or evicted): Flush cannot strand.
  ASSERT_TRUE(server.Flush(kAwait).ok());
  EXPECT_GE(server.watermark().seq, stream.size());
  EXPECT_EQ(server.accepted(), stream.size());
  server.Stop();
  EXPECT_TRUE(index.ValidateInvariants(/*deep=*/true).ok());
}

TEST(ServeWatermarkTest, RejectPolicySurfacesUnavailable) {
  GroundTruthGraph data = SmallCommunityGraph(53);
  AncIndex index(data.graph, SmallConfig());
  ServeOptions options;
  options.ingest.capacity = 2;
  options.ingest.policy = BackpressurePolicy::kReject;
  // The server is deliberately not started: with no writer draining, the
  // queue fills deterministically and Submit must surface the bounce as
  // Unavailable (with a running writer the outcome depends on a drain
  // race; the queue-level test covers the policy mechanics).
  AncServer server(&index, options);
  size_t bounced = 0;
  for (int i = 0; i < 5; ++i) {
    Result<uint64_t> r = server.Submit({0, static_cast<double>(i)});
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      ++bounced;
    }
  }
  EXPECT_EQ(bounced, 3u);  // capacity 2, 5 submits, nothing drained
  EXPECT_EQ(server.rejected(), bounced);
  EXPECT_EQ(server.accepted(), 2u);
}

TEST(ServeLifecycleTest, SubmitValidatesEdgeRange) {
  GroundTruthGraph data = SmallCommunityGraph(59);
  AncIndex index(data.graph, SmallConfig());
  AncServer server(&index, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  Result<uint64_t> r = server.Submit({data.graph.NumEdges(), 1.0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  server.Stop();
}

TEST(ServeLifecycleTest, StopIsIdempotentAndRestartRefused) {
  GroundTruthGraph data = SmallCommunityGraph(61);
  AncIndex index(data.graph, SmallConfig());
  AncServer server(&index, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());  // already running
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.Start().ok());  // one serving lifetime per instance
  Result<uint64_t> r = server.Submit({0, 1.0});
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServeLifecycleTest, RunFileSurfacesSkippedLinesInStats) {
  GroundTruthGraph data = SmallCommunityGraph(63);
  AncIndex index(data.graph, SmallConfig());
  Rng rng(63);
  ActivationStream stream = UniformStream(data.graph, 4, 0.05, rng);
  ASSERT_GE(stream.size(), 3u);

  // A stream file with malformed lines sprinkled in: the harness loads it
  // in skip-and-count mode, and the skips must land in the serve stats.
  const std::string path =
      (std::filesystem::temp_directory_path() / "anc_serve_runfile.stream")
          .string();
  ASSERT_TRUE(SaveActivationStream(data.graph, stream, path).ok());
  {
    std::ofstream append(path, std::ios::app);
    append << "not a line at all\n";
    append << "0 1\n";  // missing timestamp
  }

  serve::AncServer server(&index, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  serve::HarnessOptions harness_options;
  harness_options.num_producers = 1;  // keep timestamps ordered at the queue
  serve::ServeHarness harness(&server, harness_options);
  Result<serve::HarnessReport> report = harness.RunFile(data.graph, path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  server.Stop();

  EXPECT_EQ(report.value().accepted, stream.size());
  EXPECT_EQ(report.value().load_skipped, 2u);
  EXPECT_FALSE(report.value().load_first_error.empty());
  // The skips survive into the report string and the metrics snapshot.
  EXPECT_NE(report.value().ToString().find("2 lines skipped"),
            std::string::npos);
  if (obs::kMetricsEnabled) {
    obs::StatsSnapshot snap = server.Stats();
    EXPECT_EQ(snap.counter("anc.serve.load_skipped"), 2u);
    EXPECT_EQ(snap.counter("anc.serve.load_lines"), stream.size() + 2u);
  }
  std::remove(path.c_str());
}

// --- Admission ------------------------------------------------------------

class AdmissionFixture : public ::testing::Test {
 protected:
  AdmissionFixture()
      : data_(SmallCommunityGraph(67)), index_(data_.graph, SmallConfig()) {}

  ClusterView MakeView() {
    return ClusterView(data_.graph, index_.ExportClusterState(), 1,
                       Watermark{});
  }

  GroundTruthGraph data_;
  AncIndex index_;
};

TEST_F(AdmissionFixture, DefaultsAlwaysServeAtRequestedLevel) {
  AdmissionController admission{AdmissionOptions{}};
  ClusterView view = MakeView();
  AdmissionDecision d = admission.Admit(3, view, /*ingest_depth=*/1 << 20);
  EXPECT_EQ(d.action, AdmissionDecision::Action::kServe);
  EXPECT_EQ(d.level, 3u);
  EXPECT_TRUE(d.status.ok());
}

TEST_F(AdmissionFixture, ShedsOnIngestBacklog) {
  AdmissionOptions options;
  options.shed_queue_depth = 10;
  AdmissionController admission{options};
  ClusterView view = MakeView();
  EXPECT_EQ(admission.Admit(2, view, 9).action,
            AdmissionDecision::Action::kServe);
  AdmissionDecision d = admission.Admit(2, view, 10);
  EXPECT_EQ(d.action, AdmissionDecision::Action::kShed);
  EXPECT_EQ(d.status.code(), StatusCode::kUnavailable);
}

TEST_F(AdmissionFixture, DegradesToCoarserLevelOnStaleness) {
  AdmissionOptions options;
  options.degrade_staleness_s = 0.0;  // any age counts as stale
  options.degrade_levels = 2;
  AdmissionController admission{options};
  ClusterView view = MakeView();
  AdmissionDecision d = admission.Admit(4, view, 0);
  EXPECT_EQ(d.action, AdmissionDecision::Action::kDegrade);
  EXPECT_EQ(d.level, 2u);
  // Degradation clamps at the coarsest level (1), never below.
  EXPECT_EQ(admission.Admit(1, view, 0).level, 1u);
}

TEST_F(AdmissionFixture, ShedsOnExtremeStaleness) {
  AdmissionOptions options;
  options.shed_staleness_s = 0.0;
  AdmissionController admission{options};
  ClusterView view = MakeView();
  AdmissionDecision d = admission.Admit(2, view, 0);
  EXPECT_EQ(d.action, AdmissionDecision::Action::kShed);
  EXPECT_EQ(d.status.code(), StatusCode::kUnavailable);
}

TEST_F(AdmissionFixture, ShedsWhenLatencyEstimateExceedsDeadline) {
  AdmissionController admission{AdmissionOptions{}};
  ClusterView view = MakeView();
  admission.RecordLatency(1.0);  // smoothed estimate rises above 0
  QueryOptions query;
  query.deadline_s = 1e-9;
  AdmissionDecision d = admission.Admit(2, view, 0, query);
  EXPECT_EQ(d.action, AdmissionDecision::Action::kShed);
  // Without a deadline the same query is served.
  EXPECT_EQ(admission.Admit(2, view, 0).action,
            AdmissionDecision::Action::kServe);
}

TEST_F(AdmissionFixture, ServerShedsQueriesWhenConfigured) {
  AncIndex index(data_.graph, SmallConfig());
  ServeOptions options;
  options.admission.shed_staleness_s = 0.0;
  AncServer server(&index, options);
  ASSERT_TRUE(server.Start().ok());
  Result<Clustering> r = server.Clusters(index.DefaultLevel());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  server.Stop();
}

// --- Query edge cases under views ----------------------------------------

TEST(ServeEdgeCaseTest, IsolatedQueryNodeUnderView) {
  // A node reserved by SetNumNodes with no incident edges: every query
  // about it must answer exactly like the live index (trivial cluster).
  GraphBuilder b;
  Rng rng(71);
  Graph base = ErdosRenyi(30, 80, rng);
  for (EdgeId e = 0; e < base.NumEdges(); ++e) {
    const auto [u, v] = base.Endpoints(e);
    ASSERT_TRUE(b.AddEdge(u, v).ok());
  }
  const NodeId isolated = base.NumNodes();
  b.SetNumNodes(base.NumNodes() + 1);
  Graph g = b.Build();

  AncIndex index(g, SmallConfig());
  AncServer server(&index, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  ActivationStream stream = UniformStream(g, 5, 0.1, rng);
  ASSERT_TRUE(server.SubmitStream(stream).ok());
  ASSERT_TRUE(server.Flush(kAwait).ok());
  server.Stop();

  std::shared_ptr<const ClusterView> view = server.View();
  for (uint32_t level = 1; level <= index.num_levels(); ++level) {
    EXPECT_EQ(view->LocalCluster(isolated, level),
              index.LocalCluster(isolated, level));
  }
  uint32_t view_level = 0;
  uint32_t index_level = 0;
  EXPECT_EQ(view->SmallestCluster(isolated, 2, &view_level),
            index.SmallestCluster(isolated, 2, &index_level));
  EXPECT_EQ(view_level, index_level);
}

TEST(ServeEdgeCaseTest, MaxLevelAndEmptyNeighborhoodUnderView) {
  GroundTruthGraph data = SmallCommunityGraph(73);
  AncIndex index(data.graph, SmallConfig());
  AncServer server(&index, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  // No activations at all: the epoch-1 view serves the initial state.
  std::shared_ptr<const ClusterView> view = server.View();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch(), 1u);
  EXPECT_EQ(view->watermark().seq, 0u);
  server.Stop();

  const uint32_t max_level = index.num_levels();
  EXPECT_EQ(view->Clusters(max_level).labels,
            index.Clusters(max_level).labels);
  for (NodeId v = 0; v < data.graph.NumNodes(); v += 5) {
    // At the max (finest) level most active neighborhoods are empty — the
    // vote bar is highest there; answers must match the index exactly.
    EXPECT_EQ(view->LocalCluster(v, max_level),
              index.LocalCluster(v, max_level));
    uint32_t lv = 0, li = 0;
    // A min_size larger than the graph is never satisfiable.
    EXPECT_EQ(view->SmallestCluster(v, data.graph.NumNodes() + 1, &lv),
              index.SmallestCluster(v, data.graph.NumNodes() + 1, &li));
    EXPECT_EQ(lv, li);
  }
}

TEST(ServeEdgeCaseTest, ServerQueriesValidateRanges) {
  GroundTruthGraph data = SmallCommunityGraph(79);
  AncIndex index(data.graph, SmallConfig());
  AncServer server(&index, ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.Clusters(0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(server.Clusters(index.num_levels() + 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(server.LocalCluster(data.graph.NumNodes(), 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(
      server.SmallestCluster(data.graph.NumNodes()).status().code(),
      StatusCode::kOutOfRange);
  server.Stop();
}

// --- Reader-vs-writer stress (TSan target) --------------------------------

TEST(ServeStressTest, ConcurrentReadersAndProducers) {
  GroundTruthGraph data = SmallCommunityGraph(83);
  Rng rng(19);
  ActivationStream stream = CommunityBiasedStream(data.graph, data.truth.labels, 20, 0.05, 4.0, rng);

  AncIndex index(data.graph, SmallConfig());
  ServeOptions options;
  options.ingest.clamp_out_of_order = true;  // racing producers
  options.snapshot_every_activations = 8;
  options.snapshot_max_age_s = 0.001;
  AncServer server(&index, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kProducers = 2;
  constexpr int kReaders = 4;
  std::atomic<size_t> next{0};
  std::atomic<bool> stop_readers{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < stream.size();
           i = next.fetch_add(1)) {
        Result<uint64_t> r = server.Submit(stream[i]);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  std::vector<uint64_t> queries_per_reader(kReaders, 0);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t n = 0;
      uint64_t last_epoch = 0;
      // do/while: every reader queries at least once even when producers
      // finish before this thread is first scheduled, so the
      // total_queries > 0 assertion below cannot flake under load.
      do {
        std::shared_ptr<const ClusterView> view = server.View();
        ASSERT_NE(view, nullptr);
        // Epochs only move forward under a single writer.
        ASSERT_GE(view->epoch(), last_epoch);
        last_epoch = view->epoch();
        const NodeId probe =
            static_cast<NodeId>((n * 7 + t) % data.graph.NumNodes());
        if (n % 16 == 0) {
          Result<Clustering> c = server.Clusters();
          ASSERT_TRUE(c.ok()) << c.status().ToString();
          ASSERT_EQ(c.value().labels.size(), data.graph.NumNodes());
        } else {
          Result<std::vector<NodeId>> local =
              server.LocalCluster(probe, view->DefaultLevel());
          ASSERT_TRUE(local.ok()) << local.status().ToString();
        }
        ++n;
      } while (!stop_readers.load(std::memory_order_acquire));
      queries_per_reader[t] = n;
    });
  }

  for (std::thread& p : producers) p.join();
  ASSERT_TRUE(server.Flush(kAwait).ok());
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  EXPECT_TRUE(server.writer_status().ok());
  EXPECT_EQ(server.accepted(), stream.size());
  EXPECT_GE(server.watermark().seq, stream.size());
  server.Stop();

  // Quiesced: the final view answers byte-identically to the index it was
  // built from, and the index still passes the deep validators.
  ExpectViewMatchesIndex(*server.View(), index);
  EXPECT_TRUE(index.ValidateInvariants(/*deep=*/true).ok());
  uint64_t total_queries = 0;
  for (uint64_t q : queries_per_reader) total_queries += q;
  EXPECT_GT(total_queries, 0u);
}

// --- Ingest gauges and tracing --------------------------------------------

TEST(IngestQueueTest, TracksHighWatermarkAndOldestAge) {
  obs::MetricsRegistry registry;
  IngestQueue q(IngestOptions{}, &registry);
  ASSERT_TRUE(q.Push({0, 1.0}).ok());
  ASSERT_TRUE(q.Push({0, 2.0}).ok());
  ASSERT_TRUE(q.Push({0, 3.0}).ok());
  EXPECT_EQ(q.high_watermark(), 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(q.OldestAgeSeconds(), 0.005);

  std::vector<Activation> batch;
  ASSERT_EQ(q.PopBatch(&batch, 16, std::chrono::microseconds(0)), 3u);
  EXPECT_EQ(q.OldestAgeSeconds(), 0.0);     // empty queue has no oldest
  EXPECT_EQ(q.high_watermark(), 3u);        // high watermark never recedes
  if (obs::kMetricsEnabled) {
    const obs::StatsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.gauge("anc.serve.ingest_high_watermark"), 3);
    EXPECT_EQ(snap.gauge("anc.serve.ingest_oldest_age_us"), 0);
  }
}

TEST(IngestQueueTest, PopBatchReportsPerEntryTraceAndEnqueueTime) {
  IngestQueue q(IngestOptions{});
  const obs::TraceContext traced = obs::TraceContext::NewTrace();
  const auto before = std::chrono::steady_clock::now();
  ASSERT_TRUE(q.Push({0, 1.0}, traced).ok());
  ASSERT_TRUE(q.Push({0, 2.0}).ok());  // untraced

  std::vector<Activation> batch;
  std::vector<IngestQueue::Popped> info;
  ASSERT_EQ(q.PopBatch(&batch, 16, std::chrono::microseconds(0), nullptr,
                       &info),
            2u);
  ASSERT_EQ(info.size(), 2u);
  EXPECT_EQ(info[0].trace.trace_id, traced.trace_id);
  EXPECT_FALSE(info[1].trace.active());
  EXPECT_GE(info[0].enqueued_at, before);
  EXPECT_LE(info[0].enqueued_at, info[1].enqueued_at);
}

TEST(ServeTraceTest, SubmitSpansCorrelateAcrossQueueApplyPublish) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics disabled";
  GroundTruthGraph data = SmallCommunityGraph(53);
  Rng rng(19);
  ActivationStream stream =
      CommunityBiasedStream(data.graph, data.truth.labels, 20, 0.1, 4.0, rng);

  AncIndex index(data.graph, SmallConfig());
  std::ostringstream out;
  obs::TraceSink sink(&out);
  index.SetTraceSink(&sink);

  ServeOptions options;
  options.snapshot_every_activations = 4;
  AncServer server(&index, options);
  ASSERT_TRUE(server.Start().ok());
  uint64_t last_seq = 0;
  for (const Activation& activation : stream) {
    // With a sink attached, Submit mints a root trace per request.
    Result<uint64_t> ticket = server.Submit(activation);
    ASSERT_TRUE(ticket.ok());
    last_seq = *ticket;
  }
  ASSERT_TRUE(server.AwaitSeq(last_seq, kAwait).ok());
  server.Stop();
  index.SetTraceSink(nullptr);

  std::map<std::string, std::set<uint64_t>> traces_by_name;
  size_t queue_wait_spans = 0;
  std::istringstream lines(out.str());
  for (std::string line; std::getline(lines, line);) {
    obs::Json event;
    ASSERT_TRUE(obs::Json::Parse(line, &event)) << line;
    const obs::Json* name = event.Find("name");
    ASSERT_NE(name, nullptr) << line;
    ASSERT_NE(event.Find("tid"), nullptr) << line;
    // shard_ordinal defaults to -1: no shard field on a plain AncServer.
    EXPECT_EQ(event.Find("shard"), nullptr) << line;
    if (const obs::Json* trace = event.Find("trace"); trace != nullptr) {
      traces_by_name[name->str()].insert(
          static_cast<uint64_t>(trace->number()));
    }
    if (name->str() == "ingest.queue_wait") ++queue_wait_spans;
  }
  // One queue-wait span per submitted request, each on a distinct trace.
  EXPECT_EQ(queue_wait_spans, stream.size());
  const std::set<uint64_t>& waits = traces_by_name["ingest.queue_wait"];
  EXPECT_EQ(waits.size(), stream.size());
  // Every traced request's queue-wait correlates with an apply and a
  // publish attributed to the same trace id.
  for (const uint64_t trace : waits) {
    EXPECT_TRUE(traces_by_name["serve.apply"].count(trace) > 0) << trace;
    EXPECT_TRUE(traces_by_name["serve.publish"].count(trace) > 0) << trace;
  }
}

}  // namespace
}  // namespace anc
